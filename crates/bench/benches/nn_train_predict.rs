//! §VIII overhead study: training and prediction time of the selected model.
//!
//! The paper reports ≈ 25 s to train model 1 (200 epochs, 12 000 entries,
//! Keras on CPU/GPU) and ≈ 50 ms to predict. Absolute numbers differ on
//! this from-scratch CPU stack; the benches pin down *our* overheads and
//! the relative cost of the model families.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use geomancy_core::dataset::forecasting_dataset;
use geomancy_core::models::{build_model, ModelId};
use geomancy_nn::init::seeded_rng;
use geomancy_nn::loss::Loss;
use geomancy_nn::optimizer::Sgd;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_trace::features::Z;

fn synthetic_records(n: u64) -> Vec<AccessRecord> {
    (0..n)
        .map(|i| AccessRecord {
            access_number: i,
            fid: FileId(i % 24),
            fsid: DeviceId((i % 6) as u32),
            rb: 1_000_000 + (i % 17) * 50_000,
            wb: 0,
            ots: i * 2,
            otms: ((i * 37) % 1000) as u16,
            cts: i * 2 + 1,
            ctms: ((i * 53) % 1000) as u16,
        })
        .collect()
}

fn bench_train_epoch(c: &mut Criterion) {
    let records = synthetic_records(2_000);
    let dense = forecasting_dataset(&records, 1, 16, 0);
    let windowed = forecasting_dataset(&records, 8, 16, 0);
    let mut group = c.benchmark_group("train_one_epoch_2k_records");
    group.sample_size(10);
    for (label, id) in [
        ("model1_dense", 1u8),
        ("model12_lstm", 12u8),
        ("model18_simplernn", 18u8),
    ] {
        let ds = if ModelId::new(id).is_recurrent() {
            &windowed
        } else {
            &dense
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut rng = seeded_rng(0);
                    (
                        build_model(ModelId::new(id), Z, 8, &mut rng),
                        Sgd::new(0.05),
                    )
                },
                |(mut net, mut opt)| {
                    let mut row = 0;
                    while row < ds.inputs.rows() {
                        let end = (row + 64).min(ds.inputs.rows());
                        let bx = ds.inputs.slice_rows(row..end);
                        let by = ds.targets.slice_rows(row..end);
                        net.train_batch(&bx, &by, Loss::MeanSquaredError, &mut opt);
                        row = end;
                    }
                    net
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let records = synthetic_records(2_000);
    let dense = forecasting_dataset(&records, 1, 16, 0);
    let mut rng = seeded_rng(0);
    let mut net = build_model(ModelId::new(1), Z, 8, &mut rng);
    let test = dense.inputs.slice_rows(0..400);
    c.bench_function("model1_predict_400_rows", |b| b.iter(|| net.predict(&test)));
    // The per-layout prediction of the live engine: 24 files x 6 devices.
    let candidates = dense.inputs.slice_rows(0..144);
    c.bench_function("model1_predict_one_layout_24x6", |b| {
        b.iter(|| net.predict(&candidates))
    });
}

criterion_group!(benches, bench_train_epoch, bench_predict);
criterion_main!(benches);
