//! Policy decision cost: how long one layout computation takes for each
//! placement policy, including Geomancy's full retrain + predict cycle
//! (the §VIII "26.5 seconds to train and predict a new layout" bound).

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};

use geomancy_core::drl::DrlConfig;
use geomancy_core::policy::{
    GeomancyDynamic, Lfu, Lru, PlacementPolicy, PolicyContext, RandomDynamic,
};
use geomancy_replaydb::ReplayDb;
use geomancy_sim::cluster::{FileMeta, Layout};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

struct Fixture {
    db: ReplayDb,
    files: BTreeMap<FileId, FileMeta>,
    layout: Layout,
    devices: Vec<DeviceId>,
}

fn fixture() -> Fixture {
    let mut db = ReplayDb::new();
    for i in 0..12_000u64 {
        let dev = ((i / 15) % 6) as u32;
        let dur_ms = 100 + (dev as u64) * 60;
        db.insert(
            i,
            AccessRecord {
                access_number: i,
                fid: FileId(i % 24),
                fsid: DeviceId(dev),
                rb: 1_000_000,
                wb: 0,
                ots: i,
                otms: 0,
                cts: i + dur_ms / 1000,
                ctms: (dur_ms % 1000) as u16,
            },
        );
    }
    let mut files = BTreeMap::new();
    let mut layout = Layout::new();
    for i in 0..24u64 {
        files.insert(
            FileId(i),
            FileMeta {
                size: 100_000_000,
                path: format!("f{i}"),
            },
        );
        layout.insert(FileId(i), DeviceId((i % 6) as u32));
    }
    Fixture {
        db,
        files,
        layout,
        devices: (0..6).map(DeviceId).collect(),
    }
}

fn context(f: &Fixture) -> PolicyContext<'_> {
    PolicyContext {
        db: &f.db,
        files: &f.files,
        devices: &f.devices,
        current_layout: &f.layout,
        lookback: 4_000,
        now: (20_000, 0),
        free_bytes: f.devices.iter().map(|&d| (d, u64::MAX)).collect(),
    }
}

fn bench_baseline_policies(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("policy_decision");
    group.bench_function("lru", |b| {
        let mut p = Lru;
        b.iter(|| p.update(&context(&f)))
    });
    group.bench_function("lfu", |b| {
        let mut p = Lfu;
        b.iter(|| p.update(&context(&f)))
    });
    group.bench_function("random_dynamic", |b| {
        let mut p = RandomDynamic::new(0);
        b.iter(|| p.update(&context(&f)))
    });
    group.finish();
}

fn bench_geomancy_cycle(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("policy_decision");
    group.sample_size(10);
    group.bench_function("geomancy_retrain_and_layout", |b| {
        let mut p = GeomancyDynamic::with_config(
            DrlConfig {
                train_window: 800,
                epochs: 10,
                smoothing_window: 8,
                ..DrlConfig::default()
            },
            0.1,
        );
        b.iter(|| p.update(&context(&f)))
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_policies, bench_geomancy_cycle);
criterion_main!(benches);
