//! ReplayDB microbenches: ingest and the §V-E training-batch query. The
//! paper quotes ≈ 3 ms to ship a batch into the database.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn record(i: u64) -> AccessRecord {
    AccessRecord {
        access_number: i,
        fid: FileId(i % 24),
        fsid: DeviceId((i % 6) as u32),
        rb: 1_000_000,
        wb: 0,
        ots: i,
        otms: 0,
        cts: i + 1,
        ctms: 0,
    }
}

fn populated(n: u64) -> ReplayDb {
    let mut db = ReplayDb::new();
    for i in 0..n {
        db.insert(i, record(i));
    }
    db
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("replaydb_insert_batch_of_64", |b| {
        let batch: Vec<AccessRecord> = (0..64).map(record).collect();
        b.iter_batched(
            || populated(10_000),
            |mut db| {
                db.insert_batch(u64::MAX / 2, &batch);
                db
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_queries(c: &mut Criterion) {
    let db = populated(50_000);
    c.bench_function("replaydb_recent_per_device_x2000", |b| {
        b.iter(|| db.recent_per_device(2_000))
    });
    c.bench_function("replaydb_recent_4000", |b| b.iter(|| db.recent(4_000)));
    c.bench_function("replaydb_access_counts_4000", |b| {
        b.iter(|| db.access_counts(4_000))
    });
}

fn bench_persistence(c: &mut Criterion) {
    let db = populated(10_000);
    c.bench_function("replaydb_json_snapshot_10k", |b| {
        b.iter(|| geomancy_replaydb::to_json(&db).unwrap())
    });
}

criterion_group!(benches, bench_insert, bench_queries, bench_persistence);
criterion_main!(benches);
