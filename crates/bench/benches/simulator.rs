//! Simulator microbenches: per-access and per-migration cost of the Bluesky
//! substrate (the reproduction's stand-in for real I/O).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use geomancy_sim::bluesky::{bluesky_system, Mount};
use geomancy_sim::cluster::FileMeta;
use geomancy_sim::record::FileId;

fn bench_access(c: &mut Criterion) {
    let mut system = bluesky_system(1);
    for i in 0..24u64 {
        system
            .add_file(
                FileId(i),
                FileMeta {
                    size: 50_000_000,
                    path: format!("bench/f{i}.root"),
                },
                Mount::ALL[(i % 6) as usize].device_id(),
            )
            .unwrap();
    }
    let mut i = 0u64;
    c.bench_function("simulated_read_access", |b| {
        b.iter(|| {
            let fid = FileId(i % 24);
            i += 1;
            system.read_file(fid, None).unwrap()
        })
    });
}

fn bench_migration(c: &mut Criterion) {
    c.bench_function("simulated_file_migration", |b| {
        b.iter_batched(
            || {
                let mut system = bluesky_system(2);
                system
                    .add_file(
                        FileId(0),
                        FileMeta {
                            size: 500_000_000,
                            path: "bench/big.root".into(),
                        },
                        Mount::UsbTmp.device_id(),
                    )
                    .unwrap();
                system
            },
            |mut system| {
                system
                    .move_file(FileId(0), Mount::File0.device_id())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_workload_run(c: &mut Criterion) {
    use geomancy_trace::belle2::Belle2Workload;
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    group.bench_function("one_belle2_run_24_files", |b| {
        b.iter_batched(
            || {
                let mut system = bluesky_system(3);
                let workload = Belle2Workload::new(3);
                for (i, f) in workload.files().iter().enumerate() {
                    system
                        .add_file(
                            f.fid,
                            FileMeta {
                                size: f.size,
                                path: f.path.clone(),
                            },
                            Mount::ALL[i % 6].device_id(),
                        )
                        .unwrap();
                }
                (system, workload)
            },
            |(mut system, mut workload)| {
                for op in workload.next_run() {
                    if op.write {
                        system.write_file(op.fid, op.bytes).unwrap();
                    } else {
                        system.read_file(op.fid, op.bytes).unwrap();
                    }
                }
                system
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_access,
    bench_migration,
    bench_full_workload_run
);
criterion_main!(benches);
