//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. moving-average smoothing window (§V-E),
//! 2. ε-exploration rate (§V-H, paper: 10 %),
//! 3. move cadence (§VI, paper: every 5 runs),
//! 4. the §V-G MAE prediction adjustment on/off.
//!
//! Run with `cargo run -p geomancy-bench --bin ablations --release`.

use geomancy_bench::output::{print_table, write_json};
use geomancy_bench::scenarios::{experiment_config, live_drl_config};
use geomancy_core::drl::DrlConfig;
use geomancy_core::experiment::run_policy_experiment;
use geomancy_core::policy::GeomancyDynamic;

fn run(config_seed: u64, drl: DrlConfig, exploration: f64, move_every: usize) -> (f64, f64) {
    run_policy(
        config_seed,
        GeomancyDynamic::with_config(drl, exploration),
        move_every,
    )
}

fn run_policy(config_seed: u64, policy: GeomancyDynamic, move_every: usize) -> (f64, f64) {
    let mut config = experiment_config(config_seed);
    config.move_every_runs = move_every;
    let mut policy = policy;
    let result = run_policy_experiment(&mut policy, &config);
    (result.avg_throughput / 1e9, result.std_throughput / 1e9)
}

fn main() {
    let seed = 99;
    let base_cadence = experiment_config(seed).move_every_runs;
    println!("Ablation study (Geomancy dynamic, one knob at a time)");
    let mut json = serde_json::Map::new();

    // 1. Smoothing window.
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for window in [1usize, 8, 32] {
        let drl = DrlConfig {
            smoothing_window: window,
            ..live_drl_config(seed)
        };
        println!("smoothing window {window}…");
        let (avg, std) = run(seed, drl, 0.1, base_cadence);
        rows.push(vec![
            window.to_string(),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"window": window, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 1 — moving-average smoothing (paper uses a short window; 1 = off)",
        &["window", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("smoothing".into(), serde_json::Value::Array(entries));

    // 2. Exploration rate.
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for rate in [0.0, 0.1, 0.5] {
        println!("exploration rate {rate}…");
        let (avg, std) = run(seed, live_drl_config(seed), rate, base_cadence);
        rows.push(vec![
            format!("{rate}"),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"rate": rate, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 2 — ε-exploration rate (paper: 0.1)",
        &["rate", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("exploration".into(), serde_json::Value::Array(entries));

    // 3. Move cadence.
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for cadence in [
        base_cadence.saturating_sub(base_cadence / 2).max(1),
        base_cadence,
        base_cadence * 3,
    ] {
        println!("move cadence: every {cadence} runs…");
        let (avg, std) = run(seed, live_drl_config(seed), 0.1, cadence);
        rows.push(vec![
            cadence.to_string(),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"every_runs": cadence, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 3 — move cadence (paper: every 5 runs; moving much more or less often hurts)",
        &["every N runs", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("cadence".into(), serde_json::Value::Array(entries));

    // 4a. Per-decision move cap (paper observes at most 14 files moved).
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for cap in [4usize, 14, 24] {
        println!("move cap {cap}…");
        let policy = GeomancyDynamic::with_config(live_drl_config(seed), 0.1).with_move_cap(cap);
        let (avg, std) = run_policy(seed, policy, base_cadence);
        rows.push(vec![
            cap.to_string(),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"cap": cap, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 4a — per-decision move cap (paper: at most 14 files per movement)",
        &["cap", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("move_cap".into(), serde_json::Value::Array(entries));

    // 4b. Per-file move cooldown ("adding a cool down period after file
    // movement increased performance benefits", §VI).
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for cooldown in [0u64, 2, 4] {
        println!("cooldown {cooldown} rounds…");
        let policy =
            GeomancyDynamic::with_config(live_drl_config(seed), 0.1).with_cooldown(cooldown);
        let (avg, std) = run_policy(seed, policy, base_cadence);
        rows.push(vec![
            cooldown.to_string(),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"rounds": cooldown, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 4b — per-file move cooldown (§VI: a cooldown increases the benefit)",
        &["rounds", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("cooldown".into(), serde_json::Value::Array(entries));

    // 5. Target transform: linear vs log-space throughput modeling.
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for log in [false, true] {
        let drl = DrlConfig {
            log_targets: log,
            ..live_drl_config(seed)
        };
        println!("log targets {log}…");
        let (avg, std) = run(seed, drl, 0.1, base_cadence);
        rows.push(vec![
            if log { "ln(1+tp)" } else { "linear" }.to_string(),
            format!("{avg:.2}"),
            format!("{std:.2}"),
        ]);
        entries.push(serde_json::json!({"log_targets": log, "avg_gbps": avg, "std_gbps": std}));
    }
    print_table(
        "Ablation 5 — target space (linear MSE concentrates on the fast tail, where placement gains live)",
        &["targets", "avg GB/s", "std GB/s"],
        &rows,
    );
    json.insert("target_space".into(), serde_json::Value::Array(entries));

    write_json("ablations", &serde_json::Value::Object(json));
}
