//! Figure 4: Pearson correlation between the raw EOS access features and
//! throughput, marking the six features the paper selects.
//!
//! Run with `cargo run -p geomancy-bench --bin fig4 --release`.

use geomancy_bench::output::{fast_mode, print_table, write_json};
use geomancy_trace::eos::{correlation_table, EosTraceGenerator};

/// The features the paper highlights (orange bars in Figure 4): common
/// across scientific systems and positively correlated.
const SELECTED: [&str; 8] = ["rb", "wb", "ots", "otms", "cts", "ctms", "fid", "fsid"];

fn main() {
    let n = if fast_mode() { 2_000 } else { 20_000 };
    println!("Figure 4 — feature/throughput correlation over {n} synthetic EOS records");

    let mut generator = EosTraceGenerator::new(42);
    let records = generator.generate(n);
    let mut correlations = correlation_table(&records);
    correlations.sort_by(|a, b| b.1.total_cmp(&a.1));

    let rows: Vec<Vec<String>> = correlations
        .iter()
        .map(|(name, corr)| {
            let bar_len = (corr.abs() * 30.0).round() as usize;
            let bar = if *corr >= 0.0 {
                "+".repeat(bar_len)
            } else {
                "-".repeat(bar_len)
            };
            vec![
                name.to_string(),
                format!("{corr:+.3}"),
                if SELECTED.contains(name) {
                    "selected".to_string()
                } else {
                    String::new()
                },
                bar,
            ]
        })
        .collect();
    print_table(
        "Correlation with throughput (sorted)",
        &["feature", "pearson", "chosen", "magnitude"],
        &rows,
    );

    println!(
        "\nShape check vs the paper: rb/wb positive, timestamps mildly positive,\n\
         rt/wt strongly negative, identity fields ≈ 0."
    );
    let find = |name: &str| {
        correlations
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    };
    for (claim, ok) in [
        ("rb > 0", find("rb") > 0.0),
        ("wb > 0", find("wb") > 0.0),
        ("ots > 0", find("ots") > 0.0),
        ("rt below rb", find("rt") < find("rb")),
        ("wt below wb", find("wt") < find("wb")),
        ("|fid| small", find("fid").abs() < 0.1),
    ] {
        println!("  [{}] {}", if ok { "ok" } else { "MISMATCH" }, claim);
    }

    let json = serde_json::json!({
        "records": n,
        "correlations": correlations
            .iter()
            .map(|(name, c)| serde_json::json!({"feature": name, "pearson": c, "selected": SELECTED.contains(name)}))
            .collect::<Vec<_>>(),
    });
    write_json("fig4_correlations", &json);
}
