//! Figure 5a — Experiment 1: Geomancy dynamic vs the dynamic baselines
//! (LRU, MRU, LFU, random dynamic) on the live (simulated) Bluesky system.
//!
//! Each policy runs over three seeds; the summary reports per-seed and
//! cross-seed mean throughput (the substrate's regime storms make a single
//! seed noisy, so the reproduction averages where the paper ran once).
//!
//! Run with `cargo run -p geomancy-bench --bin fig5a --release`.
//! `GEOMANCY_SEED=n` pins a single seed; `GEOMANCY_FAST=1` shrinks scale.

use geomancy_bench::output::{fast_mode, print_table, sparkline, write_json};
use geomancy_bench::scenarios::{experiment_config, live_drl_config};
use geomancy_core::experiment::{run_policy_experiment, ExperimentResult};
use geomancy_core::policy::{GeomancyDynamic, Lfu, Lru, Mru, PlacementPolicy, RandomDynamic};

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("GEOMANCY_SEED") {
        return vec![s.parse().expect("GEOMANCY_SEED must be an integer")];
    }
    if fast_mode() {
        vec![21]
    } else {
        vec![21, 42, 77]
    }
}

const POLICY_NAMES: [&str; 5] = ["LRU", "MRU", "LFU", "Random dynamic", "Geomancy"];

fn make_policy(name: &str, seed: u64) -> Box<dyn PlacementPolicy> {
    match name {
        "LRU" => Box::new(Lru),
        "MRU" => Box::new(Mru),
        "LFU" => Box::new(Lfu),
        "Random dynamic" => Box::new(RandomDynamic::new(seed.wrapping_add(5))),
        "Geomancy" => Box::new(GeomancyDynamic::with_config(live_drl_config(seed), 0.1)),
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let seeds = seeds();
    let base = experiment_config(seeds[0]);
    println!(
        "Figure 5a — Experiment 1: dynamic policies, {} runs x {} seeds, moves every {} runs",
        base.runs,
        seeds.len(),
        base.move_every_runs
    );

    // results[policy][seed]
    let mut results: Vec<Vec<ExperimentResult>> = Vec::new();
    for name in POLICY_NAMES {
        let mut per_seed = Vec::new();
        for &seed in &seeds {
            println!("running {name} (seed {seed})…");
            let mut config = experiment_config(seed);
            config.seed = seed;
            let mut policy = make_policy(name, seed);
            per_seed.push(run_policy_experiment(policy.as_mut(), &config));
        }
        results.push(per_seed);
    }

    println!("\nThroughput over access number (first seed):");
    for per_seed in &results {
        let r = &per_seed[0];
        let tps: Vec<f64> = r
            .smoothed_series(200)
            .iter()
            .map(|p| p.throughput)
            .collect();
        println!("{}", sparkline(&r.policy, &tps, 60));
    }

    let geomancy = results.last().expect("geomancy ran");
    let moves = &geomancy[0].movements;
    if !moves.is_empty() {
        println!("\nGeomancy data movements, first seed (access number: files moved):");
        let bars: Vec<String> = moves
            .iter()
            .map(|m| format!("{}:{}", m.at_access, m.files_moved))
            .collect();
        println!("  {}", bars.join("  "));
        let max_moved = moves.iter().map(|m| m.files_moved).max().unwrap_or(0);
        println!("  at most {max_moved} files per movement (paper: 1-14 files, at most 14)");
    }

    let mean = |rs: &[ExperimentResult]| {
        rs.iter().map(|r| r.avg_throughput).sum::<f64>() / rs.len() as f64
    };
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|per_seed| {
            let mut row = vec![per_seed[0].policy.clone()];
            for r in per_seed {
                row.push(format!("{:.2}", r.avg_throughput / 1e9));
            }
            row.push(format!("{:.2}", mean(per_seed) / 1e9));
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["policy".to_string()];
    headers.extend(seeds.iter().map(|s| format!("seed {s} GB/s")));
    headers.push("mean GB/s".to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Experiment 1 summary", &header_refs, &rows);

    let geomancy_mean = mean(geomancy);
    let (best_name, best_mean) = results[..results.len() - 1]
        .iter()
        .map(|rs| (rs[0].policy.clone(), mean(rs)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("baselines ran");
    let gain = (geomancy_mean / best_mean - 1.0) * 100.0;
    println!(
        "\nGeomancy vs best baseline ({best_name}): {gain:+.1} % across {} seed(s) \
         (paper: ≥ +11 %, LFU the closest contender)",
        seeds.len()
    );

    write_json(
        "fig5a_experiment1",
        &serde_json::json!({
            "runs": base.runs,
            "seeds": seeds,
            "policies": results.iter().map(|per_seed| serde_json::json!({
                "name": per_seed[0].policy,
                "per_seed_gbps": per_seed.iter().map(|r| r.avg_throughput / 1e9).collect::<Vec<_>>(),
                "mean_gbps": mean(per_seed) / 1e9,
                "std_gbps_first_seed": per_seed[0].std_throughput / 1e9,
                "movements_first_seed": per_seed[0].movements.iter().map(|m| serde_json::json!({
                    "at_access": m.at_access, "files_moved": m.files_moved
                })).collect::<Vec<_>>(),
                "series_bucketed_first_seed": per_seed[0].bucketed_series(100).iter().map(|p| serde_json::json!({
                    "access": p.access_number, "gbps": p.throughput / 1e9
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
            "geomancy_gain_vs_best_baseline_pct": gain,
        }),
    );
}
