//! Figure 5b — Experiment 2: Geomancy dynamic vs the static baselines
//! (even spread, random static, Geomancy static one-shot placement).
//!
//! Each policy runs over three seeds; the summary reports per-seed and
//! cross-seed mean throughput.
//!
//! Run with `cargo run -p geomancy-bench --bin fig5b --release`.
//! `GEOMANCY_SEED=n` pins a single seed; `GEOMANCY_FAST=1` shrinks scale.

use geomancy_bench::output::{fast_mode, print_table, sparkline, write_json};
use geomancy_bench::scenarios::{experiment_config, live_drl_config};
use geomancy_core::experiment::{run_policy_experiment, ExperimentResult};
use geomancy_core::policy::{
    GeomancyDynamic, GeomancyStatic, PlacementPolicy, RandomStatic, SpreadStatic,
};

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("GEOMANCY_SEED") {
        return vec![s.parse().expect("GEOMANCY_SEED must be an integer")];
    }
    if fast_mode() {
        vec![33]
    } else {
        vec![33, 42, 77]
    }
}

const POLICY_NAMES: [&str; 4] = [
    "Spread static",
    "Random static",
    "Geomancy static",
    "Geomancy",
];

fn make_policy(name: &str, seed: u64) -> Box<dyn PlacementPolicy> {
    match name {
        "Spread static" => Box::new(SpreadStatic::new()),
        "Random static" => Box::new(RandomStatic::new(seed.wrapping_add(9))),
        "Geomancy static" => Box::new(GeomancyStatic::with_config(live_drl_config(seed))),
        "Geomancy" => Box::new(GeomancyDynamic::with_config(live_drl_config(seed), 0.1)),
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let seeds = seeds();
    let base = experiment_config(seeds[0]);
    println!(
        "Figure 5b — Experiment 2: static baselines vs Geomancy, {} runs x {} seeds",
        base.runs,
        seeds.len()
    );

    let mut results: Vec<Vec<ExperimentResult>> = Vec::new();
    for name in POLICY_NAMES {
        let mut per_seed = Vec::new();
        for &seed in &seeds {
            println!("running {name} (seed {seed})…");
            let mut config = experiment_config(seed);
            config.seed = seed;
            let mut policy = make_policy(name, seed);
            per_seed.push(run_policy_experiment(policy.as_mut(), &config));
        }
        results.push(per_seed);
    }

    println!("\nThroughput over access number (first seed):");
    for per_seed in &results {
        let r = &per_seed[0];
        let tps: Vec<f64> = r
            .smoothed_series(200)
            .iter()
            .map(|p| p.throughput)
            .collect();
        println!("{}", sparkline(&r.policy, &tps, 60));
    }

    let mean = |rs: &[ExperimentResult]| {
        rs.iter().map(|r| r.avg_throughput).sum::<f64>() / rs.len() as f64
    };
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|per_seed| {
            let mut row = vec![per_seed[0].policy.clone()];
            for r in per_seed {
                row.push(format!("{:.2}", r.avg_throughput / 1e9));
            }
            row.push(format!("{:.2}", mean(per_seed) / 1e9));
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["policy".to_string()];
    headers.extend(seeds.iter().map(|s| format!("seed {s} GB/s")));
    headers.push("mean GB/s".to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Experiment 2 summary", &header_refs, &rows);

    let geomancy_mean = mean(results.last().expect("geomancy ran"));
    let vs = |name: &str| {
        results
            .iter()
            .find(|rs| rs[0].policy == name)
            .map(|rs| (geomancy_mean / mean(rs) - 1.0) * 100.0)
    };
    if let Some(gain) = vs("Random static") {
        println!("\nGeomancy vs random static: {gain:+.1} % (paper: +24 %)");
    }
    if let Some(gain) = vs("Geomancy static") {
        println!("Geomancy vs Geomancy static: {gain:+.1} % (paper: +30 %)");
    }

    write_json(
        "fig5b_experiment2",
        &serde_json::json!({
            "runs": base.runs,
            "seeds": seeds,
            "policies": results.iter().map(|per_seed| serde_json::json!({
                "name": per_seed[0].policy,
                "per_seed_gbps": per_seed.iter().map(|r| r.avg_throughput / 1e9).collect::<Vec<_>>(),
                "mean_gbps": mean(per_seed) / 1e9,
                "series_bucketed_first_seed": per_seed[0].bucketed_series(100).iter().map(|p| serde_json::json!({
                    "access": p.access_number, "gbps": p.throughput / 1e9
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
            "gain_vs_random_static_pct": vs("Random static"),
            "gain_vs_geomancy_static_pct": vs("Geomancy static"),
        }),
    );
}
