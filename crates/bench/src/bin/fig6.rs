//! Figure 6 — Experiment 3: a duplicate, untuned workload joins mid-run;
//! Geomancy adapts the tuned workload's layout to the changed contention.
//!
//! Run with `cargo run -p geomancy-bench --bin fig6 --release`.

use geomancy_bench::output::{sparkline, write_json};
use geomancy_bench::scenarios::{experiment_config, live_drl_config};
use geomancy_core::experiment::run_dual_workload_experiment;
use geomancy_core::policy::{GeomancyDynamic, SpreadStatic};
use geomancy_trace::stats::mean_std;

fn main() {
    let config = experiment_config(77);
    let seed = config.seed;
    let solo_runs = config.runs / 3;
    println!(
        "Figure 6 — Experiment 3: untuned duplicate workload joins after {solo_runs} of {} runs",
        config.runs
    );

    let mut policy = GeomancyDynamic::with_config(live_drl_config(seed), 0.1);
    let result = run_dual_workload_experiment(&mut policy, &config, solo_runs);
    // Paired control: the identical dual-workload run with no adaptation
    // (files stay on the even spread). Geomancy's recovery is measured as
    // its late-phase advantage over this control, which cancels out the
    // background regime storms both runs share.
    println!("running no-adaptation control…");
    let mut control_policy = SpreadStatic::new();
    let control = run_dual_workload_experiment(&mut control_policy, &config, solo_runs);

    let tuned: Vec<f64> = result.tuned.iter().map(|p| p.throughput).collect();
    let untuned: Vec<f64> = result.untuned.iter().map(|p| p.throughput).collect();
    println!(
        "\nThroughput over access number (onset at access {}):",
        result.onset_access
    );
    println!("{}", sparkline("tuned (Geomancy)", &tuned, 60));
    println!("{}", sparkline("untuned duplicate", &untuned, 60));

    // Phase statistics for the tuned workload. The run starts with a
    // learning ramp, so "before onset" uses only the *converged tail* of
    // the solo phase; "disruption" is the first quarter of the dual phase
    // and "recovery" its last quarter.
    let solo: Vec<f64> = result
        .tuned
        .iter()
        .filter(|p| p.access_number < result.onset_access)
        .map(|p| p.throughput)
        .collect();
    let after_all: Vec<f64> = result
        .tuned
        .iter()
        .filter(|p| p.access_number >= result.onset_access)
        .map(|p| p.throughput)
        .collect();
    let before: Vec<f64> = solo.iter().copied().skip(solo.len() * 3 / 4).collect();
    let disruption: Vec<f64> = after_all
        .iter()
        .copied()
        .take(after_all.len() / 4)
        .collect();
    let recovery: Vec<f64> = after_all
        .iter()
        .copied()
        .skip(3 * after_all.len() / 4)
        .collect();
    let (b_mean, _) = mean_std(&before);
    let (d_mean, _) = mean_std(&disruption);
    let (r_mean, _) = mean_std(&recovery);
    println!("\nTuned workload phases:");
    println!("  before onset:      {:.2} GB/s", b_mean / 1e9);
    println!("  right after onset: {:.2} GB/s (disruption)", d_mean / 1e9);
    println!("  final third:       {:.2} GB/s (recovery)", r_mean / 1e9);
    // Paired-control phases: the control shares the storms and the
    // duplicate's onset but never adapts, so its before/after gap isolates
    // what the new workload costs.
    let control_solo: Vec<f64> = control
        .tuned
        .iter()
        .filter(|p| p.access_number < control.onset_access)
        .map(|p| p.throughput)
        .collect();
    let control_late: Vec<f64> = control
        .tuned
        .iter()
        .filter(|p| p.access_number >= control.onset_access)
        .map(|p| p.throughput)
        .collect();
    let control_before: Vec<f64> = control_solo
        .iter()
        .copied()
        .skip(control_solo.len() * 3 / 4)
        .collect();
    let control_disruption: Vec<f64> = control_late
        .iter()
        .copied()
        .take(control_late.len() / 4)
        .collect();
    let (cb_mean, _) = mean_std(&control_before);
    let (cd_mean, _) = mean_std(&control_disruption);
    let control_recovery: Vec<f64> = control_late
        .iter()
        .copied()
        .skip(3 * control_late.len() / 4)
        .collect();
    let (c_mean, _) = mean_std(&control_recovery);
    println!(
        "
No-adaptation control phases (same system, no moves):"
    );
    println!("  before onset:      {:.2} GB/s", cb_mean / 1e9);
    println!(
        "  right after onset: {:.2} GB/s ({:+.1} % — the duplicate's cost)",
        cd_mean / 1e9,
        (cd_mean / cb_mean - 1.0) * 100.0
    );
    println!("  final quarter:     {:.2} GB/s", c_mean / 1e9);
    let adaptation_gain = if c_mean > 0.0 {
        (r_mean / c_mean - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "  control (no adaptation), same phase: {:.2} GB/s",
        c_mean / 1e9
    );
    // Where did the tuned files end up? The duplicate parks on var/tmp/pic
    // (device ids 1, 2, 4); adaptation should drain those mounts.
    let on_duplicate_mounts = result
        .final_tuned_layout
        .values()
        .filter(|d| matches!(d.0, 1 | 2 | 4))
        .count();
    println!(
        "  tuned files left on the duplicate's mounts (var/tmp/pic): {}/{} (started 12/24)",
        on_duplicate_mounts,
        result.final_tuned_layout.len()
    );
    println!(
        "\nShape check vs the paper: performance drops when the duplicate starts,\n\
         then Geomancy responds and pushes throughput back toward its old level.\n\
         late-phase adaptation gain over the no-adaptation control: {adaptation_gain:+.1} %"
    );

    write_json(
        "fig6_experiment3",
        &serde_json::json!({
            "onset_access": result.onset_access,
            "phases_gbps": {
                "before": b_mean / 1e9,
                "disruption": d_mean / 1e9,
                "recovery": r_mean / 1e9,
                "control_recovery": c_mean / 1e9,
            },
            "adaptation_gain_pct": adaptation_gain,
            "movements": result.movements.iter().map(|m| serde_json::json!({
                "at_access": m.at_access, "files_moved": m.files_moved
            })).collect::<Vec<_>>(),
            "tuned_series": result.tuned.chunks(100).map(|c| serde_json::json!({
                "access": c[c.len()/2].access_number,
                "gbps": c.iter().map(|p| p.throughput).sum::<f64>() / c.len() as f64 / 1e9,
            })).collect::<Vec<_>>(),
            "untuned_series": result.untuned.chunks(100).map(|c| serde_json::json!({
                "access": c[c.len()/2].access_number,
                "gbps": c.iter().map(|p| p.throughput).sum::<f64>() / c.len() as f64 / 1e9,
            })).collect::<Vec<_>>(),
        }),
    );
}
