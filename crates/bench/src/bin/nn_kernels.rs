//! Before/after benchmark of the fused NN kernel layer: model 1's
//! train-epoch and batch-predict times under the seed's allocation-heavy
//! scalar path versus the blocked, fused, scratch-reusing kernels now
//! backing `Sequential`.
//!
//! The "before" side is a faithful in-bin replica of the seed
//! implementation: zero-skip scalar `dot`, materialized `transpose()`,
//! per-call `clone()` caches, broadcast/activation/hadamard each allocating
//! a fresh matrix, and an SGD step that clones every gradient. The "after"
//! side is the live `Sequential::train_batch_view` / `predict` path on
//! identical weights and data.
//!
//! Run with `cargo run -p geomancy-bench --bin nn_kernels --release`.
//! Writes `BENCH_nn.json` at the workspace root.

use std::time::Instant;

use geomancy_bench::output::{fast_mode, print_table};
use geomancy_nn::activation::Activation;
use geomancy_nn::init::seeded_rng;
use geomancy_nn::layers::Dense;
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::Matrix;
use geomancy_nn::network::Sequential;
use geomancy_nn::optimizer::Sgd;

/// The seed's scalar `dot` with the data-dependent zero-skip branch.
fn naive_dot(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "shape mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Seed-style dense layer: every forward clones its caches, every backward
/// materializes transposes and intermediate matrices.
struct NaiveDense {
    weight: Matrix,
    bias: Matrix,
    w_grad: Matrix,
    b_grad: Matrix,
    activation: Activation,
    input: Option<Matrix>,
    output: Option<Matrix>,
}

impl NaiveDense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let pre = naive_dot(input, &self.weight).add_row_broadcast(&self.bias);
        let out = self.activation.apply(&pre);
        self.input = Some(input.clone());
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward first");
        let output = self.output.as_ref().expect("forward first");
        let grad_pre = grad_output.hadamard(&self.activation.derivative(output));
        self.w_grad
            .add_assign(&naive_dot(&input.transpose(), &grad_pre));
        self.b_grad.add_assign(&grad_pre.sum_rows());
        naive_dot(&grad_pre, &self.weight.transpose())
    }
}

/// Seed-style network: per-batch `Vec`s of matrices, clone-based SGD step.
struct NaiveNet {
    layers: Vec<NaiveDense>,
    learning_rate: f64,
    clip: f64,
}

impl NaiveNet {
    /// Builds the naive net from the live network's exported weights so both
    /// sides start from identical parameters.
    fn from_weights(weights: &[Matrix], acts: &[Activation], lr: f64) -> Self {
        assert_eq!(weights.len(), acts.len() * 2);
        let layers = acts
            .iter()
            .enumerate()
            .map(|(i, &activation)| {
                let weight = weights[2 * i].clone();
                let bias = weights[2 * i + 1].clone();
                NaiveDense {
                    w_grad: Matrix::zeros(weight.rows(), weight.cols()),
                    b_grad: Matrix::zeros(bias.rows(), bias.cols()),
                    weight,
                    bias,
                    activation,
                    input: None,
                    output: None,
                }
            })
            .collect();
        NaiveNet {
            layers,
            learning_rate: lr,
            clip: 1.0,
        }
    }

    fn predict(&mut self, input: &Matrix) -> Matrix {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn train_batch(&mut self, x: &Matrix, y: &Matrix, loss: Loss) -> f64 {
        let pred = self.predict(x);
        let value = loss.compute(&pred, y);
        let mut grad = loss.gradient(&pred, y);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Seed SGD: clone the gradient, clip, scale into a fresh update
        // matrix, then reallocate the zeroed gradient.
        for layer in &mut self.layers {
            for (value_m, grad_m) in [
                (&mut layer.weight, &mut layer.w_grad),
                (&mut layer.bias, &mut layer.b_grad),
            ] {
                let mut g = grad_m.clone();
                g.clip_inplace(self.clip);
                let update = g.scale(-self.learning_rate);
                value_m.add_assign(&update);
                *grad_m = Matrix::zeros(grad_m.rows(), grad_m.cols());
            }
        }
        value
    }
}

/// Deterministic synthetic workload-shaped data: 6 features in [0, 1].
fn dataset(rows: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_vec(
        rows,
        6,
        (0..rows * 6)
            .map(|i| ((i * 31 + 7) % 101) as f64 / 101.0)
            .collect(),
    );
    let y = Matrix::from_vec(
        rows,
        1,
        (0..rows)
            .map(|i| {
                let r = x.row(i);
                (2.0 * r[0] - r[1] + 0.5 * r[5]).max(0.0)
            })
            .collect(),
    );
    (x, y)
}

/// Minimum over `reps` timed runs of `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let fast = fast_mode();
    let (train_reps, predict_reps) = if fast { (3, 10) } else { (10, 50) };
    let train_rows = 1200;
    let predict_rows = 400;
    let batch = 64;
    let lr = 0.01;
    let acts = [
        Activation::ReLU,
        Activation::ReLU,
        Activation::ReLU,
        Activation::Linear,
    ];

    // Model 1: dense 6 -> 96 -> 48 -> 24 -> 1, identical weights both sides.
    let mut rng = seeded_rng(42);
    let mut net = Sequential::new();
    net.push(Dense::new(6, 96, acts[0], &mut rng));
    net.push(Dense::new(96, 48, acts[1], &mut rng));
    net.push(Dense::new(48, 24, acts[2], &mut rng));
    net.push(Dense::new(24, 1, acts[3], &mut rng));
    let weights = net.export_weights();
    let mut naive = NaiveNet::from_weights(&weights, &acts, lr);

    let (x, y) = dataset(train_rows);
    let (px, _) = dataset(predict_rows);

    // Cross-check: both implementations predict the same outputs.
    let fused_pred = net.predict(&px);
    let naive_pred = naive.predict(&px);
    let mut max_rel = 0.0f64;
    for (a, b) in fused_pred.as_slice().iter().zip(naive_pred.as_slice()) {
        max_rel = max_rel.max((a - b).abs() / b.abs().max(1.0));
    }
    assert!(max_rel < 1e-12, "implementations diverge: {max_rel}");

    // --- train epoch: full pass over train_rows in `batch`-row batches ---
    let mut opt = Sgd::new(lr);
    let run_epoch_fused = |net: &mut Sequential, opt: &mut Sgd| {
        let mut row = 0;
        while row < x.rows() {
            let end = (row + batch).min(x.rows());
            net.train_batch_view(
                x.view_rows(row..end),
                y.view_rows(row..end),
                Loss::MeanSquaredError,
                opt,
            );
            row = end;
        }
    };
    let run_epoch_naive = |naive: &mut NaiveNet| {
        let mut row = 0;
        while row < x.rows() {
            let end = (row + batch).min(x.rows());
            let bx = x.slice_rows(row..end);
            let by = y.slice_rows(row..end);
            naive.train_batch(&bx, &by, Loss::MeanSquaredError);
            row = end;
        }
    };
    // Warm-up (also sizes the fused path's scratch buffers).
    run_epoch_fused(&mut net, &mut opt);
    run_epoch_naive(&mut naive);
    let train_after_ms = best_ms(train_reps, || run_epoch_fused(&mut net, &mut opt));
    let train_before_ms = best_ms(train_reps, || run_epoch_naive(&mut naive));

    // --- batch predict: 400 candidate rows, as rank_locations issues ---
    let _ = net.predict(&px);
    let _ = naive.predict(&px);
    let predict_after_ms = best_ms(predict_reps, || {
        let _ = net.predict(&px);
    });
    let predict_before_ms = best_ms(predict_reps, || {
        let _ = naive.predict(&px);
    });

    let train_speedup = train_before_ms / train_after_ms;
    let predict_speedup = predict_before_ms / predict_after_ms;

    print_table(
        "Fused NN kernels: model 1 before/after",
        &["operation", "before (ms)", "after (ms)", "speedup"],
        &[
            vec![
                format!("train epoch ({train_rows} rows, batch {batch})"),
                format!("{train_before_ms:.3}"),
                format!("{train_after_ms:.3}"),
                format!("{train_speedup:.2}x"),
            ],
            vec![
                format!("predict ({predict_rows} rows)"),
                format!("{predict_before_ms:.3}"),
                format!("{predict_after_ms:.3}"),
                format!("{predict_speedup:.2}x"),
            ],
        ],
    );

    let json = serde_json::json!({
        "model": "model1_dense_6_96_48_24_1",
        "train_rows": train_rows,
        "batch_size": batch,
        "predict_rows": predict_rows,
        "reps": {"train": train_reps, "predict": predict_reps},
        "train_epoch_ms": {
            "before": train_before_ms,
            "after": train_after_ms,
            "speedup": train_speedup,
        },
        "predict_ms": {
            "before": predict_before_ms,
            "after": predict_after_ms,
            "speedup": predict_speedup,
        },
        "max_relative_prediction_difference": max_rel,
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("BENCH_nn.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_nn.json");
    println!("\nwrote {}", path.display());

    assert!(
        train_speedup >= 2.0 && predict_speedup >= 2.0,
        "kernel speedup regressed below 2x (train {train_speedup:.2}x, predict {predict_speedup:.2}x)"
    );
}
