//! Before/after benchmark of the fused NN kernel layer, in two tiers:
//!
//! 1. **Seed vs live (dense model 1)** — train-epoch and batch-predict
//!    times under the seed's allocation-heavy scalar path versus the
//!    blocked, fused, scratch-reusing kernels now backing `Sequential`.
//!    The "before" side is a faithful in-bin replica of the seed
//!    implementation: zero-skip scalar `dot`, materialized `transpose()`,
//!    per-call `clone()` caches, and an SGD step that clones every
//!    gradient.
//! 2. **Scalar vs SIMD backend** (AVX2/FMA hosts) — per-kernel
//!    micro-benchmarks at model-1 shapes and end-to-end train/predict for
//!    both the dense model and a recurrent (LSTM) model, pinning each
//!    backend in turn via `force_backend` (safe here: this binary is
//!    single-threaded).
//!
//! Run with `cargo run -p geomancy-bench --bin nn_kernels --release`.
//! Writes `BENCH_nn.json` at the workspace root, stamped with the
//! detected kernel backend.

use std::time::Instant;

use geomancy_bench::output::{fast_mode, print_table};
use geomancy_nn::activation::Activation;
use geomancy_nn::init::seeded_rng;
use geomancy_nn::layers::{Dense, Lstm};
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::{kernels, Matrix};
use geomancy_nn::network::Sequential;
use geomancy_nn::optimizer::Sgd;

/// The seed's scalar `dot` with the data-dependent zero-skip branch.
fn naive_dot(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "shape mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Seed-style dense layer: every forward clones its caches, every backward
/// materializes transposes and intermediate matrices.
struct NaiveDense {
    weight: Matrix,
    bias: Matrix,
    w_grad: Matrix,
    b_grad: Matrix,
    activation: Activation,
    input: Option<Matrix>,
    output: Option<Matrix>,
}

impl NaiveDense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let pre = naive_dot(input, &self.weight).add_row_broadcast(&self.bias);
        let out = self.activation.apply(&pre);
        self.input = Some(input.clone());
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward first");
        let output = self.output.as_ref().expect("forward first");
        let grad_pre = grad_output.hadamard(&self.activation.derivative(output));
        self.w_grad
            .add_assign(&naive_dot(&input.transpose(), &grad_pre));
        self.b_grad.add_assign(&grad_pre.sum_rows());
        naive_dot(&grad_pre, &self.weight.transpose())
    }
}

/// Seed-style network: per-batch `Vec`s of matrices, clone-based SGD step.
struct NaiveNet {
    layers: Vec<NaiveDense>,
    learning_rate: f64,
    clip: f64,
}

impl NaiveNet {
    /// Builds the naive net from the live network's exported weights so both
    /// sides start from identical parameters.
    fn from_weights(weights: &[Matrix], acts: &[Activation], lr: f64) -> Self {
        assert_eq!(weights.len(), acts.len() * 2);
        let layers = acts
            .iter()
            .enumerate()
            .map(|(i, &activation)| {
                let weight = weights[2 * i].clone();
                let bias = weights[2 * i + 1].clone();
                NaiveDense {
                    w_grad: Matrix::zeros(weight.rows(), weight.cols()),
                    b_grad: Matrix::zeros(bias.rows(), bias.cols()),
                    weight,
                    bias,
                    activation,
                    input: None,
                    output: None,
                }
            })
            .collect();
        NaiveNet {
            layers,
            learning_rate: lr,
            clip: 1.0,
        }
    }

    fn predict(&mut self, input: &Matrix) -> Matrix {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn train_batch(&mut self, x: &Matrix, y: &Matrix, loss: Loss) -> f64 {
        let pred = self.predict(x);
        let value = loss.compute(&pred, y);
        let mut grad = loss.gradient(&pred, y);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Seed SGD: clone the gradient, clip, scale into a fresh update
        // matrix, then reallocate the zeroed gradient.
        for layer in &mut self.layers {
            for (value_m, grad_m) in [
                (&mut layer.weight, &mut layer.w_grad),
                (&mut layer.bias, &mut layer.b_grad),
            ] {
                let mut g = grad_m.clone();
                g.clip_inplace(self.clip);
                let update = g.scale(-self.learning_rate);
                value_m.add_assign(&update);
                *grad_m = Matrix::zeros(grad_m.rows(), grad_m.cols());
            }
        }
        value
    }
}

/// Deterministic synthetic workload-shaped data: 6 features in [0, 1].
fn dataset(rows: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_vec(
        rows,
        6,
        (0..rows * 6)
            .map(|i| ((i * 31 + 7) % 101) as f64 / 101.0)
            .collect(),
    );
    let y = Matrix::from_vec(
        rows,
        1,
        (0..rows)
            .map(|i| {
                let r = x.row(i);
                (2.0 * r[0] - r[1] + 0.5 * r[5]).max(0.0)
            })
            .collect(),
    );
    (x, y)
}

/// Deterministic synthetic recurrent windows: `timesteps * features`
/// flattened columns per row, values in [-0.4, 0.6).
fn lstm_dataset(rows: usize, cols: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i * 29 + 11) % 97) as f64 / 97.0 - 0.4)
            .collect(),
    );
    let y = Matrix::from_vec(
        rows,
        1,
        (0..rows)
            .map(|i| {
                let r = x.row(i);
                (r[0] + 0.5 * r[7] - r[cols - 8]).tanh()
            })
            .collect(),
    );
    (x, y)
}

/// Deterministic filler matrix for kernel micro-benchmarks.
fn pseudo(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i * 31 + seed * 17 + 7) % 103) as f64 / 103.0 - 0.4)
            .collect(),
    )
}

/// Minimum over `reps` timed runs of `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Times `f` once per backend: scalar always, AVX2/FMA when the host
/// supports it. Only sound in this single-threaded binary — `force_backend`
/// flips process-global dispatch.
fn time_backends(simd_available: bool, reps: usize, mut f: impl FnMut()) -> (f64, Option<f64>) {
    assert!(kernels::force_backend(kernels::KernelBackend::Scalar));
    f(); // warm-up sizes scratch buffers under the scalar backend
    let scalar = best_ms(reps, &mut f);
    let simd = if simd_available {
        assert!(kernels::force_backend(kernels::KernelBackend::Avx2Fma));
        f();
        Some(best_ms(reps, &mut f))
    } else {
        None
    };
    (scalar, simd)
}

/// JSON blob for a scalar/SIMD timing pair.
fn pair_json(scalar_ms: f64, simd_ms: Option<f64>) -> serde_json::Value {
    match simd_ms {
        Some(s) => serde_json::json!({
            "scalar": scalar_ms,
            "avx2_fma": s,
            "speedup": scalar_ms / s,
        }),
        None => serde_json::json!({ "scalar": scalar_ms }),
    }
}

/// Table row for a scalar/SIMD timing pair.
fn pair_row(label: &str, scalar_ms: f64, simd_ms: Option<f64>) -> Vec<String> {
    match simd_ms {
        Some(s) => vec![
            label.to_string(),
            format!("{scalar_ms:.3}"),
            format!("{s:.3}"),
            format!("{:.2}x", scalar_ms / s),
        ],
        None => vec![
            label.to_string(),
            format!("{scalar_ms:.3}"),
            "n/a".to_string(),
            "n/a".to_string(),
        ],
    }
}

fn main() {
    let fast = fast_mode();
    let (train_reps, predict_reps) = if fast { (3, 10) } else { (10, 50) };
    let train_rows = 1200;
    let predict_rows = 400;
    let batch = 64;
    let lr = 0.01;
    let acts = [
        Activation::ReLU,
        Activation::ReLU,
        Activation::ReLU,
        Activation::Linear,
    ];

    // Model 1: dense 6 -> 96 -> 48 -> 24 -> 1, identical weights both sides.
    let mut rng = seeded_rng(42);
    let mut net = Sequential::new();
    net.push(Dense::new(6, 96, acts[0], &mut rng));
    net.push(Dense::new(96, 48, acts[1], &mut rng));
    net.push(Dense::new(48, 24, acts[2], &mut rng));
    net.push(Dense::new(24, 1, acts[3], &mut rng));
    let weights = net.export_weights();
    let mut naive = NaiveNet::from_weights(&weights, &acts, lr);

    let (x, y) = dataset(train_rows);
    let (px, _) = dataset(predict_rows);

    // Cross-check: both implementations predict the same outputs.
    let fused_pred = net.predict(&px);
    let naive_pred = naive.predict(&px);
    let mut max_rel = 0.0f64;
    for (a, b) in fused_pred.as_slice().iter().zip(naive_pred.as_slice()) {
        max_rel = max_rel.max((a - b).abs() / b.abs().max(1.0));
    }
    assert!(max_rel < 1e-12, "implementations diverge: {max_rel}");

    // --- train epoch: full pass over train_rows in `batch`-row batches ---
    let mut opt = Sgd::new(lr);
    let run_epoch_fused = |net: &mut Sequential, opt: &mut Sgd| {
        let mut row = 0;
        while row < x.rows() {
            let end = (row + batch).min(x.rows());
            net.train_batch_view(
                x.view_rows(row..end),
                y.view_rows(row..end),
                Loss::MeanSquaredError,
                opt,
            );
            row = end;
        }
    };
    let run_epoch_naive = |naive: &mut NaiveNet| {
        let mut row = 0;
        while row < x.rows() {
            let end = (row + batch).min(x.rows());
            let bx = x.slice_rows(row..end);
            let by = y.slice_rows(row..end);
            naive.train_batch(&bx, &by, Loss::MeanSquaredError);
            row = end;
        }
    };
    // Warm-up (also sizes the fused path's scratch buffers).
    run_epoch_fused(&mut net, &mut opt);
    run_epoch_naive(&mut naive);
    let train_after_ms = best_ms(train_reps, || run_epoch_fused(&mut net, &mut opt));
    let train_before_ms = best_ms(train_reps, || run_epoch_naive(&mut naive));

    // --- batch predict: 400 candidate rows, as rank_locations issues ---
    let _ = net.predict(&px);
    let _ = naive.predict(&px);
    let predict_after_ms = best_ms(predict_reps, || {
        let _ = net.predict(&px);
    });
    let predict_before_ms = best_ms(predict_reps, || {
        let _ = naive.predict(&px);
    });

    let train_speedup = train_before_ms / train_after_ms;
    let predict_speedup = predict_before_ms / predict_after_ms;

    print_table(
        "Fused NN kernels: model 1 before/after",
        &["operation", "before (ms)", "after (ms)", "speedup"],
        &[
            vec![
                format!("train epoch ({train_rows} rows, batch {batch})"),
                format!("{train_before_ms:.3}"),
                format!("{train_after_ms:.3}"),
                format!("{train_speedup:.2}x"),
            ],
            vec![
                format!("predict ({predict_rows} rows)"),
                format!("{predict_before_ms:.3}"),
                format!("{predict_after_ms:.3}"),
                format!("{predict_speedup:.2}x"),
            ],
        ],
    );

    // ------------------------------------------------------------------
    // Tier 2: scalar vs AVX2/FMA backend. The detected backend is pinned
    // per measurement and restored afterwards.
    let detected = kernels::backend();
    let backend_name = kernels::backend_name();
    let simd_available = detected == kernels::KernelBackend::Avx2Fma;
    let (micro_reps, micro_iters) = if fast { (5, 50) } else { (20, 400) };

    // Per-kernel micro-benches at model-1 shapes (batch 64, 96 -> 48 being
    // the dominant GEMM). Each timed rep runs `micro_iters` kernel calls.
    let a1 = pseudo(64, 96, 1);
    let b1 = pseudo(96, 48, 2);
    let g1 = pseudo(64, 48, 3);
    let bias1 = pseudo(1, 48, 4);
    let mut o_acc = Matrix::zeros(64, 48);
    let (mm_scalar, mm_simd) = time_backends(simd_available, micro_reps, || {
        o_acc.fill(0.0);
        for _ in 0..micro_iters {
            kernels::matmul_acc(a1.view(), &b1, &mut o_acc);
        }
    });
    let mut w_grad = Matrix::zeros(96, 48);
    let (atb_scalar, atb_simd) = time_backends(simd_available, micro_reps, || {
        w_grad.fill(0.0);
        for _ in 0..micro_iters {
            kernels::matmul_at_b_acc(a1.view(), g1.view(), &mut w_grad);
        }
    });
    let mut dx = Matrix::default();
    let (abt_scalar, abt_simd) = time_backends(simd_available, micro_reps, || {
        for _ in 0..micro_iters {
            kernels::matmul_a_bt_into(g1.view(), &b1, &mut dx);
        }
    });
    let mut fwd = Matrix::default();
    let (mba_scalar, mba_simd) = time_backends(simd_available, micro_reps, || {
        for _ in 0..micro_iters {
            kernels::matmul_bias_act_into(a1.view(), &b1, &bias1, Activation::ReLU, &mut fwd);
        }
    });
    // LSTM fused element-wise backward at batch 64 x 32 hidden units.
    let gates: Vec<Matrix> = (0..8).map(|s| pseudo(64, 32, 10 + s)).collect();
    let mut z = [
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
    ];
    let (lstm_ew_scalar, lstm_ew_simd) = time_backends(simd_available, micro_reps, || {
        let [z1, z2, z3, z4, z5] = &mut z;
        for _ in 0..micro_iters {
            kernels::lstm_backward_elementwise(
                &gates[0],
                &gates[1],
                &gates[2],
                &gates[3],
                &gates[4],
                &gates[5],
                &gates[6],
                &gates[7],
                Activation::Tanh,
                z1,
                z2,
                z3,
                z4,
                z5,
            );
        }
    });

    print_table(
        &format!("Kernel micro-benches, {micro_iters} calls/rep (scalar vs AVX2/FMA)"),
        &["kernel", "scalar (ms)", "avx2_fma (ms)", "speedup"],
        &[
            pair_row("matmul_acc 64x96 . 96x48", mm_scalar, mm_simd),
            pair_row("matmul_at_b_acc 96x64 . 64x48", atb_scalar, atb_simd),
            pair_row("matmul_a_bt_into 64x48 . 48x96", abt_scalar, abt_simd),
            pair_row("matmul_bias_act_into + ReLU", mba_scalar, mba_simd),
            pair_row(
                "lstm_backward_elementwise 64x32",
                lstm_ew_scalar,
                lstm_ew_simd,
            ),
        ],
    );

    // Dense end-to-end under each backend (fresh net so scratch sizing is
    // part of the warm-up, not the measurement).
    let mut rng2 = seeded_rng(43);
    let mut dnet = Sequential::new();
    dnet.push(Dense::new(6, 96, acts[0], &mut rng2));
    dnet.push(Dense::new(96, 48, acts[1], &mut rng2));
    dnet.push(Dense::new(48, 24, acts[2], &mut rng2));
    dnet.push(Dense::new(24, 1, acts[3], &mut rng2));
    let mut dopt = Sgd::new(lr);
    let (dense_train_scalar, dense_train_simd) = time_backends(simd_available, train_reps, || {
        run_epoch_fused(&mut dnet, &mut dopt);
    });
    let (dense_pred_scalar, dense_pred_simd) = time_backends(simd_available, predict_reps, || {
        let _ = dnet.predict(&px);
    });

    // Recurrent end-to-end: LSTM over 8 timesteps of 6 features, 32 hidden
    // units, dense linear head — exercises the fused gate/state kernels.
    let (lstm_features, lstm_steps, lstm_hidden) = (6, 8, 32);
    let lstm_train_rows = 600;
    let lstm_predict_rows = 200;
    let (lx, ly) = lstm_dataset(lstm_train_rows, lstm_features * lstm_steps);
    let (lpx, _) = lstm_dataset(lstm_predict_rows, lstm_features * lstm_steps);
    let mut rng3 = seeded_rng(44);
    let mut lnet = Sequential::new();
    lnet.push(Lstm::new(
        lstm_features,
        lstm_hidden,
        lstm_steps,
        Activation::Tanh,
        &mut rng3,
    ));
    lnet.push(Dense::new(lstm_hidden, 1, Activation::Linear, &mut rng3));
    let mut lopt = Sgd::new(lr);
    let run_epoch_lstm = |net: &mut Sequential, opt: &mut Sgd| {
        let mut row = 0;
        while row < lx.rows() {
            let end = (row + batch).min(lx.rows());
            net.train_batch_view(
                lx.view_rows(row..end),
                ly.view_rows(row..end),
                Loss::MeanSquaredError,
                opt,
            );
            row = end;
        }
    };
    let (lstm_train_scalar, lstm_train_simd) = time_backends(simd_available, train_reps, || {
        run_epoch_lstm(&mut lnet, &mut lopt);
    });
    let (lstm_pred_scalar, lstm_pred_simd) = time_backends(simd_available, predict_reps, || {
        let _ = lnet.predict(&lpx);
    });

    // Restore the detected backend before anything else runs.
    assert!(kernels::force_backend(detected));

    print_table(
        "End-to-end scalar vs AVX2/FMA",
        &["scenario", "scalar (ms)", "avx2_fma (ms)", "speedup"],
        &[
            pair_row(
                &format!("dense train epoch ({train_rows} rows)"),
                dense_train_scalar,
                dense_train_simd,
            ),
            pair_row(
                &format!("dense predict ({predict_rows} rows)"),
                dense_pred_scalar,
                dense_pred_simd,
            ),
            pair_row(
                &format!("lstm train epoch ({lstm_train_rows} rows)"),
                lstm_train_scalar,
                lstm_train_simd,
            ),
            pair_row(
                &format!("lstm predict ({lstm_predict_rows} rows)"),
                lstm_pred_scalar,
                lstm_pred_simd,
            ),
        ],
    );

    let json = serde_json::json!({
        "model": "model1_dense_6_96_48_24_1",
        "kernel_backend": backend_name,
        "train_rows": train_rows,
        "batch_size": batch,
        "predict_rows": predict_rows,
        "reps": {"train": train_reps, "predict": predict_reps},
        "train_epoch_ms": {
            "before": train_before_ms,
            "after": train_after_ms,
            "speedup": train_speedup,
        },
        "predict_ms": {
            "before": predict_before_ms,
            "after": predict_after_ms,
            "speedup": predict_speedup,
        },
        "max_relative_prediction_difference": max_rel,
        "simd": {
            "available": simd_available,
            "micro_iters": micro_iters,
            "kernels_ms": {
                "matmul_acc_64x96x48": pair_json(mm_scalar, mm_simd),
                "matmul_at_b_acc_96x64x48": pair_json(atb_scalar, atb_simd),
                "matmul_a_bt_into_64x48x96": pair_json(abt_scalar, abt_simd),
                "matmul_bias_act_relu_64x96x48": pair_json(mba_scalar, mba_simd),
                "lstm_backward_elementwise_64x32": pair_json(lstm_ew_scalar, lstm_ew_simd),
            },
            "dense_end_to_end": {
                "train_epoch_ms": pair_json(dense_train_scalar, dense_train_simd),
                "predict_ms": pair_json(dense_pred_scalar, dense_pred_simd),
            },
            "lstm_end_to_end": {
                "model": "lstm_6f_8t_h32_dense_1",
                "train_rows": lstm_train_rows,
                "predict_rows": lstm_predict_rows,
                "train_epoch_ms": pair_json(lstm_train_scalar, lstm_train_simd),
                "predict_ms": pair_json(lstm_pred_scalar, lstm_pred_simd),
            },
        },
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("BENCH_nn.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_nn.json");
    println!("\nwrote {}", path.display());

    assert!(
        train_speedup >= 2.0 && predict_speedup >= 2.0,
        "kernel speedup regressed below 2x (train {train_speedup:.2}x, predict {predict_speedup:.2}x)"
    );

    // SIMD acceptance gates (skipped under GEOMANCY_FAST: too few reps to
    // be noise-proof, and skipped entirely on hosts without AVX2/FMA).
    if simd_available && !fast {
        let mm_speedup = mm_scalar / mm_simd.expect("measured on AVX2 host");
        assert!(
            mm_speedup >= 1.5,
            "matmul_acc SIMD speedup below 1.5x: {mm_speedup:.2}x"
        );
        for (label, scalar, simd) in [
            ("dense train", dense_train_scalar, dense_train_simd),
            ("dense predict", dense_pred_scalar, dense_pred_simd),
            ("lstm train", lstm_train_scalar, lstm_train_simd),
            ("lstm predict", lstm_pred_scalar, lstm_pred_simd),
        ] {
            let speedup = scalar / simd.expect("measured on AVX2 host");
            assert!(
                speedup > 1.0,
                "{label}: SIMD backend not faster end-to-end ({speedup:.2}x)"
            );
        }
    }
}
