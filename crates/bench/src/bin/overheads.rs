//! §VIII overhead study as a single table: training time, prediction time,
//! ReplayDB ingest, and the full retrain-and-layout cycle, measured inline
//! (Criterion gives the rigorous versions; this prints the paper-style
//! summary in seconds).
//!
//! Run with `cargo run -p geomancy-bench --bin overheads --release`.

use std::time::Instant;

use geomancy_bench::output::{print_table, write_json};
use geomancy_core::dataset::forecasting_dataset;
use geomancy_core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy_core::models::{build_model, ModelId};
use geomancy_nn::init::seeded_rng;
use geomancy_nn::loss::Loss;
use geomancy_nn::optimizer::Sgd;
use geomancy_nn::training::{train, DataSplit, TrainConfig};
use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_trace::features::Z;

fn synthetic_records(n: u64) -> Vec<AccessRecord> {
    (0..n)
        .map(|i| AccessRecord {
            access_number: i,
            fid: FileId(i % 24),
            fsid: DeviceId(((i / 15) % 6) as u32),
            rb: 1_000_000 + (i % 17) * 50_000,
            wb: 0,
            ots: i * 2,
            otms: ((i * 37) % 1000) as u16,
            cts: i * 2 + 1,
            ctms: ((i * 53) % 1000) as u16,
        })
        .collect()
}

fn main() {
    println!("§VIII overhead study (paper values in parentheses)");
    let records = synthetic_records(12_000);
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();

    // 1. Model 1 full training run: 200 epochs on 12 000 entries.
    let ds = forecasting_dataset(&records, 1, 4, 0);
    let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
    let mut rng = seeded_rng(0);
    let mut net = build_model(ModelId::new(1), Z, 8, &mut rng);
    let mut opt = Sgd::new(0.05);
    let report = train(
        &mut net,
        &mut opt,
        &split,
        &TrainConfig {
            epochs: 200,
            batch_size: 64,
            loss: Loss::MeanSquaredError,
            patience: None,
        },
    );
    rows.push(vec![
        "model 1 train, 200 epochs x 12k entries".into(),
        format!("{:.2} s", report.training_time.as_secs_f64()),
        "≈ 25 s (Keras)".into(),
    ]);
    json.insert(
        "train_200x12k_s".into(),
        serde_json::json!(report.training_time.as_secs_f64()),
    );
    rows.push(vec![
        "model 1 predict, full test partition".into(),
        format!("{:.2} ms", report.prediction_time.as_secs_f64() * 1e3),
        "≈ 50 ms".into(),
    ]);
    json.insert(
        "predict_test_ms".into(),
        serde_json::json!(report.prediction_time.as_secs_f64() * 1e3),
    );

    // 2. ReplayDB batch ingest (the paper's ~3 ms includes a network hop).
    let mut db = ReplayDb::new();
    let batch: Vec<AccessRecord> = synthetic_records(64);
    let start = Instant::now();
    for i in 0..100u64 {
        let shifted: Vec<AccessRecord> = batch
            .iter()
            .map(|r| AccessRecord {
                access_number: r.access_number + i * 64,
                ots: r.ots + i * 200,
                cts: r.cts + i * 200,
                ..*r
            })
            .collect();
        db.insert_batch(i * 200_000_000, &shifted);
    }
    let per_batch_us = start.elapsed().as_secs_f64() / 100.0 * 1e6;
    rows.push(vec![
        "ReplayDB 64-record batch ingest".into(),
        format!("{per_batch_us:.1} µs"),
        "≈ 3 ms (incl. network hop)".into(),
    ]);
    json.insert("db_batch_ingest_us".into(), serde_json::json!(per_batch_us));

    // 3. The full online cycle: retrain + rank every file at every device.
    let mut full_db = ReplayDb::new();
    for (i, r) in synthetic_records(12_000).into_iter().enumerate() {
        full_db.insert(i as u64 * 1_000_000, r);
    }
    let mut engine = DrlEngine::new(DrlConfig {
        train_window: 1_000,
        epochs: 40,
        smoothing_window: 1,
        ..DrlConfig::default()
    });
    let start = Instant::now();
    engine.retrain(&full_db).expect("data suffices");
    let retrain_s = start.elapsed().as_secs_f64();
    let devices: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    let start = Instant::now();
    for fid in 0..24u64 {
        let _ = engine.rank_locations(
            &PlacementQuery {
                fid: FileId(fid),
                read_bytes: 500_000_000,
                write_bytes: 0,
                now_secs: 24_000,
                now_ms: 0,
            },
            &devices,
        );
    }
    let layout_ms = start.elapsed().as_secs_f64() * 1e3;
    rows.push(vec![
        "online retrain (40 epochs, live window)".into(),
        format!("{retrain_s:.3} s"),
        "part of the 26.5 s bound".into(),
    ]);
    rows.push(vec![
        "layout prediction (24 files x 6 devices)".into(),
        format!("{layout_ms:.2} ms"),
        "48.2 ms (13-feature GPU model)".into(),
    ]);
    rows.push(vec![
        "full retrain + layout cycle".into(),
        format!("{:.3} s", retrain_s + layout_ms / 1e3),
        "≤ 26.5 s".into(),
    ]);
    json.insert("online_retrain_s".into(), serde_json::json!(retrain_s));
    json.insert("layout_prediction_ms".into(), serde_json::json!(layout_ms));

    print_table(
        "Overheads (measured vs paper)",
        &["operation", "measured", "paper"],
        &rows,
    );
    println!(
        "\nAbsolute speedups come from the tiny network and the in-process stack;\n\
         the ordering (training ≫ prediction ≫ ingest) matches the paper."
    );
    write_json("overheads", &serde_json::Value::Object(json));
}
