//! Benchmark of the incremental retraining pipeline, with the gates
//! that prove retrain latency is independent of history length:
//!
//! 1. **Latency scaling** — a second retrain cycle through the live
//!    service after a fixed-size ingest burst, at a small and a large
//!    history. Full mode re-snapshots everything, so its cycle grows
//!    with history; incremental mode moves only the delta past the
//!    per-shard watermarks. Gates: the incremental cycle stays flat
//!    within 2× (plus a 20 ms noise floor) from the small to the large
//!    history, and (full scale only) the full cycle grows ≥ 2× while
//!    the incremental cycle beats it outright at the large history.
//! 2. **Delta accounting** — the `retrain_records` counter after each
//!    run must equal the exact number of records the cycles were
//!    entitled to move: `H + (H + D)` in full mode, `H + D` in
//!    incremental mode. Any over-count means a snapshot moved records
//!    behind the watermark.
//! 3. **Quality** — warm-started training (bootstrap on the history,
//!    one incremental fit on the delta plus a stride-sampled replay)
//!    versus from-scratch training on everything, on the zipf-sampled
//!    BELLE II-style workload. Gate: the warm validation MAE stays
//!    within tolerance of the from-scratch MAE.
//!
//! Run with `cargo run -p geomancy-bench --bin retrain_bench --release`.
//! Writes `BENCH_retrain.json` at the workspace root. `GEOMANCY_FAST=1`
//! shrinks the histories for smoke runs (and relaxes the growth gate,
//! which needs a merge big enough to dominate the fixed training cost).

use std::path::Path;
use std::time::Instant;

use geomancy_bench::output::{fast_mode, print_table};
use geomancy_core::drl::{DrlConfig, DrlEngine};
use geomancy_replaydb::ReplayDb;
use geomancy_serve::{PlacementService, RetrainMode, ServeConfig, TrainerConfig};
use geomancy_sim::population::{FilePopulation, PopulationConfig};
use geomancy_sim::record::{AccessRecord, DeviceId};

const DEVICES: u32 = 6;
const BATCH: usize = 256;
const FILES: usize = 4096;

struct Scale {
    small_history: u64,
    large_history: u64,
    /// Fresh records ingested between the bootstrap and the measured cycle.
    delta: u64,
    quality_history: u64,
    quality_delta: u64,
}

impl Scale {
    fn pick(fast: bool) -> Scale {
        if fast {
            Scale {
                small_history: 2_000,
                large_history: 20_000,
                delta: 1_000,
                quality_history: 2_000,
                quality_delta: 500,
            }
        } else {
            Scale {
                small_history: 10_000,
                large_history: 400_000,
                delta: 2_000,
                quality_history: 4_000,
                quality_delta: 1_000,
            }
        }
    }
}

fn population() -> FilePopulation {
    FilePopulation::generate(
        42,
        &PopulationConfig {
            file_count: FILES,
            zipf_exponent: 1.0,
            ..PopulationConfig::default()
        },
    )
}

/// One zipf-sampled whole-file read. Device `d` sustains `(d + 1) × 25`
/// MB/s, so observed throughput depends on the device — the signal the
/// model must learn, warm-started or not.
fn record(pop: &mut FilePopulation, n: u64) -> AccessRecord {
    let file = pop.next_access();
    let dev = (n % DEVICES as u64) as u32;
    let speed = (u64::from(dev) + 1) * 25_000_000;
    let open = n * 1_000;
    let close = open + (file.bytes * 1_000_000 / speed).max(1_000);
    AccessRecord {
        access_number: n,
        fid: file.fid,
        fsid: DeviceId(dev),
        rb: file.bytes,
        wb: 0,
        ots: open / 1_000_000,
        otms: ((open / 1000) % 1000) as u16,
        cts: close / 1_000_000,
        ctms: ((close / 1000) % 1000) as u16,
    }
}

fn service(mode: RetrainMode) -> PlacementService {
    PlacementService::start(ServeConfig {
        shards: 4,
        candidates: (0..DEVICES).map(DeviceId).collect(),
        // Small epochs and window: training cost is fixed, so what the
        // latency phase measures is the snapshot/merge path that scales
        // with history.
        drl: DrlConfig {
            train_window: 512,
            epochs: 6,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        trainer: TrainerConfig {
            mode,
            ..TrainerConfig::default()
        },
        ..ServeConfig::default()
    })
}

fn ingest(service: &PlacementService, pop: &mut FilePopulation, from: u64, count: u64) {
    let mut batch = Vec::with_capacity(BATCH);
    for n in from..from + count {
        batch.push(record(pop, n));
        if batch.len() == BATCH {
            service.ingest(n * 1_000, &batch).expect("ingest batch");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        service
            .ingest((from + count) * 1_000, &batch)
            .expect("ingest tail");
    }
}

struct CycleRun {
    /// Wall-clock of the second (measured) retrain cycle.
    cycle2_us: u64,
    /// Total snapshot records both cycles moved, from the metrics.
    records_moved: u64,
}

/// Bootstrap-retrain on `history` records, ingest `delta` more, then
/// time the second cycle end to end (snapshot fan-out, merge, train,
/// publish).
fn cycle_run(mode: RetrainMode, history: u64, delta: u64) -> CycleRun {
    let service = service(mode);
    let mut pop = population();
    ingest(&service, &mut pop, 0, history);
    service.retrain_now().expect("bootstrap retrain");
    ingest(&service, &mut pop, history, delta);
    let started = Instant::now();
    service.retrain_now().expect("measured retrain");
    let cycle2_us = started.elapsed().as_micros() as u64;
    let records_moved = service.metrics().retrain_records;
    service.shutdown();
    CycleRun {
        cycle2_us,
        records_moved,
    }
}

struct LatencyPoint {
    history: u64,
    full: CycleRun,
    incr: CycleRun,
}

struct QualityPhase {
    scratch_mae: f64,
    warm_mae: f64,
}

fn quality_phase(scale: &Scale) -> QualityPhase {
    let config = DrlConfig {
        train_window: 2000,
        epochs: 20,
        smoothing_window: 8,
        seed: 7,
        ..DrlConfig::default()
    };
    let mut pop = population();
    let history: Vec<AccessRecord> = (0..scale.quality_history)
        .map(|n| record(&mut pop, n))
        .collect();
    let delta: Vec<AccessRecord> = (scale.quality_history
        ..scale.quality_history + scale.quality_delta)
        .map(|n| record(&mut pop, n))
        .collect();

    // From-scratch reference: one full retrain over everything.
    let mut scratch = DrlEngine::new(config.clone());
    let mut db = ReplayDb::new();
    for r in history.iter().chain(delta.iter()) {
        db.insert(r.access_number * 1_000, *r);
    }
    let scratch_mae = scratch
        .retrain(&db)
        .expect("scratch retrain")
        .validation_error
        .mean;

    // Warm start: bootstrap on the history, then one incremental fit on
    // the delta plus a stride-sampled replay (the trainer's 25% ratio).
    let mut warm = DrlEngine::new(config);
    let mut db = ReplayDb::new();
    for r in &history {
        db.insert(r.access_number * 1_000, *r);
    }
    warm.retrain(&db).expect("bootstrap retrain");
    let replay_n = delta.len() / 4;
    let replay: Vec<AccessRecord> = (0..replay_n)
        .map(|k| history[k * history.len() / replay_n])
        .collect();
    let warm_mae = warm
        .retrain_incremental(&delta, &replay)
        .expect("warm incremental fit")
        .validation_error
        .mean;
    QualityPhase {
        scratch_mae,
        warm_mae,
    }
}

fn main() {
    let fast = fast_mode();
    let scale = Scale::pick(fast);
    println!(
        "retrain bench: histories {} and {}, delta {}, {} zipf files{}",
        scale.small_history,
        scale.large_history,
        scale.delta,
        FILES,
        if fast { " (fast mode)" } else { "" }
    );

    let points: Vec<LatencyPoint> = [scale.small_history, scale.large_history]
        .into_iter()
        .map(|history| LatencyPoint {
            history,
            full: cycle_run(RetrainMode::Full, history, scale.delta),
            incr: cycle_run(RetrainMode::Incremental, history, scale.delta),
        })
        .collect();
    let quality = quality_phase(&scale);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in &points {
        rows.push(vec![
            format!("full cycle @ {} history", p.history),
            format!(
                "{} µs ({} records moved)",
                p.full.cycle2_us, p.full.records_moved
            ),
        ]);
        rows.push(vec![
            format!("incremental cycle @ {} history", p.history),
            format!(
                "{} µs ({} records moved)",
                p.incr.cycle2_us, p.incr.records_moved
            ),
        ]);
    }
    rows.push(vec![
        "from-scratch validation MAE".into(),
        format!("{:.2}%", quality.scratch_mae),
    ]);
    rows.push(vec![
        "warm-started validation MAE".into(),
        format!("{:.2}%", quality.warm_mae),
    ]);
    print_table("incremental vs full retraining", &["phase", "value"], &rows);

    let (small, large) = (&points[0], &points[1]);
    // ±2× with a 20 ms floor: both cycles are training-dominated at
    // these scales, so sub-floor differences are scheduler noise.
    const FLOOR_US: u64 = 20_000;
    let incr_ratio = large.incr.cycle2_us as f64 / small.incr.cycle2_us.max(FLOOR_US) as f64;
    let full_ratio = large.full.cycle2_us as f64 / small.full.cycle2_us.max(1) as f64;

    let json = serde_json::json!({
        "config": {
            "fast": fast,
            "small_history": scale.small_history,
            "large_history": scale.large_history,
            "delta": scale.delta,
            "files": FILES,
            "zipf_exponent": 1.0,
            "quality_history": scale.quality_history,
            "quality_delta": scale.quality_delta,
        },
        "latency": points.iter().map(|p| serde_json::json!({
            "history": p.history,
            "full_cycle2_us": p.full.cycle2_us,
            "full_records_moved": p.full.records_moved,
            "incremental_cycle2_us": p.incr.cycle2_us,
            "incremental_records_moved": p.incr.records_moved,
        })).collect::<Vec<_>>(),
        "scaling": {
            "incremental_ratio": incr_ratio,
            "full_ratio": full_ratio,
        },
        "quality": {
            "scratch_validation_mae_pct": quality.scratch_mae,
            "warm_validation_mae_pct": quality.warm_mae,
        },
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("BENCH_retrain.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_retrain.json");
    println!("\nwrote {}", path.display());

    // ── gates ──────────────────────────────────────────────────────
    // Delta accounting: cycle 1 moves H, cycle 2 moves H+D (full) or D
    // (incremental) — exactly.
    for p in &points {
        assert_eq!(
            p.full.records_moved,
            p.history + (p.history + scale.delta),
            "full-mode snapshots moved the wrong record count at history {}",
            p.history
        );
        assert_eq!(
            p.incr.records_moved,
            p.history + scale.delta,
            "delta snapshots moved records behind the watermark at history {}",
            p.history
        );
    }
    assert!(
        incr_ratio <= 2.0,
        "incremental cycle grew {incr_ratio:.2}x from {} to {} records — not flat",
        small.history,
        large.history
    );
    if !fast {
        // A 40× history must show up in the full path (snapshot + merge
        // scale with H) and the incremental path must beat it outright.
        assert!(
            full_ratio >= 2.0,
            "full cycle only grew {full_ratio:.2}x from {} to {} records — \
             the merge no longer dominates and the bench measures nothing",
            small.history,
            large.history
        );
        assert!(
            large.incr.cycle2_us < large.full.cycle2_us,
            "incremental cycle ({} µs) not faster than full ({} µs) at {} records",
            large.incr.cycle2_us,
            large.full.cycle2_us,
            large.history
        );
    }
    let (factor, slack) = if fast { (2.0, 10.0) } else { (1.5, 5.0) };
    assert!(
        quality.warm_mae <= quality.scratch_mae * factor + slack,
        "warm-started MAE {:.2}% outside tolerance of from-scratch {:.2}%",
        quality.warm_mae,
        quality.scratch_mae
    );
    println!("all gates passed");
}
