//! Before/after benchmark of the `geomancy-serve` query engine: the
//! per-file baseline (one request per round trip, `max_batch = 1`)
//! versus the batched path (whole-run submissions that the engine fuses
//! into single forward passes after deduplicating repeated shapes).
//!
//! Both sides replay the same BELLE II question list against a freshly
//! trained 4-shard service via [`run_belle2_load`]; only the submission
//! style and the engine's fusion cap differ. A hot-swap soak follows:
//! ingest/retrain/query concurrently through several model swaps and
//! verify zero lost ingest records and zero torn-model decisions.
//!
//! A wire phase follows: the same batched question list replayed over
//! loopback TCP through `geomancy-net` (real frames, real sockets, the
//! per-connection pipelining client), gated at ≥50% of the in-process
//! batched rate — plus a check that overload round-trips as an explicit
//! wire status instead of a connection reset.
//!
//! Run with `cargo run -p geomancy-bench --bin serve_bench --release`.
//! Writes `BENCH_serve.json` at the workspace root. `GEOMANCY_FAST=1`
//! shrinks the workload and relaxes the speedup gate for smoke runs;
//! `--net` skips the hot-swap soak to reach the wire numbers sooner.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use geomancy_bench::output::{fast_mode, print_table};
use geomancy_cluster::{
    reserve_loopback_addrs, shard_for, ClusterClient, ClusterError, ClusterNode, ClusterNodeConfig,
};
use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig, NetError, NetServer, WireStatus};
use geomancy_serve::{
    prepare_belle2, run_belle2_load, AdmissionConfig, LoadConfig, LoadReport, PlacementRequest,
    PlacementService, QueryError, QueryMode, ServeConfig,
};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

const SHARDS: usize = 4;

/// Timed repetitions for the rate-gated phases; the fastest round is
/// the measurement. The batched and wire replays each finish in tens of
/// milliseconds, so a single round is dominated by scheduler placement
/// and cache warmup — gating a ratio of two such one-shot rates is a
/// coin flip. Best-of-N compares what each path can sustain.
const MEASURE_ROUNDS: usize = 3;

/// Live thread count of this process (Linux); 0 if unreadable.
///
/// Sampled mid-load to show the reactor pool's footprint: the old
/// thread-per-shard/-client layout scaled with topology, the shared
/// reactor holds a fixed worker pool regardless of shard count.
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn drl() -> DrlConfig {
    DrlConfig {
        train_window: 800,
        epochs: 20,
        smoothing_window: 8,
        ..DrlConfig::default()
    }
}

fn serve_config(max_batch: usize) -> ServeConfig {
    ServeConfig {
        shards: SHARDS,
        max_batch,
        candidates: (0..6).map(DeviceId).collect(),
        drl: drl(),
        ..ServeConfig::default()
    }
}

/// Load report plus the runtime footprint observed while serving it.
struct ModeRun {
    report: LoadReport,
    reactor_workers: usize,
    threads_live: usize,
}

fn run_mode(mode: QueryMode, load: &LoadConfig) -> ModeRun {
    let max_batch = match mode {
        QueryMode::PerFile => 1,
        QueryMode::Batched => 256,
    };
    let service = Arc::new(PlacementService::start(serve_config(max_batch)));
    let report = run_belle2_load(
        &service,
        &LoadConfig {
            mode,
            ..load.clone()
        },
    );
    let reactor_workers = service.reactor_workers();
    let threads_live = process_threads();
    Arc::try_unwrap(service)
        .expect("load driver released the service")
        .shutdown();
    ModeRun {
        report,
        reactor_workers,
        threads_live,
    }
}

/// Soak record for the JSON artifact.
struct Soak {
    rounds: u64,
    records_sent: u64,
    records_in_shards: u64,
    decisions_served: u64,
    torn_decisions: u64,
    model_swaps: u64,
}

/// Ingest/retrain/query concurrently through `rounds` model swaps, then
/// account for every record and decision (mirrors the serve crate's soak
/// test, at benchmark scale).
fn hot_swap_soak(rounds: u64) -> Soak {
    let service = Arc::new(PlacementService::start(serve_config(256)));
    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for c in 0..2u64 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let torn = Arc::clone(&torn);
        let served = Arc::clone(&served);
        clients.push(std::thread::spawn(move || {
            let requests: Vec<PlacementRequest> = (0..16)
                .map(|i| PlacementRequest {
                    fid: FileId((c * 16 + i) % 8),
                    read_bytes: 1_000_000,
                    write_bytes: 0,
                })
                .collect();
            while !stop.load(Ordering::Relaxed) {
                match service.query_many(&requests) {
                    Err(QueryError::NotReady) | Err(QueryError::Overloaded) => {
                        std::thread::yield_now()
                    }
                    Err(QueryError::ServiceDown) => break,
                    Ok(decisions) => {
                        let published = service.published_epoch();
                        for d in &decisions {
                            if d.model_epoch == 0
                                || d.model_epoch > published
                                || !d.predicted_tp.is_finite()
                            {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        served.fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let mut sent = 0u64;
    for round in 1..=rounds {
        for n in 0..250u64 {
            let i = sent;
            let dev = (i % 2) as u32;
            let open_ms = i * 500;
            let close_ms = open_ms + if dev == 0 { 400 } else { 100 };
            let record = AccessRecord {
                access_number: i,
                fid: FileId(i % 8),
                fsid: DeviceId(dev),
                rb: 1_000_000 + n,
                wb: 0,
                ots: open_ms / 1000,
                otms: (open_ms % 1000) as u16,
                cts: close_ms / 1000,
                ctms: (close_ms % 1000) as u16,
            };
            service
                .ingest(i * 1_000_000, &[record])
                .expect("shard died");
            sent += 1;
        }
        let epoch = service.retrain_now().expect("enough telemetry");
        assert_eq!(epoch, round, "epochs advance one per retrain");
        // Force a batch boundary so the swap reaches the engine now.
        let d = service
            .query(PlacementRequest {
                fid: FileId(0),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .expect("model published");
        assert_eq!(d.model_epoch, epoch, "fresh model not picked up");
    }

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("soak client panicked");
    }
    let metrics = service.metrics();
    let swaps = metrics.model_swaps;
    assert_eq!(metrics.dropped_batches, 0, "soak shed ingest batches");
    let dbs = Arc::try_unwrap(service)
        .expect("clients released the service")
        .shutdown();
    Soak {
        rounds,
        records_sent: sent,
        records_in_shards: dbs.iter().map(|db| db.len() as u64).sum(),
        decisions_served: served.load(Ordering::Relaxed),
        torn_decisions: torn.load(Ordering::Relaxed),
        model_swaps: swaps,
    }
}

/// What the loopback-TCP phase measured.
struct NetRun {
    decisions: u64,
    elapsed_secs: f64,
    decisions_per_sec: f64,
    invalid_epochs: u64,
    frames_in: u64,
    frames_out: u64,
    overload_roundtrip: bool,
    /// Writer actors retired over the run — one per connection torn down.
    writers_retired: u64,
    /// Writer-slot slab high-water mark; flat slabs mean slots were reused.
    writer_slot_capacity: u64,
}

/// Replays the same batched BELLE II question list over loopback TCP:
/// warm-up telemetry and retrain over the wire, then `clients` threads
/// each pipelining run-sized submissions through a shared client pool.
fn run_net_mode(load: &LoadConfig) -> NetRun {
    let service = Arc::new(PlacementService::start(serve_config(256)));
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    let client = Arc::new(
        Client::connect(
            server.local_addr(),
            ClientConfig {
                pool_size: load.clients.max(1),
                ..ClientConfig::default()
            },
        )
        .expect("connect bench client"),
    );

    let prepared = prepare_belle2(load);
    for (ts, batch) in &prepared.warmup_batches {
        client.ingest(*ts, batch).expect("wire ingest failed");
    }
    client.retrain().expect("wire retrain failed");

    // The replay itself takes ~10-20 ms, so one cold round is mostly
    // scheduler and cache noise. Replay the list MEASURE_ROUNDS times
    // over the warm server and keep the fastest round: the gate below
    // compares steady-state rates, not first-round warmup.
    let requests = Arc::new(prepared.requests);
    let chunk = (requests.len() / load.measured_runs.max(1)).max(1);
    let invalid = AtomicU64::new(0);
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..MEASURE_ROUNDS {
        let decisions = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..load.clients.max(1) {
                let client = Arc::clone(&client);
                let requests = Arc::clone(&requests);
                let decisions = &decisions;
                let invalid = &invalid;
                s.spawn(move || {
                    for part in requests.chunks(chunk) {
                        let ds = client.query_many(part).expect("wire query failed");
                        for d in &ds {
                            if d.model_epoch == 0 {
                                invalid.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        decisions.fetch_add(ds.len() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let served = decisions.load(Ordering::Relaxed);
        if best.is_none_or(|(_, e)| elapsed < e) {
            best = Some((served, elapsed));
        }
    }
    let (served, elapsed) = best.expect("at least one measured round");

    let frames_in = server.stats().frames_in.load(Ordering::Relaxed);
    let frames_out = server.stats().frames_out.load(Ordering::Relaxed);
    drop(client);
    // Dropping the pool tears down every connection; the transport
    // gauges must return to baseline or the run leaked writer actors.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() != 0 || server.live_writer_actors() != 0 {
        assert!(
            Instant::now() < deadline,
            "wire teardown leaked: {} connections, {} writer actors still live",
            server.live_connections(),
            server.live_writer_actors(),
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let writers_retired = server.retired_writers();
    let writer_slot_capacity = server.writer_slot_capacity() as u64;
    server.shutdown();
    Arc::try_unwrap(service)
        .expect("bench released the service")
        .shutdown();

    NetRun {
        decisions: served,
        elapsed_secs: elapsed,
        decisions_per_sec: if elapsed > 0.0 {
            served as f64 / elapsed
        } else {
            0.0
        },
        invalid_epochs: invalid.load(Ordering::Relaxed),
        frames_in,
        frames_out,
        overload_roundtrip: overload_roundtrips(),
        writers_retired,
        writer_slot_capacity,
    }
}

/// What the three-node failover phase measured.
struct ClusterRun {
    nodes: u64,
    shards: u64,
    /// Records the routed client got acknowledged before the kill.
    routed_records: u64,
    /// Segments / records the doomed primary had ship-acked by its
    /// replica — the cluster-durable set the kill must not lose.
    acked_segments: u64,
    acked_records: u64,
    /// Acked records missing from the replica store after failover.
    /// The zero-lost gate.
    lost_acked_records: u64,
    /// Kill → first-replica promotion (epoch bump observed).
    promotion_secs: f64,
    /// The gate: 3× the configured failover deadline.
    promotion_deadline_secs: f64,
    /// Steady-state routed query throughput before the kill.
    routed_decisions: u64,
    routed_elapsed_secs: f64,
    routed_decisions_per_sec: f64,
    /// Decisions served by the survivors after promotion.
    post_failover_decisions: u64,
    /// Records the client got acked by the emergency primary while the
    /// preferred owner was down — the set the rejoiner must catch up.
    interregnum_records: u64,
    /// Interregnum records the rejoiner's catch-up failed to apply.
    /// The rebalance zero-lost gate.
    lost_rebalance_records: u64,
    /// Restart of the killed node → preferred ownership restored
    /// (emergency primary demoted, epoch bump adopted by the rejoiner).
    rebalance_secs: f64,
    /// The gate: 5× the configured failover deadline.
    rebalance_deadline_secs: f64,
    /// Routed query throughput measured while the rejoiner was catching
    /// up and the demotion flip landed.
    catchup_decisions: u64,
    catchup_elapsed_secs: f64,
    catchup_decisions_per_sec: f64,
}

/// Drives a 3-node loopback cluster through the batched question list,
/// then SIGKILLs the primary of shard 0 mid-stream and accounts for
/// every acknowledged record on the replica.
///
/// Ring topology (sorted ids [1, 2, 3], 3 shards, 1 replica): shard 0 →
/// primary 1 replica 2, shard 1 → primary 2 replica 3, shard 2 →
/// primary 3 replica 1. Node 2's replica store therefore receives only
/// shard-0 segments, which makes the zero-lost check an exact equality
/// rather than a lower bound.
fn run_cluster_mode(load: &LoadConfig, fast: bool) -> ClusterRun {
    const FAILOVER_MICROS: u64 = 700_000;
    let shards = 3u32;
    let addrs = reserve_loopback_addrs(3);
    let peers: Vec<(u64, String)> = (0..3).map(|i| (i as u64 + 1, addrs[i].clone())).collect();
    let dir = std::env::temp_dir().join(format!("geomancy-cluster-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("cluster bench dir");

    let mk_config = |id: u64, rejoin: bool| ClusterNodeConfig {
        node_id: id,
        listen: peers[(id - 1) as usize].1.clone(),
        peers: peers.clone(),
        replicas: 1,
        shards,
        dir: dir.join(format!("n{id}")),
        heartbeat_micros: 50_000,
        failover_after_micros: FAILOVER_MICROS,
        serve: serve_config(256),
        net: NetConfig::default(),
        rejoin,
        // Small catch-up chunks: the rejoin below must take several
        // round trips, so the throughput-during-catch-up measurement
        // sees a real transfer, not one instant chunk.
        retain_bytes: 64 << 20,
        catch_up_max_records: 256,
    };
    let mut nodes: Vec<Option<ClusterNode>> = peers
        .iter()
        .map(|(id, _)| Some(ClusterNode::start(mk_config(*id, false)).expect("start cluster node")))
        .collect();

    let client = ClusterClient::connect(
        &[addrs[0].clone()],
        ClientConfig {
            pool_size: load.clients.max(1),
            ..ClientConfig::default()
        },
    )
    .expect("bootstrap from seed");

    // Routed warm-up: the BELLE II telemetry plus enough synthetic
    // records that every node's shard share can train, then a retrain
    // on each node.
    let prepared = prepare_belle2(load);
    let mut routed_records = 0u64;
    for (ts, batch) in &prepared.warmup_batches {
        client.ingest(*ts, batch).expect("routed warmup ingest");
        routed_records += batch.len() as u64;
    }
    let filler = if fast { 600 } else { 1800 };
    for batch in 0..filler / 30 {
        let records: Vec<AccessRecord> = (0..30)
            .map(|i| {
                let n = batch * 30 + i;
                let dev = (n % 2) as u32;
                let dt_ms = if dev == 0 { 400 } else { 100 };
                let open_ms = n * 1000;
                AccessRecord {
                    access_number: n,
                    fid: FileId(n),
                    fsid: DeviceId(dev),
                    rb: 1_000_000,
                    wb: 0,
                    ots: open_ms / 1000,
                    otms: (open_ms % 1000) as u16,
                    cts: (open_ms + dt_ms) / 1000,
                    ctms: ((open_ms + dt_ms) % 1000) as u16,
                }
            })
            .collect();
        client
            .ingest(batch * 30_000_000, &records)
            .expect("routed filler ingest");
        routed_records += records.len() as u64;
    }
    for n in &client.map().nodes {
        let c = Client::connect(n.addr.as_str(), ClientConfig::default()).expect("connect node");
        c.retrain().expect("retrain cluster node");
    }

    // Steady-state routed throughput: the same question list the
    // single-node phases replayed, routed by file hash across the three
    // primaries. Best of MEASURE_ROUNDS, same as the wire phase.
    let requests = Arc::new(prepared.requests);
    let chunk = (requests.len() / load.measured_runs.max(1)).max(1);
    // Each routed call walks its sub-batches shard by shard, so one
    // client thread keeps at most one node busy at a time; run one
    // thread per node per configured client to keep all three primaries
    // saturated, the way a real routed deployment fans out.
    let routed_clients = load.clients.max(1) * 3;
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..MEASURE_ROUNDS {
        let decisions = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..routed_clients {
                let client = &client;
                let requests = Arc::clone(&requests);
                let decisions = &decisions;
                s.spawn(move || {
                    for part in requests.chunks(chunk) {
                        let ds = client.query_many(part).expect("routed query failed");
                        decisions.fetch_add(ds.len() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let served = decisions.load(Ordering::Relaxed);
        if best.is_none_or(|(_, e)| elapsed < e) {
            best = Some((served, elapsed));
        }
    }
    let (routed_decisions, routed_elapsed) = best.expect("at least one routed round");

    // Seal and ship: checkpoint every node, wait for the shard-0
    // primary's segments to be replica-acked, then kill it mid-load.
    for node in nodes.iter().flatten() {
        node.service().checkpoint_now().expect("cluster checkpoint");
    }
    let ship_deadline = Instant::now() + Duration::from_secs(30);
    while nodes[0].as_ref().unwrap().shipped().is_empty() {
        assert!(
            Instant::now() < ship_deadline,
            "primary never got a ship ack"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let acked = nodes[0].as_ref().unwrap().shipped();
    assert!(
        acked.iter().all(|s| s.shard == 0),
        "node 1 only owns shard 0"
    );
    assert_eq!(nodes[0].as_ref().unwrap().ship_failures(), 0);
    let acked_segments = acked.len() as u64;
    let acked_records: u64 = acked.iter().map(|s| s.records).sum();
    let acked_seq = acked.iter().map(|s| s.seq).max().expect("acked segment");

    let killed_at = Instant::now();
    nodes[0].take().unwrap().kill();
    let node2 = nodes[1].as_ref().unwrap();
    let promotion_deadline = Duration::from_micros(3 * FAILOVER_MICROS);
    // Poll well past the gate so a miss reports the measured time
    // instead of hanging.
    let poll_until = killed_at + Duration::from_secs(30);
    while node2.epoch() < 2 {
        assert!(Instant::now() < poll_until, "first replica never promoted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let promotion = killed_at.elapsed();
    assert_eq!(node2.map().primary_of(0), Some(2), "wrong node promoted");

    // Zero lost acked records: node 2's replica store holds exactly the
    // acked shard-0 set.
    let stats = node2.replica_stats();
    assert!(
        stats.floors[0] >= acked_seq,
        "acked segment past the replica's floor"
    );
    let lost = acked_records.saturating_sub(stats.total_records);

    // The routed client keeps serving once the promotion lands: retry
    // the stale map until the survivors answer.
    let reqs: Vec<PlacementRequest> = (0..24)
        .map(|i| PlacementRequest {
            fid: FileId(i),
            read_bytes: 1_000_000,
            write_bytes: 0,
        })
        .collect();
    let settle = Instant::now() + Duration::from_secs(30);
    let post = loop {
        match client.query_many(&reqs) {
            Ok(d) => break d.len() as u64,
            Err(ClusterError::Exhausted(_) | ClusterError::Net(_)) if Instant::now() < settle => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("post-failover routed query: {e}"),
        }
    };

    // ---- Rebalance: restart the killed primary as a rejoiner. ----
    // Interregnum load first: shard-0 records the emergency primary
    // acks while the preferred owner is down. These are exactly what
    // the rejoiner's catch-up must transfer, so they double as the
    // zero-lost ledger.
    let f0_fids: Vec<u64> = (0..)
        .filter(|&f| shard_for(FileId(f), shards) == 0)
        .take(30)
        .collect();
    let interregnum_batches = if fast { 100 } else { 300 };
    let mut interregnum_records = 0u64;
    for batch in 0..interregnum_batches {
        let records: Vec<AccessRecord> = f0_fids
            .iter()
            .enumerate()
            .map(|(i, &fid)| {
                let n = 1_000_000 + batch * 30 + i as u64;
                AccessRecord {
                    access_number: n,
                    fid: FileId(fid),
                    fsid: DeviceId((n % 2) as u32),
                    rb: 1_000_000,
                    wb: 0,
                    ots: n,
                    otms: 0,
                    cts: n,
                    ctms: 500,
                }
            })
            .collect();
        client
            .ingest((2_000 + batch) * 1_000_000, &records)
            .expect("interregnum ingest");
        interregnum_records += records.len() as u64;
    }
    // Seal the interregnum records so catch-up serves them from real
    // segments and the demotion barrier covers them.
    node2.service().checkpoint_now().expect("interregnum checkpoint");

    let restart_at = Instant::now();
    let rejoiner = ClusterNode::start(mk_config(1, true)).expect("restart killed node");
    let rebalance_deadline = Duration::from_micros(5 * FAILOVER_MICROS);

    // Routed throughput while the rejoiner catches up and the demotion
    // flip lands: replay the question list in rounds until convergence,
    // best round wins — the same best-of discipline as the steady-state
    // measurement, with the workers retrying the brief exhausted
    // windows an epoch bump produces (queries are idempotent, so
    // resending is safe). Once the flip lands, the poller warms the
    // rejoiner's model (the fresh process recovers its store, not its
    // trained network) before releasing the measurement loop, so a
    // round straddling the flip drains instead of spinning on NotReady.
    let converged_flag = AtomicBool::new(false);
    let rebalanced_after = std::sync::Mutex::new(None::<f64>);
    let mut catchup_best: Option<(u64, f64)> = None;
    std::thread::scope(|s| {
        s.spawn(|| {
            let hard = Instant::now() + Duration::from_secs(60);
            loop {
                let converged = node2.demotions() >= 1
                    && rejoiner.map().primary_of(0) == Some(1)
                    && rejoiner.epoch() == node2.epoch();
                if converged {
                    *rebalanced_after.lock().unwrap() =
                        Some(restart_at.elapsed().as_secs_f64());
                    break;
                }
                if Instant::now() >= hard {
                    // Let the measurement loop surface the failure.
                    converged_flag.store(true, Ordering::Relaxed);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            // Warm-up: fresh shard-0 telemetry straight to the restored
            // owner, then a retrain, so it answers queries again.
            let warm = Client::connect(rejoiner.local_addr(), ClientConfig::default())
                .expect("connect restored owner");
            for batch in 0..60u64 {
                let records: Vec<AccessRecord> = f0_fids
                    .iter()
                    .enumerate()
                    .map(|(i, &fid)| {
                        let n = 5_000_000 + batch * 30 + i as u64;
                        AccessRecord {
                            access_number: n,
                            fid: FileId(fid),
                            fsid: DeviceId((n % 2) as u32),
                            rb: 1_000_000,
                            wb: 0,
                            ots: n,
                            otms: 0,
                            cts: n,
                            ctms: 500,
                        }
                    })
                    .collect();
                warm.ingest((5_000 + batch) * 1_000_000, &records)
                    .expect("warm restored owner");
            }
            warm.retrain().expect("retrain restored owner");
            converged_flag.store(true, Ordering::Relaxed);
        });
        loop {
            let decisions = AtomicU64::new(0);
            let qstart = Instant::now();
            std::thread::scope(|inner| {
                for _ in 0..routed_clients {
                    let client = &client;
                    let requests = Arc::clone(&requests);
                    let decisions = &decisions;
                    inner.spawn(move || {
                        let settle = Instant::now() + Duration::from_secs(30);
                        for part in requests.chunks(chunk) {
                            loop {
                                match client.query_many(part) {
                                    Ok(ds) => {
                                        decisions.fetch_add(ds.len() as u64, Ordering::Relaxed);
                                        break;
                                    }
                                    Err(ClusterError::Exhausted(_) | ClusterError::Net(_))
                                        if Instant::now() < settle =>
                                    {
                                        std::thread::sleep(Duration::from_millis(5));
                                    }
                                    Err(e) => panic!("catch-up routed query: {e}"),
                                }
                            }
                        }
                    });
                }
            });
            let elapsed = qstart.elapsed().as_secs_f64();
            let served = decisions.load(Ordering::Relaxed);
            if catchup_best.is_none_or(|(_, e)| elapsed < e) {
                catchup_best = Some((served, elapsed));
            }
            if converged_flag.load(Ordering::Relaxed) {
                break;
            }
        }
    });
    let rebalance_secs = rebalanced_after
        .lock()
        .unwrap()
        .expect("rejoiner never took shard 0 back within 60 s");
    let (catchup_decisions, catchup_elapsed) =
        catchup_best.expect("at least one catch-up round");

    // Zero lost records across the rebalance: everything the emergency
    // primary acked during the interregnum reached the rejoiner's
    // replica store through catch-up (its own pre-kill records recover
    // from disk, so the fresh incarnation's applies are the transfer).
    let caught_up = rejoiner.replica_stats().records_applied;
    let lost_rebalance = interregnum_records.saturating_sub(caught_up);

    rejoiner.shutdown();
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    ClusterRun {
        nodes: 3,
        shards: u64::from(shards),
        routed_records,
        acked_segments,
        acked_records,
        lost_acked_records: lost,
        promotion_secs: promotion.as_secs_f64(),
        promotion_deadline_secs: promotion_deadline.as_secs_f64(),
        routed_decisions,
        routed_elapsed_secs: routed_elapsed,
        routed_decisions_per_sec: if routed_elapsed > 0.0 {
            routed_decisions as f64 / routed_elapsed
        } else {
            0.0
        },
        post_failover_decisions: post,
        interregnum_records,
        lost_rebalance_records: lost_rebalance,
        rebalance_secs,
        rebalance_deadline_secs: rebalance_deadline.as_secs_f64(),
        catchup_decisions,
        catchup_elapsed_secs: catchup_elapsed,
        catchup_decisions_per_sec: if catchup_elapsed > 0.0 {
            catchup_decisions as f64 / catchup_elapsed
        } else {
            0.0
        },
    }
}

/// A zero-watermark service behind the wire must answer queries with
/// [`WireStatus::Overloaded`] — on a socket that stays usable — rather
/// than dropping the connection.
fn overload_roundtrips() -> bool {
    let service = Arc::new(PlacementService::start(ServeConfig {
        admission: AdmissionConfig {
            max_pending_requests: Some(0),
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        ..serve_config(256)
    }));
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    let client = Client::connect(
        server.local_addr(),
        ClientConfig {
            retry: geomancy_net::RetryConfig {
                max_retries: 0,
                base_backoff_millis: 1,
            },
            ..ClientConfig::default()
        },
    )
    .expect("connect overload client");
    let shed = matches!(
        client.query(PlacementRequest {
            fid: FileId(0),
            read_bytes: 1_000_000,
            write_bytes: 0,
        }),
        Err(NetError::Server(WireStatus::Overloaded))
    );
    // The connection survived the shed reply and still answers.
    let alive_after = client.health().is_ok();
    drop(client);
    server.shutdown();
    Arc::try_unwrap(service)
        .expect("bench released the service")
        .shutdown();
    shed && alive_after
}

fn main() {
    let fast = fast_mode();
    let net_only = std::env::args().any(|a| a == "--net");
    let load = LoadConfig {
        seed: 42,
        file_count: 24,
        warmup_runs: 2,
        measured_runs: if fast { 2 } else { 6 },
        clients: 4,
        mode: QueryMode::Batched,
        mid_load_retrains: 0,
        access_mix: geomancy_serve::AccessMix::Sequential,
    };

    println!(
        "serve engine: {SHARDS} shards, {} clients, {} measured runs{}",
        load.clients,
        load.measured_runs,
        if fast { " (fast mode)" } else { "" },
    );
    let per_file_run = run_mode(QueryMode::PerFile, &load);
    let batched_run = (0..MEASURE_ROUNDS)
        .map(|_| run_mode(QueryMode::Batched, &load))
        .max_by(|a, b| {
            a.report
                .decisions_per_sec
                .total_cmp(&b.report.decisions_per_sec)
        })
        .expect("at least one batched round");
    let per_file = &per_file_run.report;
    let batched = &batched_run.report;
    let speedup = batched.decisions_per_sec / per_file.decisions_per_sec;
    println!(
        "runtime footprint: {} reactor workers, {} process threads mid-load",
        batched_run.reactor_workers, batched_run.threads_live,
    );

    print_table(
        "Batched query engine: per-file baseline vs fused submissions",
        &["mode", "decisions", "elapsed (s)", "decisions/sec"],
        &[
            vec![
                "per-file".into(),
                per_file.decisions.to_string(),
                format!("{:.3}", per_file.elapsed_secs),
                format!("{:.0}", per_file.decisions_per_sec),
            ],
            vec![
                "batched".into(),
                batched.decisions.to_string(),
                format!("{:.3}", batched.elapsed_secs),
                format!("{:.0}", batched.decisions_per_sec),
            ],
            vec![
                "speedup".into(),
                String::new(),
                String::new(),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    assert_eq!(per_file.decisions, batched.decisions, "unequal workloads");
    assert_eq!(per_file.invalid_epoch_decisions, 0);
    assert_eq!(batched.invalid_epoch_decisions, 0);
    assert_eq!(per_file.metrics.dropped_batches, 0);
    assert_eq!(batched.metrics.dropped_batches, 0);

    let net = run_net_mode(&load);
    let wire_ratio = net.decisions_per_sec / batched.decisions_per_sec;
    println!(
        "\nwire path (loopback TCP): {} decisions in {:.3} s — {:.0} decisions/sec \
         ({:.0}% of in-process batched), {}/{} frames in/out, overload round-trips: {}",
        net.decisions,
        net.elapsed_secs,
        net.decisions_per_sec,
        wire_ratio * 100.0,
        net.frames_in,
        net.frames_out,
        net.overload_roundtrip,
    );
    println!(
        "wire teardown: {} writer actors retired, slab high-water {} slots, \
         all gauges back to baseline",
        net.writers_retired, net.writer_slot_capacity,
    );
    assert_eq!(
        net.decisions, batched.decisions,
        "wire served a different workload"
    );
    assert_eq!(net.invalid_epochs, 0, "wire decisions carried epoch 0");
    assert!(
        net.overload_roundtrip,
        "overload did not round-trip as a wire status"
    );

    let soak = if net_only {
        None
    } else {
        Some(hot_swap_soak(if fast { 3 } else { 4 }))
    };
    if let Some(soak) = &soak {
        println!(
            "\nhot-swap soak: {} swaps over {} rounds, {} decisions, \
             {} torn, {}/{} records recovered from shards",
            soak.model_swaps,
            soak.rounds,
            soak.decisions_served,
            soak.torn_decisions,
            soak.records_in_shards,
            soak.records_sent,
        );
        assert!(
            soak.model_swaps >= 3,
            "fewer than 3 swaps reached the engine"
        );
        assert_eq!(soak.torn_decisions, 0, "torn-model decisions observed");
        assert_eq!(
            soak.records_in_shards, soak.records_sent,
            "ingest records lost"
        );
    }

    let cluster = run_cluster_mode(&load, fast);
    let cluster_ratio = cluster.routed_decisions_per_sec / batched.decisions_per_sec;
    println!(
        "\ncluster (3-node loopback): {} decisions in {:.3} s — {:.0} decisions/sec routed \
         ({:.0}% of single-node batched)",
        cluster.routed_decisions,
        cluster.routed_elapsed_secs,
        cluster.routed_decisions_per_sec,
        cluster_ratio * 100.0,
    );
    println!(
        "failover: primary killed with {} acked records in {} shipped segments; \
         promotion in {:.3} s (gate {:.1} s), {} acked records lost, \
         {} decisions served post-failover",
        cluster.acked_records,
        cluster.acked_segments,
        cluster.promotion_secs,
        cluster.promotion_deadline_secs,
        cluster.lost_acked_records,
        cluster.post_failover_decisions,
    );
    assert_eq!(
        cluster.lost_acked_records, 0,
        "replica lost acknowledged records across the kill"
    );
    assert!(
        cluster.promotion_secs <= cluster.promotion_deadline_secs,
        "promotion took {:.3} s, past the {:.1} s gate (3x the failover deadline)",
        cluster.promotion_secs,
        cluster.promotion_deadline_secs,
    );
    assert!(
        cluster.post_failover_decisions > 0,
        "cluster stopped serving"
    );
    let catchup_ratio = cluster.catchup_decisions_per_sec / batched.decisions_per_sec;
    println!(
        "rebalance: killed node restarted as rejoiner with {} interregnum records to \
         catch up; preferred ownership restored in {:.3} s (gate {:.1} s), {} records \
         lost; {} decisions at {:.0}/sec routed during catch-up ({:.0}% of single-node \
         batched)",
        cluster.interregnum_records,
        cluster.rebalance_secs,
        cluster.rebalance_deadline_secs,
        cluster.lost_rebalance_records,
        cluster.catchup_decisions,
        cluster.catchup_decisions_per_sec,
        catchup_ratio * 100.0,
    );
    assert_eq!(
        cluster.lost_rebalance_records, 0,
        "rejoiner's catch-up lost interregnum records"
    );
    assert!(
        cluster.rebalance_secs <= cluster.rebalance_deadline_secs,
        "rebalance took {:.3} s, past the {:.1} s gate (5x the failover deadline)",
        cluster.rebalance_secs,
        cluster.rebalance_deadline_secs,
    );

    let kernel_backend = geomancy_nn::matrix::kernels::backend_name();
    println!("kernel backend: {kernel_backend}");
    let json = serde_json::json!({
        "shards": SHARDS,
        "clients": load.clients,
        "file_count": load.file_count,
        "measured_runs": load.measured_runs,
        "fast_mode": fast,
        "kernel_backend": kernel_backend,
        "reactor_workers": batched_run.reactor_workers,
        "per_file": {
            "decisions": per_file.decisions,
            "elapsed_secs": per_file.elapsed_secs,
            "decisions_per_sec": per_file.decisions_per_sec,
            "coalesced_decisions": per_file.metrics.coalesced_decisions,
            "fused_rows": per_file.metrics.fused_rows,
            "threads_live": per_file_run.threads_live,
        },
        "batched": {
            "decisions": batched.decisions,
            "elapsed_secs": batched.elapsed_secs,
            "decisions_per_sec": batched.decisions_per_sec,
            "coalesced_decisions": batched.metrics.coalesced_decisions,
            "fused_rows": batched.metrics.fused_rows,
            "threads_live": batched_run.threads_live,
        },
        "speedup": speedup,
        "net": {
            "decisions": net.decisions,
            "elapsed_secs": net.elapsed_secs,
            "decisions_per_sec": net.decisions_per_sec,
            "wire_vs_inprocess": wire_ratio,
            "frames_in": net.frames_in,
            "frames_out": net.frames_out,
            "overload_roundtrip": net.overload_roundtrip,
            "writers_retired": net.writers_retired,
            "writer_slot_capacity": net.writer_slot_capacity,
        },
        "cluster": {
            "nodes": cluster.nodes,
            "shards": cluster.shards,
            "routed_records": cluster.routed_records,
            "acked_segments": cluster.acked_segments,
            "acked_records": cluster.acked_records,
            "lost_acked_records": cluster.lost_acked_records,
            "promotion_secs": cluster.promotion_secs,
            "promotion_deadline_secs": cluster.promotion_deadline_secs,
            "routed_decisions": cluster.routed_decisions,
            "routed_elapsed_secs": cluster.routed_elapsed_secs,
            "routed_decisions_per_sec": cluster.routed_decisions_per_sec,
            "cluster_vs_single_node_batched": cluster_ratio,
            "post_failover_decisions": cluster.post_failover_decisions,
            "interregnum_records": cluster.interregnum_records,
            "lost_rebalance_records": cluster.lost_rebalance_records,
            "rebalance_secs": cluster.rebalance_secs,
            "rebalance_deadline_secs": cluster.rebalance_deadline_secs,
            "catchup_decisions": cluster.catchup_decisions,
            "catchup_elapsed_secs": cluster.catchup_elapsed_secs,
            "catchup_decisions_per_sec": cluster.catchup_decisions_per_sec,
            "catchup_vs_single_node_batched": catchup_ratio,
        },
        "hot_swap_soak": soak.as_ref().map(|soak| serde_json::json!({
            "rounds": soak.rounds,
            "model_swaps": soak.model_swaps,
            "decisions_served": soak.decisions_served,
            "torn_decisions": soak.torn_decisions,
            "records_sent": soak.records_sent,
            "records_in_shards": soak.records_in_shards,
        })),
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("BENCH_serve.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());

    let gate = if fast { 1.0 } else { 5.0 };
    assert!(
        speedup >= gate,
        "batched engine speedup {speedup:.2}x below the {gate:.0}x gate"
    );
    // The wire adds framing, sockets, and a second reactor; it must
    // still deliver at least half the in-process batched rate (quarter
    // in fast mode, where tiny workloads amplify fixed costs).
    let wire_gate = if fast { 0.25 } else { 0.5 };
    assert!(
        wire_ratio >= wire_gate,
        "wire path at {:.0}% of in-process batched rate, below the {:.0}% gate",
        wire_ratio * 100.0,
        wire_gate * 100.0
    );
    // Routing by shard across three processes adds a map lookup, a
    // split, and per-shard round trips; it must still deliver half the
    // single-node batched rate (quarter in fast mode).
    let cluster_gate = if fast { 0.25 } else { 0.5 };
    assert!(
        cluster_ratio >= cluster_gate,
        "routed cluster path at {:.0}% of single-node batched rate, below the {:.0}% gate",
        cluster_ratio * 100.0,
        cluster_gate * 100.0
    );
    // Catch-up runs concurrently with routed serving, so some dip is
    // expected — but the cluster must keep at least 40% of the
    // single-node batched rate through a rejoin (20% in fast mode,
    // where tiny workloads amplify fixed costs).
    let catchup_gate = if fast { 0.2 } else { 0.4 };
    assert!(
        catchup_ratio >= catchup_gate,
        "routed rate during catch-up at {:.0}% of single-node batched, below the {:.0}% gate",
        catchup_ratio * 100.0,
        catchup_gate * 100.0
    );
}
