//! Benchmark of the paged on-disk ReplayDB (`geomancy-store`) at
//! 100k–1M-file scale, with the gates that prove the tiering pays for
//! itself:
//!
//! 1. **Ingest** — a zipfian access stream into the tiered store
//!    (bounded hot tail + cold pages + periodic checkpoints) versus the
//!    same stream into the unbounded in-memory [`ReplayDb`]. Gate: the
//!    tiered hot path (insert cost with checkpoint pauses accounted
//!    separately, as the service runs them on a background actor)
//!    sustains ≥ 0.8× of the in-memory rate (0.5× in fast mode, where
//!    tiny runs amplify fixed costs).
//! 2. **Query scaling** — `recent_per_device` latency with a 10k-record
//!    history versus the full history (far larger than the hot tail, so
//!    the cold store answers). Gate: flat within 2× (plus a 50 µs noise
//!    floor).
//! 3. **Checkpoint pipeline** — the real WAL path (per-shard logs →
//!    sealed segments → absorb) round after round, recording the absorb
//!    pause and the WAL footprint after each checkpoint. Gate: WAL bytes
//!    bounded in steady state.
//! 4. **Crash recovery** — a fault-injected absorb (killed after the
//!    page write, before the index/manifest), then a timed reopen.
//!    Gates: zero lost and zero duplicated records across the crash.
//!
//! Run with `cargo run -p geomancy-bench --bin store_bench --release`.
//! Writes `BENCH_store.json` at the workspace root. `GEOMANCY_FAST=1`
//! shrinks the population and record counts for smoke runs.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use geomancy_bench::output::{fast_mode, print_table};
use geomancy_replaydb::{wal, ReplayDb, WalWriter};
use geomancy_sim::population::{FilePopulation, PopulationConfig};
use geomancy_sim::record::{AccessRecord, DeviceId};
use geomancy_store::{FaultPoint, PagedStore, StoreConfig, TieredDb};

const DEVICES: u32 = 6;
const BATCH: usize = 256;
const HOT_TAIL: usize = 4096;

struct Scale {
    files: usize,
    /// Records ingested in the throughput/query phases.
    records: u64,
    /// Records between checkpoints (both tiered and WAL-pipeline phases).
    checkpoint_every: u64,
    /// WAL-pipeline rounds.
    rounds: usize,
}

impl Scale {
    fn pick(fast: bool) -> Scale {
        if fast {
            Scale {
                files: 100_000,
                records: 40_000,
                checkpoint_every: 8_000,
                rounds: 5,
            }
        } else {
            Scale {
                files: 1_000_000,
                records: 400_000,
                checkpoint_every: 50_000,
                rounds: 8,
            }
        }
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("geomancy_store_bench")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir
}

fn population(scale: &Scale) -> FilePopulation {
    FilePopulation::generate(
        42,
        &PopulationConfig {
            file_count: scale.files,
            zipf_exponent: 1.0,
            ..PopulationConfig::default()
        },
    )
}

/// The shared access stream: record `n` opens at `n * 100` µs on device
/// `n % DEVICES`, reading a zipf-sampled file.
fn next_record(pop: &mut FilePopulation, n: u64) -> AccessRecord {
    pop.next_record(n, DeviceId((n % DEVICES as u64) as u32), n * 100, 50)
}

struct IngestPhase {
    mem_rate: f64,
    /// Hot-path rate: wall clock minus checkpoint pauses.
    store_rate: f64,
    /// Checkpoint-inclusive wall-clock rate.
    wall_rate: f64,
    ratio: f64,
    checkpoint_pauses_us: Vec<u64>,
    tiered: TieredDb,
    _dir: PathBuf,
}

fn ingest_phase(scale: &Scale) -> IngestPhase {
    // In-memory baseline: the pre-tiering ReplayDb, everything resident.
    let mut pop = population(scale);
    let mut mem = ReplayDb::new();
    let started = Instant::now();
    let mut batch = Vec::with_capacity(BATCH);
    for n in 0..scale.records {
        batch.push(next_record(&mut pop, n));
        if batch.len() == BATCH {
            mem.insert_batch(n * 100, &batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        mem.insert_batch(scale.records * 100, &batch);
    }
    let mem_secs = started.elapsed().as_secs_f64();

    // Tiered: same stream, bounded hot tail, checkpoint every C records.
    let dir = temp_dir("tiered");
    let mut pop = population(scale);
    let (mut tiered, _report) =
        TieredDb::open(&dir, StoreConfig::default(), HOT_TAIL).expect("open tiered store");
    let mut pauses = Vec::new();
    let started = Instant::now();
    let mut batch = Vec::with_capacity(BATCH);
    let mut since_checkpoint = 0u64;
    for n in 0..scale.records {
        batch.push(next_record(&mut pop, n));
        if batch.len() == BATCH {
            tiered.insert_batch(n * 100, &batch);
            since_checkpoint += batch.len() as u64;
            batch.clear();
            if since_checkpoint >= scale.checkpoint_every {
                let pause = Instant::now();
                tiered.checkpoint().expect("tiered checkpoint");
                pauses.push(pause.elapsed().as_micros() as u64);
                since_checkpoint = 0;
            }
        }
    }
    if !batch.is_empty() {
        tiered.insert_batch(scale.records * 100, &batch);
    }
    let pause = Instant::now();
    tiered.checkpoint().expect("final tiered checkpoint");
    pauses.push(pause.elapsed().as_micros() as u64);
    let wall_secs = started.elapsed().as_secs_f64();

    // The ingest rate the service's foreground path sees: checkpoints run
    // on a background actor there, so their fsync-dominated pauses are
    // accounted separately rather than folded into per-record cost. The
    // checkpoint-inclusive wall-clock rate still goes into the JSON.
    let pause_secs = pauses.iter().sum::<u64>() as f64 / 1e6;
    let store_secs = (wall_secs - pause_secs).max(1e-9);

    assert_eq!(tiered.len(), scale.records, "tiered store lost records");
    let mem_rate = scale.records as f64 / mem_secs;
    let store_rate = scale.records as f64 / store_secs;
    IngestPhase {
        mem_rate,
        store_rate,
        wall_rate: scale.records as f64 / wall_secs,
        ratio: store_rate / mem_rate,
        checkpoint_pauses_us: pauses,
        tiered,
        _dir: dir,
    }
}

/// Best-of-N latency of `recent_per_device` against `db`, in nanoseconds.
fn query_latency_ns(db: &TieredDb, x: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..30 {
        let started = Instant::now();
        let per_device = db.recent_per_device(x).expect("recent_per_device");
        assert!(!per_device.is_empty());
        best = best.min(started.elapsed().as_nanos() as u64);
    }
    best
}

struct QueryPhase {
    small_history: u64,
    small_ns: u64,
    large_history: u64,
    large_ns: u64,
    ratio: f64,
}

fn query_phase(scale: &Scale, full: &TieredDb) -> QueryPhase {
    // A 10k-record history in its own tiered store (same shape, same
    // checkpoint discipline) as the scaling baseline.
    let dir = temp_dir("query-small");
    let small_history = 10_000u64;
    let mut pop = population(scale);
    let (mut small, _) =
        TieredDb::open(&dir, StoreConfig::default(), HOT_TAIL).expect("open small store");
    let mut batch = Vec::with_capacity(BATCH);
    for n in 0..small_history {
        batch.push(next_record(&mut pop, n));
        if batch.len() == BATCH {
            small.insert_batch(n * 100, &batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        small.insert_batch(small_history * 100, &batch);
    }
    small.checkpoint().expect("small checkpoint");

    let x = 32;
    let small_ns = query_latency_ns(&small, x);
    let large_ns = query_latency_ns(full, x);
    drop(small);
    std::fs::remove_dir_all(&dir).ok();
    QueryPhase {
        small_history,
        small_ns,
        large_history: full.len(),
        large_ns,
        // The noise floor: sub-50µs answers are flat regardless of ratio.
        ratio: large_ns as f64 / (small_ns.max(50_000)) as f64,
    }
}

struct WalPhase {
    absorb_pauses_us: Vec<u64>,
    post_absorb_wal_bytes: Vec<u64>,
    recovery_secs: f64,
    recovered_records: u64,
    lost: u64,
    duplicated: u64,
}

fn wal_dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The production pipeline end to end: per-shard WALs → sealed segments
/// → absorb, then a fault-injected absorb and a timed recovery.
fn wal_phase(scale: &Scale) -> WalPhase {
    const SHARDS: usize = 4;
    let wal_dir = temp_dir("wal");
    let store_dir = temp_dir("wal-store");
    let mut pop = population(scale);
    let (mut store, _) =
        PagedStore::open(&store_dir, StoreConfig::default()).expect("open pipeline store");

    let mut n = 0u64;
    let mut expected: BTreeSet<u64> = BTreeSet::new();
    let mut pauses = Vec::new();
    let mut post_bytes = Vec::new();
    let per_round = scale.checkpoint_every;

    let run_round = |store: &mut PagedStore,
                     pop: &mut FilePopulation,
                     n: &mut u64,
                     expected: &mut BTreeSet<u64>,
                     seq: u64,
                     fault: Option<FaultPoint>| {
        let mut writers: Vec<WalWriter> = (0..SHARDS)
            .map(|s| WalWriter::open(wal::shard_path(&wal_dir, s)).expect("open shard WAL"))
            .collect();
        for _ in 0..per_round {
            let r = next_record(pop, *n);
            let shard = (*n % SHARDS as u64) as usize;
            writers[shard]
                .append(r.access_number * 100, r)
                .expect("WAL append");
            expected.insert(*n);
            *n += 1;
        }
        for (s, mut w) in writers.into_iter().enumerate() {
            w.seal_to(wal::segment_path(&wal_dir, s, seq))
                .expect("seal");
        }
        let started = Instant::now();
        store
            .absorb_segments(&wal_dir, SHARDS, fault)
            .expect("absorb");
        started.elapsed().as_micros() as u64
    };

    for round in 0..scale.rounds {
        let pause = run_round(
            &mut store,
            &mut pop,
            &mut n,
            &mut expected,
            round as u64 + 1,
            None,
        );
        pauses.push(pause);
        post_bytes.push(wal_dir_bytes(&wal_dir));
    }

    // Crash: one more round whose absorb dies right after the page
    // write — pages on disk, index and manifest stale, segments intact.
    run_round(
        &mut store,
        &mut pop,
        &mut n,
        &mut expected,
        scale.rounds as u64 + 1,
        Some(FaultPoint::AfterPageWrite),
    );
    drop(store);

    // Recovery: reopen (truncates the uncommitted page tail), absorb the
    // surviving segments, and account for every record exactly once.
    let started = Instant::now();
    let (mut store, _report) =
        PagedStore::open(&store_dir, StoreConfig::default()).expect("recovery open");
    store
        .absorb_segments(&wal_dir, SHARDS, None)
        .expect("recovery absorb");
    let recovery_secs = started.elapsed().as_secs_f64();

    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut duplicated = 0u64;
    for r in store.recent(expected.len() + 10).expect("recount").iter() {
        if !seen.insert(r.access_number) {
            duplicated += 1;
        }
    }
    let lost = expected.difference(&seen).count() as u64;
    let recovered = store.total_records();
    drop(store);
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
    WalPhase {
        absorb_pauses_us: pauses,
        post_absorb_wal_bytes: post_bytes,
        recovery_secs,
        recovered_records: recovered,
        lost,
        duplicated,
    }
}

fn max_u64(v: &[u64]) -> u64 {
    v.iter().copied().max().unwrap_or(0)
}

fn mean_u64(v: &[u64]) -> u64 {
    if v.is_empty() {
        0
    } else {
        v.iter().sum::<u64>() / v.len() as u64
    }
}

fn main() {
    let fast = fast_mode();
    let scale = Scale::pick(fast);
    println!(
        "store bench: {} files (zipf 1.0), {} records, checkpoint every {}{}",
        scale.files,
        scale.records,
        scale.checkpoint_every,
        if fast { " (fast mode)" } else { "" }
    );

    let ingest = ingest_phase(&scale);
    let query = query_phase(&scale, &ingest.tiered);
    let store_dir = ingest._dir.clone();
    drop(ingest.tiered);
    std::fs::remove_dir_all(&store_dir).ok();
    let pipeline = wal_phase(&scale);

    print_table(
        "tiered store vs in-memory ReplayDb",
        &["phase", "value"],
        &[
            vec![
                "in-memory ingest".into(),
                format!("{:.0} records/s", ingest.mem_rate),
            ],
            vec![
                "tiered ingest (hot path)".into(),
                format!("{:.0} records/s ({:.2}x)", ingest.store_rate, ingest.ratio),
            ],
            vec![
                "tiered ingest (incl. checkpoints)".into(),
                format!("{:.0} records/s", ingest.wall_rate),
            ],
            vec![
                "checkpoint pause".into(),
                format!(
                    "max {} µs, mean {} µs",
                    max_u64(&ingest.checkpoint_pauses_us),
                    mean_u64(&ingest.checkpoint_pauses_us)
                ),
            ],
            vec![
                "recent_per_device".into(),
                format!(
                    "{} ns @ {} records → {} ns @ {} records",
                    query.small_ns, query.small_history, query.large_ns, query.large_history
                ),
            ],
            vec![
                "absorb pause".into(),
                format!(
                    "max {} µs, mean {} µs",
                    max_u64(&pipeline.absorb_pauses_us),
                    mean_u64(&pipeline.absorb_pauses_us)
                ),
            ],
            vec![
                "post-checkpoint WAL".into(),
                format!("max {} bytes", max_u64(&pipeline.post_absorb_wal_bytes)),
            ],
            vec![
                "crash recovery".into(),
                format!(
                    "{:.3} s for {} records (lost {}, duplicated {})",
                    pipeline.recovery_secs,
                    pipeline.recovered_records,
                    pipeline.lost,
                    pipeline.duplicated
                ),
            ],
        ],
    );

    let json = serde_json::json!({
        "config": {
            "fast": fast,
            "files": scale.files,
            "records": scale.records,
            "checkpoint_every": scale.checkpoint_every,
            "hot_tail": HOT_TAIL,
            "zipf_exponent": 1.0,
        },
        "ingest": {
            "in_memory_records_per_sec": ingest.mem_rate,
            "tiered_hot_path_records_per_sec": ingest.store_rate,
            "tiered_wall_clock_records_per_sec": ingest.wall_rate,
            "tiered_vs_memory": ingest.ratio,
            "checkpoint_pause_max_us": max_u64(&ingest.checkpoint_pauses_us),
            "checkpoint_pause_mean_us": mean_u64(&ingest.checkpoint_pauses_us),
        },
        "query_scaling": {
            "recent_per_device_x": 32,
            "small_history_records": query.small_history,
            "small_latency_ns": query.small_ns,
            "large_history_records": query.large_history,
            "large_latency_ns": query.large_ns,
            "scaling_ratio": query.ratio,
        },
        "wal_pipeline": {
            "absorb_pause_max_us": max_u64(&pipeline.absorb_pauses_us),
            "absorb_pause_mean_us": mean_u64(&pipeline.absorb_pauses_us),
            "post_absorb_wal_bytes": pipeline.post_absorb_wal_bytes,
            "recovery_secs": pipeline.recovery_secs,
            "recovered_records": pipeline.recovered_records,
            "lost_records": pipeline.lost,
            "duplicated_records": pipeline.duplicated,
        },
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("BENCH_store.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write BENCH_store.json");
    println!("\nwrote {}", path.display());

    // ── gates ──────────────────────────────────────────────────────
    let ingest_gate = if fast { 0.5 } else { 0.8 };
    assert!(
        ingest.ratio >= ingest_gate,
        "tiered ingest at {:.2}x of in-memory, below the {ingest_gate}x gate",
        ingest.ratio
    );
    assert!(
        query.ratio <= 2.0,
        "recent_per_device slowed {:.2}x from {} to {} records — not flat",
        query.ratio,
        query.small_history,
        query.large_history
    );
    // Steady state: the WAL footprint after an absorb never grows with
    // rounds (empty re-created logs only).
    let first = pipeline.post_absorb_wal_bytes.first().copied().unwrap_or(0);
    for (round, &bytes) in pipeline.post_absorb_wal_bytes.iter().enumerate() {
        assert!(
            bytes <= first.max(1024),
            "WAL grew with history: {bytes} bytes after round {round} (round 0: {first})"
        );
    }
    assert_eq!(pipeline.lost, 0, "crash recovery lost records");
    assert_eq!(pipeline.duplicated, 0, "crash recovery duplicated records");
    println!("all gates passed");
}
