//! Tables I & II: the 23 candidate architectures and their accuracy /
//! training time / prediction time when modeling throughput on the `people`
//! mount.
//!
//! Run with `cargo run -p geomancy-bench --bin table2 --release`.
//! (Full scale trains 23 networks for 200 epochs; expect a few minutes.)

use std::time::Instant;

use geomancy_bench::output::{print_table, write_json};
use geomancy_bench::scenarios::{
    gather_mount_telemetry, model_study_epochs, model_study_records_per_mount,
};
use geomancy_core::dataset::forecasting_dataset;
use geomancy_core::models::{build_model, ModelId};
use geomancy_nn::init::seeded_rng;
use geomancy_nn::loss::Loss;
use geomancy_nn::optimizer::Sgd;
use geomancy_nn::training::{train, DataSplit, TrainConfig};
use geomancy_sim::bluesky::Mount;
use geomancy_trace::features::Z;

const TIMESTEPS: usize = 8;

fn main() {
    let per_mount = model_study_records_per_mount();
    let epochs = model_study_epochs();
    println!(
        "Tables I & II — 23 architectures on the people mount \
         ({per_mount} records, {epochs} epochs, SGD, 60/20/20 split, Z = {Z})"
    );
    println!("gathering telemetry…");
    let telemetry = gather_mount_telemetry(7, per_mount);
    let people = &telemetry[&Mount::People];

    // Datasets: one-row samples for dense models, windows for recurrent.
    let dense_ds = forecasting_dataset(people, 1, 4, 0);
    let windowed_ds = forecasting_dataset(people, TIMESTEPS, 4, 0);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for id in ModelId::all() {
        let ds = if id.is_recurrent() {
            &windowed_ds
        } else {
            &dense_ds
        };
        let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
        let mut rng = seeded_rng(1000 + id.number() as u64);
        let mut net = build_model(id, Z, TIMESTEPS, &mut rng);
        let mut opt = Sgd::new(0.05);
        let start = Instant::now();
        let report = train(
            &mut net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs,
                batch_size: 64,
                loss: Loss::MeanSquaredError,
                patience: None,
            },
        );
        let elapsed = start.elapsed();
        let error_cell = report.error_cell();
        println!(
            "  {id}: {error_cell}  (train {:.2}s, predict {:.2}ms)",
            report.training_time.as_secs_f64(),
            report.prediction_time.as_secs_f64() * 1e3,
        );
        rows.push(vec![
            id.number().to_string(),
            id.components().to_string(),
            error_cell.clone(),
            format!("{:.3}", report.training_time.as_secs_f64()),
            format!("{:.2}", report.prediction_time.as_secs_f64() * 1e3),
        ]);
        json_rows.push(serde_json::json!({
            "model": id.number(),
            "components": id.components(),
            "diverged": report.diverged,
            "mare_mean_pct": report.test_error.mean,
            "mare_std_pct": report.test_error.std_dev,
            "training_time_s": report.training_time.as_secs_f64(),
            "prediction_time_ms": report.prediction_time.as_secs_f64() * 1e3,
            "wall_time_s": elapsed.as_secs_f64(),
        }));
    }

    print_table(
        "Table I + II — model architectures and comparison (people mount)",
        &[
            "model",
            "components",
            "abs. relative error (%)",
            "train (s)",
            "predict (ms)",
        ],
        &rows,
    );
    println!(
        "\nShape check vs the paper: the dense towers (1, 6, 7) and SimpleRNN+dense (18)\n\
         should sit among the best; several shallow/linear models diverge; recurrent\n\
         models cost the most prediction time."
    );
    write_json(
        "table2_models",
        &serde_json::json!({
            "records_per_mount": per_mount,
            "epochs": epochs,
            "rows": json_rows,
        }),
    );
}
