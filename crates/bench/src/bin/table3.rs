//! Table III: prediction accuracy of model 1 on each of Bluesky's six
//! storage points.
//!
//! Run with `cargo run -p geomancy-bench --bin table3 --release`.

use geomancy_bench::output::{print_table, write_json};
use geomancy_bench::scenarios::{
    gather_mount_telemetry, model_study_epochs, model_study_records_per_mount,
};
use geomancy_core::dataset::forecasting_dataset;
use geomancy_core::models::{build_model, ModelId};
use geomancy_nn::init::seeded_rng;
use geomancy_nn::loss::Loss;
use geomancy_nn::optimizer::Sgd;
use geomancy_nn::training::{train, DataSplit, TrainConfig};
use geomancy_sim::bluesky::Mount;
use geomancy_trace::features::Z;

fn main() {
    let per_mount = model_study_records_per_mount();
    let epochs = model_study_epochs();
    println!("Table III — model 1 per-mount accuracy ({per_mount} records, {epochs} epochs)");
    println!("gathering telemetry…");
    let telemetry = gather_mount_telemetry(11, per_mount);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut errors = Vec::new();
    for mount in Mount::ALL {
        let records = &telemetry[&mount];
        let ds = forecasting_dataset(records, 1, 4, 0);
        let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
        let mut rng = seeded_rng(500 + mount as u64);
        let mut net = build_model(ModelId::new(1), Z, 8, &mut rng);
        let mut opt = Sgd::new(0.05);
        let report = train(
            &mut net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs,
                batch_size: 64,
                loss: Loss::MeanSquaredError,
                patience: None,
            },
        );
        println!("  {mount}: {}", report.error_cell());
        errors.push(report.test_error.mean);
        rows.push(vec![mount.name().to_string(), report.error_cell()]);
        json_rows.push(serde_json::json!({
            "mount": mount.name(),
            "diverged": report.diverged,
            "mare_mean_pct": report.test_error.mean,
            "mare_std_pct": report.test_error.std_dev,
        }));
    }

    print_table(
        "Table III — model 1 accuracy per Bluesky storage point",
        &["storage point", "absolute relative error (%)"],
        &rows,
    );
    let avg_acc = 100.0 - errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "\naverage accuracy over all mounts: {avg_acc:.2} % \
         (paper reports ≈ 81 % with no mount below ≈ 56 %)"
    );
    write_json(
        "table3_per_mount",
        &serde_json::json!({
            "records_per_mount": per_mount,
            "epochs": epochs,
            "rows": json_rows,
            "average_accuracy_pct": avg_acc,
        }),
    );
}
