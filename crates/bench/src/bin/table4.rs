//! Table IV — performance and utilization of each storage point: every file
//! pinned to a single mount vs Geomancy's learned mixed layout.
//!
//! Run with `cargo run -p geomancy-bench --bin table4 --release`.

use geomancy_bench::output::{print_table, write_json};
use geomancy_bench::scenarios::{experiment_config, live_drl_config};
use geomancy_core::experiment::{run_policy_experiment, PinAll};
use geomancy_core::policy::{GeomancyDynamic, PlacementPolicy};
use geomancy_sim::bluesky::Mount;

fn main() {
    let config = experiment_config(55);
    let seed = config.seed;
    println!(
        "Table IV — per-mount pinned runs vs Geomancy, {} runs each",
        config.runs
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    // Geomancy first: its usage column reports how it spread load.
    println!("running Geomancy…");
    let mut geomancy: Box<dyn PlacementPolicy> =
        Box::new(GeomancyDynamic::with_config(live_drl_config(seed), 0.1));
    let geomancy_result = run_policy_experiment(geomancy.as_mut(), &config);

    let mut pinned_avgs = Vec::new();
    for mount in Mount::ALL {
        println!("running all-on-{}…", mount.name());
        let mut policy: Box<dyn PlacementPolicy> = Box::new(PinAll::new(mount));
        let result = run_policy_experiment(policy.as_mut(), &config);
        let usage_pct = geomancy_result
            .usage_fraction
            .get(mount.name())
            .copied()
            .unwrap_or(0.0)
            * 100.0;
        pinned_avgs.push((mount, result.avg_throughput));
        rows.push(vec![
            mount.name().to_string(),
            format!(
                "{:.2} ± {:.2}",
                result.avg_throughput / 1e9,
                result.std_throughput / 1e9
            ),
            format!("{usage_pct:.2}"),
        ]);
        json_rows.push(serde_json::json!({
            "storage_point": mount.name(),
            "avg_gbps": result.avg_throughput / 1e9,
            "std_gbps": result.std_throughput / 1e9,
            "geomancy_usage_pct": usage_pct,
        }));
    }
    rows.push(vec![
        "Geomancy".to_string(),
        format!(
            "{:.2} ± {:.2}",
            geomancy_result.avg_throughput / 1e9,
            geomancy_result.std_throughput / 1e9
        ),
        "100".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "storage_point": "Geomancy",
        "avg_gbps": geomancy_result.avg_throughput / 1e9,
        "std_gbps": geomancy_result.std_throughput / 1e9,
        "geomancy_usage_pct": 100.0,
    }));

    print_table(
        "Table IV — performance and utilization of storage points",
        &[
            "storage point",
            "avg throughput (GB/s)",
            "usage by Geomancy (%)",
        ],
        &rows,
    );

    let (fastest_mount, fastest_avg) = pinned_avgs
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .copied()
        .expect("mounts ran");
    let (slowest_mount, slowest_avg) = pinned_avgs
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .copied()
        .expect("mounts ran");
    println!(
        "\nShape check vs the paper: file0 fastest pinned mount, USBtmp slowest, and\n\
         Geomancy leans on file0 without saturating it."
    );
    println!(
        "  fastest pinned: {} at {:.2} GB/s; slowest: {} at {:.2} GB/s",
        fastest_mount.name(),
        fastest_avg / 1e9,
        slowest_mount.name(),
        slowest_avg / 1e9,
    );
    println!(
        "  Geomancy: {:.2} GB/s using file0 for {:.1} % of accesses",
        geomancy_result.avg_throughput / 1e9,
        geomancy_result
            .usage_fraction
            .get("file0")
            .copied()
            .unwrap_or(0.0)
            * 100.0
    );

    write_json(
        "table4_storage_points",
        &serde_json::json!({ "runs": config.runs, "rows": json_rows }),
    );
}
