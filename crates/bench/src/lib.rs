//! # geomancy-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! Geomancy paper (ISPASS 2020). Each binary prints one artifact:
//!
//! | Binary   | Artifact | Paper section |
//! |----------|----------|---------------|
//! | `fig4`   | feature ↔ throughput correlations | §V-D, Figure 4 |
//! | `table2` | 23-model comparison (error, train/predict time) | §V-G, Tables I & II |
//! | `table3` | model 1 error per storage point | §V-G, Table III |
//! | `fig5a`  | Experiment 1: Geomancy vs dynamic baselines | §VII, Figure 5a |
//! | `fig5b`  | Experiment 2: Geomancy vs static baselines | §VII, Figure 5b |
//! | `table4` | per-mount throughput / usage | §VIII, Table IV |
//! | `fig6`   | Experiment 3: adapting to a new workload | §VIII, Figure 6 |
//! | `ablations` | design-choice ablations called out in DESIGN.md | — |
//!
//! Criterion microbenches (`cargo bench -p geomancy-bench`) cover the §VIII
//! overhead study (train/predict time) plus simulator, ReplayDB, and policy
//! costs.
//!
//! Every binary honors `GEOMANCY_FAST=1` to shrink workloads for smoke
//! testing, and writes machine-readable JSON next to its stdout report
//! under `results/`.

#![warn(missing_docs)]

pub mod output;
pub mod scenarios;
