//! Report formatting and result persistence shared by the table/figure
//! binaries.

use std::path::{Path, PathBuf};

/// Prints an ASCII table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Renders a throughput series as a fixed-width ASCII sparkline block so
/// figure shapes are visible in a terminal.
pub fn sparkline(label: &str, values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return format!("{label}: (empty)");
    }
    // Downsample to `width` buckets.
    let bucket = (values.len() as f64 / width as f64).max(1.0);
    let mut sampled = Vec::with_capacity(width);
    let mut i = 0.0;
    while (i as usize) < values.len() && sampled.len() < width {
        let start = i as usize;
        let end = ((i + bucket) as usize).min(values.len()).max(start + 1);
        sampled.push(values[start..end].iter().sum::<f64>() / (end - start) as f64);
        i += bucket;
    }
    let min = sampled.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sampled.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    let chars: String = sampled
        .iter()
        .map(|&v| {
            let idx = (((v - min) / range) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect();
    format!(
        "{label:<18} {chars}  [{:.2}, {:.2}] GB/s",
        min / 1e9,
        max / 1e9
    )
}

/// Directory where binaries drop machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes a JSON value under `results/<name>.json`, reporting the path.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Whether fast (smoke-test) mode is requested via `GEOMANCY_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("GEOMANCY_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Formats bytes/second as the paper's GB/s cells.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_requested_width() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let line = sparkline("test", &values, 40);
        let glyphs: usize = line.chars().filter(|c| "▁▂▃▄▅▆▇█".contains(*c)).count();
        assert_eq!(glyphs, 40);
    }

    #[test]
    fn sparkline_empty_is_graceful() {
        assert!(sparkline("x", &[], 10).contains("empty"));
    }

    #[test]
    fn gbps_formats() {
        assert_eq!(gbps(4.98e9), "4.98");
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into()]]);
    }
}
