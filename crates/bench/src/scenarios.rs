//! Shared experiment scenarios: the standard configurations used by the
//! figure/table binaries and the telemetry-gathering phase of the model
//! study (Tables II/III).

use std::collections::BTreeMap;

use geomancy_core::drl::DrlConfig;
use geomancy_core::experiment::ExperimentConfig;
use geomancy_sim::bluesky::{bluesky_system, Mount};
use geomancy_sim::cluster::FileMeta;
use geomancy_sim::record::{AccessRecord, DeviceId};
use geomancy_trace::belle2::Belle2Workload;

use crate::output::fast_mode;

/// The experiment configuration used by the figure binaries: ~16 000
/// measured accesses (45 runs × ~360 accesses), movements every 5 runs —
/// the scale of §VI. Honors `GEOMANCY_FAST`, and `GEOMANCY_SEED` overrides
/// the binary's default seed for variance studies.
pub fn experiment_config(seed: u64) -> ExperimentConfig {
    let seed = std::env::var("GEOMANCY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(seed);
    if fast_mode() {
        ExperimentConfig {
            seed,
            warmup_accesses: 400,
            runs: 8,
            move_every_runs: 2,
            lookback: 800,
            transfer_budget: None,
            file_count: 8,
            inter_run_gap_secs: 2.0,
            early_retrain_on_drift: false,
        }
    } else {
        ExperimentConfig {
            seed,
            warmup_accesses: 10_000,
            runs: 45,
            move_every_runs: 5,
            lookback: 4_000,
            transfer_budget: None,
            file_count: 24,
            inter_run_gap_secs: 5.0,
            early_retrain_on_drift: false,
        }
    }
}

/// DRL engine configuration for the live experiments: a lighter online
/// retrain than the offline 200-epoch study, sized so nine retrain cycles
/// finish in seconds on a laptop core. Targets are unsmoothed
/// (`smoothing_window: 1`): in this substrate the per-device contention
/// signal moves access-by-access, and the smoothing ablation shows raw
/// targets place better (the offline model study keeps the paper's
/// smoothing).
pub fn live_drl_config(seed: u64) -> DrlConfig {
    DrlConfig {
        model: 1,
        train_window: if fast_mode() { 300 } else { 1_000 },
        epochs: if fast_mode() { 10 } else { 40 },
        learning_rate: 0.05,
        batch_size: 64,
        smoothing_window: 1,
        timesteps: 8,
        adjust_predictions: true,
        log_targets: false,
        seed,
    }
}

/// Number of telemetry records per mount used by the model study. The
/// paper uses 12 000 entries; we use 2 000 per mount (12 000 total across
/// the six mounts) because our simulated traces span regime storms —
/// longer contiguous spans put the held-out tail in a different regime
/// than training, and min-max-normalized timestamps over very long spans
/// shrink the access-duration signal below what SGD can amplify
/// (documented in EXPERIMENTS.md).
pub fn model_study_records_per_mount() -> usize {
    if fast_mode() {
        600
    } else {
        2_000
    }
}

/// Epochs for the offline model study (paper: 200).
pub fn model_study_epochs() -> usize {
    if fast_mode() {
        30
    } else {
        200
    }
}

/// Runs the BELLE II workload on the spread layout until every mount has at
/// least `per_mount` records, returning each mount's record series in access
/// order — the §V-G data-gathering phase for the model comparison.
pub fn gather_mount_telemetry(seed: u64, per_mount: usize) -> BTreeMap<Mount, Vec<AccessRecord>> {
    let mut system = bluesky_system(seed);
    let mut workload = Belle2Workload::new(seed.wrapping_add(1));
    let device_count = system.devices().len();
    for (i, file) in workload.files().iter().enumerate() {
        system
            .add_file(
                file.fid,
                FileMeta {
                    size: file.size,
                    path: file.path.clone(),
                },
                DeviceId((i % device_count) as u32),
            )
            .expect("spread placement fits");
    }
    let mut per_device: BTreeMap<DeviceId, Vec<AccessRecord>> = BTreeMap::new();
    let enough = |per_device: &BTreeMap<DeviceId, Vec<AccessRecord>>| {
        Mount::ALL
            .iter()
            .all(|m| per_device.get(&m.device_id()).map(|v| v.len()).unwrap_or(0) >= per_mount)
    };
    while !enough(&per_device) {
        for op in workload.next_run() {
            let record = if op.write {
                system.write_file(op.fid, op.bytes)
            } else {
                system.read_file(op.fid, op.bytes)
            }
            .expect("registered file");
            per_device.entry(record.fsid).or_default().push(record);
        }
        system.idle(3.0);
    }
    Mount::ALL
        .iter()
        .map(|&m| {
            let mut records = per_device.remove(&m.device_id()).unwrap_or_default();
            records.truncate(per_mount);
            (m, records)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_covers_every_mount() {
        let telemetry = gather_mount_telemetry(3, 50);
        assert_eq!(telemetry.len(), 6);
        for (mount, records) in &telemetry {
            assert_eq!(records.len(), 50, "{mount} shorted");
            assert!(records.iter().all(|r| r.fsid == mount.device_id()));
        }
    }

    #[test]
    fn config_scales_sanely() {
        let cfg = experiment_config(0);
        assert!(cfg.runs > 0);
        assert!(cfg.move_every_runs > 0);
        assert!(cfg.warmup_accesses > 0);
    }
}
