//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// First positional argument (the subcommand).
    pub command: Option<String>,
    /// `--key value` pairs; a flag without a value maps to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Errors from argument parsing or typed lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An option was given twice.
    Duplicate(String),
    /// A positional argument appeared after options.
    UnexpectedPositional(String),
    /// A required option is missing.
    Missing(String),
    /// An option's value failed to parse.
    Invalid {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
        /// Expected type.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::UnexpectedPositional(v) => write!(f, "unexpected argument {v:?}"),
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} expects {expected}, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on duplicate options or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError::Duplicate(key.to_string()));
                }
            } else {
                return Err(ArgError::UnexpectedPositional(token));
            }
        }
        Ok(args)
    }

    /// String option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Missing`] when absent.
    pub fn str_required(&self, key: &str) -> Result<String, ArgError> {
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError::Missing(key.to_string()))
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Invalid`] when present but unparsable.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                key: key.to_string(),
                value: v.clone(),
                expected: "an integer",
            }),
        }
    }

    /// Boolean flag (present without value, or `--key true/false`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Invalid`] when present but not a boolean.
    pub fn flag(&self, key: &str) -> Result<bool, ArgError> {
        match self.options.get(key) {
            None => Ok(false),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                key: key.to_string(),
                value: v.clone(),
                expected: "true or false",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["simulate", "--seed", "7", "--runs", "10"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("simulate"));
        assert_eq!(args.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(args.u64_or("runs", 0).unwrap(), 10);
        assert_eq!(args.u64_or("absent", 42).unwrap(), 42);
    }

    #[test]
    fn bare_flag_is_true() {
        let args = parse(&["simulate", "--verbose"]).unwrap();
        assert!(args.flag("verbose").unwrap());
        assert!(!args.flag("quiet").unwrap());
    }

    #[test]
    fn no_command_is_allowed() {
        let args = parse(&["--help"]).unwrap();
        assert_eq!(args.command, None);
        assert!(args.flag("help").unwrap());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert_eq!(
            parse(&["x", "--a", "1", "--a", "2"]),
            Err(ArgError::Duplicate("a".into()))
        );
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            parse(&["x", "--a", "1", "stray"]),
            // "stray" is consumed as --a's... no: --a takes "1", then "stray"
            // is a stray positional.
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn invalid_integer_reported() {
        let args = parse(&["x", "--n", "abc"]).unwrap();
        assert!(matches!(args.u64_or("n", 0), Err(ArgError::Invalid { .. })));
    }

    #[test]
    fn required_string() {
        let args = parse(&["x", "--path", "/tmp/t.csv"]).unwrap();
        assert_eq!(args.str_required("path").unwrap(), "/tmp/t.csv");
        assert_eq!(
            args.str_required("nope"),
            Err(ArgError::Missing("nope".into()))
        );
    }

    #[test]
    fn display_messages_are_concise() {
        assert_eq!(
            ArgError::Missing("seed".into()).to_string(),
            "missing required option --seed"
        );
    }
}
