//! `geomancy cluster` — run one node of the replicated placement
//! cluster, or talk to a running cluster as a routed client.
//!
//! With no mode flag the command runs a node: the placement service
//! plus WAL shipping, heartbeats, and the failover controller, until
//! SIGTERM/Ctrl-C. `--join` restarts a recovered node as a rejoiner
//! (it re-enters as a follower, catches up, and waits for the sitting
//! emergency primary to demote back to it). `--info` prints a node's
//! current [`ClusterMap`]; `--rebalance-status` compares that map
//! against the preferred ring assignment; `--send` routes synthetic
//! telemetry through a [`ClusterClient`]; `--place` asks the cluster
//! for placements.
//!
//! [`ClusterMap`]: geomancy_net::ClusterMap

use std::error::Error;
use std::path::PathBuf;
use std::time::Duration;

use geomancy_cluster::{preferred_primary, ClusterClient, ClusterNode, ClusterNodeConfig};
use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig};
use geomancy_serve::{PlacementRequest, ServeConfig};
use geomancy_sim::record::{DeviceId, FileId};

use crate::args::Args;
use crate::netcmd::{sig, synthetic_record};

/// Dispatches the `cluster` verbs on their mode flags.
///
/// # Errors
///
/// Returns an error for bad options or transport failures.
pub fn cluster(args: &Args) -> Result<(), Box<dyn Error>> {
    if args.flag("info")? {
        info(args)
    } else if args.flag("rebalance-status")? {
        rebalance_status(args)
    } else if args.flag("send")? {
        send(args)
    } else if args.flag("place")? {
        place(args)
    } else {
        run_node(args)
    }
}

/// Parses `--peers 1=HOST:PORT,2=HOST:PORT,...` into the shared peer
/// list every node must agree on.
fn parse_peers(spec: &str) -> Result<Vec<(u64, String)>, Box<dyn Error>> {
    let mut peers = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let (id, addr) = part
            .split_once('=')
            .ok_or_else(|| format!("--peers entry {part:?} is not ID=HOST:PORT"))?;
        let id: u64 = id
            .parse()
            .map_err(|_| format!("--peers entry {part:?} has a non-integer node id"))?;
        if peers.iter().any(|(other, _)| *other == id) {
            return Err(format!("--peers names node {id} twice").into());
        }
        peers.push((id, addr.to_string()));
    }
    if peers.is_empty() {
        return Err("--peers names no nodes".into());
    }
    Ok(peers)
}

/// The seed addresses a client verb dials: `--peers` if given (the
/// addresses alone), else a single `--addr`.
fn seed_addrs(args: &Args) -> Result<Vec<String>, Box<dyn Error>> {
    if let Some(spec) = args.options.get("peers") {
        return Ok(parse_peers(spec)?.into_iter().map(|(_, a)| a).collect());
    }
    Ok(vec![args.str_required("addr")?])
}

/// `geomancy cluster --node-id N --peers 1=A,2=B,... --dir PATH`: run
/// one cluster node until SIGTERM/Ctrl-C.
fn run_node(args: &Args) -> Result<(), Box<dyn Error>> {
    let node_id = args
        .options
        .get("node-id")
        .ok_or("cluster node mode requires --node-id (or use --info/--send/--place)")?
        .parse::<u64>()
        .map_err(|_| "--node-id expects an integer")?;
    let peers = parse_peers(
        args.options
            .get("peers")
            .ok_or("cluster node mode requires --peers ID=HOST:PORT,...")?,
    )?;
    let listen = match args.options.get("listen") {
        Some(l) => l.clone(),
        None => peers
            .iter()
            .find(|(id, _)| *id == node_id)
            .map(|(_, a)| a.clone())
            .ok_or("--node-id is not in --peers and no --listen given")?,
    };
    let dir = PathBuf::from(args.str_or("dir", &format!("cluster-node-{node_id}")));
    let shards = args.u64_or("shards", 4)? as u32;
    let config = ClusterNodeConfig {
        node_id,
        listen,
        peers,
        replicas: args.u64_or("replicas", 1)? as usize,
        shards,
        dir,
        heartbeat_micros: args.u64_or("heartbeat-ms", 250)?.max(1) * 1000,
        failover_after_micros: args.u64_or("failover-ms", 1500)?.max(1) * 1000,
        serve: ServeConfig {
            candidates: (0..4).map(DeviceId).collect(),
            drl: DrlConfig {
                train_window: 800,
                epochs: 20,
                smoothing_window: 8,
                seed: args.u64_or("seed", 42)?,
                ..DrlConfig::default()
            },
            ..ServeConfig::default()
        },
        net: NetConfig::default(),
        rejoin: args.flag("join")?,
        retain_bytes: (args.u64_or("retain-mb", 64)? as usize) << 20,
        catch_up_max_records: args.u64_or("catch-up-batch", 4096)?.max(1) as u32,
    };
    let rejoining = config.rejoin;
    let node = ClusterNode::start(config).map_err(|e| format!("start node: {e}"))?;
    sig::install();
    println!(
        "geomancy cluster node {} on {} (epoch {}, {} shards of which {:?} primary{}); \
         SIGTERM or Ctrl-C drains and exits",
        node.node_id(),
        node.local_addr(),
        node.epoch(),
        shards,
        node.map().shards_owned_by(node.node_id()),
        if rejoining {
            ", rejoining as follower"
        } else {
            ""
        },
    );
    let mut last_epoch = node.epoch();
    while !sig::stopped() {
        std::thread::sleep(Duration::from_millis(50));
        let epoch = node.epoch();
        if epoch != last_epoch {
            println!(
                "epoch {last_epoch} → {epoch}: now primary for {:?} ({} self-promotions, \
                 {} demotions granted)",
                node.map().shards_owned_by(node.node_id()),
                node.promotions(),
                node.demotions(),
            );
            last_epoch = epoch;
        }
    }
    println!("draining: advertising Draining, then shutting down…");
    node.begin_drain();
    node.shutdown();
    println!("node stopped cleanly");
    Ok(())
}

/// `geomancy cluster --info --addr HOST:PORT`: print the node's current
/// cluster map — the CI smoke polls this for the post-kill epoch bump.
fn info(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.str_required("addr")?;
    let client = Client::connect(addr.as_str(), ClientConfig::default())
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let map = client
        .cluster_info()
        .map_err(|e| format!("cluster info: {e}"))?;
    println!(
        "cluster map at {addr}: epoch {}, {} shards, {} nodes",
        map.epoch,
        map.shards,
        map.nodes.len()
    );
    for n in &map.nodes {
        println!("  node {} @ {}", n.node_id, n.addr);
    }
    for a in &map.assignments {
        println!(
            "  shard {}: primary {}, replicas {:?}",
            a.shard, a.primary, a.replicas
        );
    }
    Ok(())
}

/// `geomancy cluster --rebalance-status --addr HOST:PORT`: fetch the
/// cluster map and compare every shard's sitting primary against the
/// preferred ring owner — the CI smoke polls this after a rejoin until
/// the demotion flip settles every shard back where it belongs.
fn rebalance_status(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.str_required("addr")?;
    let client = Client::connect(addr.as_str(), ClientConfig::default())
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let map = client
        .cluster_info()
        .map_err(|e| format!("cluster info: {e}"))?;
    let mut displaced = 0u32;
    println!(
        "rebalance status at {addr}: epoch {}, {} shards, {} nodes",
        map.epoch,
        map.shards,
        map.nodes.len()
    );
    for a in &map.assignments {
        match preferred_primary(&map, a.shard) {
            Some(pref) if pref == a.primary => {
                println!("  shard {}: primary {} (preferred)", a.shard, a.primary);
            }
            Some(pref) => {
                displaced += 1;
                println!(
                    "  shard {}: primary {} (emergency; preferred owner is {})",
                    a.shard, a.primary, pref
                );
            }
            None => {
                displaced += 1;
                println!("  shard {}: primary {} (no members?)", a.shard, a.primary);
            }
        }
    }
    if displaced == 0 {
        println!("REBALANCED: every shard on its preferred owner");
    } else {
        println!("REBALANCING: {displaced} shard(s) still on emergency primaries");
    }
    Ok(())
}

/// Builds the routed client from the seed addresses.
fn routed_client(args: &Args) -> Result<ClusterClient, Box<dyn Error>> {
    let seeds = seed_addrs(args)?;
    ClusterClient::connect(&seeds, ClientConfig::default())
        .map_err(|e| format!("no seed answered ({seeds:?}): {e}").into())
}

/// `geomancy cluster --send`: route synthetic telemetry through the
/// cluster map, failing over per the routing policy.
fn send(args: &Args) -> Result<(), Box<dyn Error>> {
    let records = args.u64_or("records", 300)?;
    let files = args.u64_or("files", 4)?;
    let batch = args.u64_or("batch", 32)?.max(1);
    let client = routed_client(args)?;
    println!(
        "routing {records} records over {files} files (epoch {})",
        client.map().epoch
    );
    let mut sent = 0u64;
    while sent < records {
        let n = batch.min(records - sent);
        let chunk: Vec<_> = (sent..sent + n)
            .map(|i| synthetic_record(i, files))
            .collect();
        client
            .ingest(sent * 1_000_000, &chunk)
            .map_err(|e| format!("ingest at record {sent}: {e}"))?;
        sent += n;
    }
    println!(
        "acked {sent} records across the cluster (final epoch {})",
        client.map().epoch
    );
    if args.flag("retrain")? {
        // Retrain is a per-node verb, not a routed one: ask every node
        // in the map so each trains on what it ingested.
        for n in &client.map().nodes {
            let c = Client::connect(n.addr.as_str(), ClientConfig::default())
                .map_err(|e| format!("connect node {}: {e}", n.node_id))?;
            let epoch = c
                .retrain()
                .map_err(|e| format!("retrain node {}: {e}", n.node_id))?;
            println!("  node {} retrained to model epoch {epoch}", n.node_id);
        }
    }
    Ok(())
}

/// `geomancy cluster --place`: ask the cluster for placements, routed
/// by file hash to each owning node.
fn place(args: &Args) -> Result<(), Box<dyn Error>> {
    let count = args.u64_or("count", 8)?.max(1);
    let files = args.u64_or("files", 4)?;
    let bytes = args.u64_or("bytes", 1_000_000)?;
    let client = routed_client(args)?;
    let requests: Vec<PlacementRequest> = (0..count)
        .map(|i| PlacementRequest {
            fid: FileId(i % files.max(1)),
            read_bytes: bytes,
            write_bytes: 0,
        })
        .collect();
    let decisions = client
        .query_many(&requests)
        .map_err(|e| format!("query: {e}"))?;
    println!(
        "{} decisions (epoch {}):",
        decisions.len(),
        client.map().epoch
    );
    for d in &decisions {
        println!(
            "  fid {} → dev{} ({:.2} MB/s predicted, epoch {})",
            d.fid.0,
            d.best.0,
            d.predicted_tp / 1e6,
            d.model_epoch,
        );
    }
    Ok(())
}
