//! CLI subcommand implementations.

use std::error::Error;

use geomancy_core::drl::DrlConfig;
use geomancy_core::experiment::{run_policy_experiment, ExperimentConfig, PinAll};
use geomancy_core::models::{build_model, ModelId};
use geomancy_core::policy::{
    GeomancyDynamic, GeomancyStatic, Lfu, Lru, Mru, PlacementPolicy, RandomDynamic, RandomStatic,
    SpreadStatic,
};
use geomancy_nn::init::seeded_rng;
use geomancy_sim::bluesky::Mount;
use geomancy_trace::features::Z;
use geomancy_trace::stats::{mean_std, pearson};

use crate::args::Args;

/// Usage text printed by `geomancy help` / `--help`.
pub const USAGE: &str = "\
geomancy — RL-driven data layout optimization (ISPASS 2020 reproduction)

USAGE:
    geomancy <COMMAND> [--option value]...

COMMANDS:
    simulate    Run a placement policy on the simulated Bluesky system
                  --policy NAME   geomancy|geomancy-static|lru|mru|lfu|
                                  random|random-static|spread|pin-<mount>
                                  (default geomancy)
                  --seed N        experiment seed (default 7)
                  --runs N        measured workload runs (default 15)
                  --files N       workload file count (default 24)
                  --warmup N      warm-up accesses (default 2000)
                  --cadence N     move every N runs (default 5)
                  --trace PATH    export the throughput series as CSV
                  --report        print a performance report afterwards
                  --save-db PATH  save the gathered ReplayDB as JSON
    analyze     Summarize an access-record CSV trace
                  --trace PATH    CSV produced by `simulate --trace`
    models      List the 23 Table I architectures
                  --z N           features per row (default 6)
    train       Train one Table I model on simulated telemetry
                  --model N       Table I model number (default 1)
                  --records N     records per mount (default 2000)
                  --epochs N      training epochs (default 200)
                  --mount NAME    mount to model (default people)
                  --checkpoint P  save the trained model as JSON
    serve       Run the online placement service on a BELLE II trace
                  --shards N          ingest shards (default 4)
                  --clients N         concurrent query clients (default 4)
                  --runs N            measured workload runs (default 2)
                  --warmup-runs N     runs ingested before retraining (default 2)
                  --files N           workload file count (default 24)
                  --zipf-ops N        accesses per run, zipf-sampled over
                                      the files (default 0 = full scan)
                  --zipf-exponent S   zipf skew for --zipf-ops (default 1.0)
                  --seed N            workload seed (default 42)
                  --batch-window-us N batching window in µs (default 100)
                  --max-batch N       max requests fused per pass (default 256)
                  --queue-capacity N  shard/query queue depth (default 1024)
                  --reactor-workers N reactor pool threads (default 0 = auto)
                  --max-pending N     shed queries above N in flight (default off)
                  --retrains N        mid-load retrain cycles (default 1)
                  --per-file          per-file baseline (no batched submissions)
                  --wal-dir PATH      per-shard write-ahead log directory
                  --store-dir PATH    cold paged store fed by WAL
                                      checkpoints (requires --wal-dir)
                  --checkpoint-every-ms N  checkpoint cadence (default
                                      1000; 0 = only on demand)
                  --hot-tail N        in-memory records kept per shard
                                      after a checkpoint (default 4096)
                  --page-size-kib N   store page size (default 16)
                  --cache-pages N     store page-cache capacity (default 64)
                  --json-out PATH     write the load report as JSON
                  --strict            exit nonzero on zero decisions,
                                      dropped batches, or invalid epochs
                With --listen, serve over TCP instead of running a load:
                  --listen ADDR       bind HOST:PORT and serve the wire
                                      protocol until SIGTERM/Ctrl-C
                  --retrain-every N   auto-retrain after N ingested records
                  --shard-pending B   per-shard pending bounds: one integer
                                      for all shards, or a comma list with
                                      one bound per shard
    ingest      Ship synthetic telemetry to a running --listen server
                  --addr HOST:PORT    server to talk to (required)
                  --records N         records to send (default 300)
                  --files N           distinct file ids (default 4)
                  --batch N           records per batch (default 32)
                  --retrain           request a retrain afterwards
    query       Ask a running --listen server for placements
                  --addr HOST:PORT    server to talk to (required)
                  --count N           placement requests (default 8)
                  --files N           distinct file ids (default 4)
                  --bytes N           read size per request (default 1 MB)
                  --metrics           print the server's counters too
                  --json              with --metrics: emit the counters as
                                      one JSON object and nothing else
    cluster     Run one node of the replicated placement cluster, or
                talk to a running cluster
                Node mode (default):
                  --node-id N         this node's id (required)
                  --peers LIST        1=HOST:PORT,2=HOST:PORT,... shared
                                      peer list (required, same on all
                                      nodes)
                  --listen ADDR       bind address (default: own peers
                                      entry)
                  --dir PATH          node state directory (default
                                      cluster-node-N)
                  --shards N          cluster shard count (default 4)
                  --replicas N        replicas per shard (default 1)
                  --heartbeat-ms N    heartbeat cadence (default 250)
                  --failover-ms N     promote after this much primary
                                      silence (default 1500)
                  --join              rejoin after a crash: re-enter as a
                                      follower, catch up from the sitting
                                      primaries, then take shards back
                                      via demotion
                  --retain-mb N       sealed segments kept for catch-up
                                      (default 64)
                  --catch-up-batch N  records per catch-up chunk
                                      (default 4096)
                Client modes:
                  --info --addr A     print a node's cluster map
                  --rebalance-status --addr A
                                      compare sitting primaries against
                                      the preferred ring owners
                  --send              route synthetic telemetry through
                                      the map (--records/--files/--batch,
                                      seeds from --peers or --addr)
                  --place             ask for placements, routed by file
                                      hash (--count/--files/--bytes)
    help        Print this message
";

/// Builds the policy named on the command line.
///
/// # Errors
///
/// Returns a descriptive error for unknown policy names.
pub fn make_policy(name: &str, seed: u64) -> Result<Box<dyn PlacementPolicy>, String> {
    let drl = DrlConfig {
        train_window: 800,
        epochs: 30,
        smoothing_window: 8,
        seed,
        ..DrlConfig::default()
    };
    Ok(match name {
        "geomancy" => Box::new(GeomancyDynamic::with_config(drl, 0.1)),
        "geomancy-static" => Box::new(GeomancyStatic::with_config(drl)),
        "lru" => Box::new(Lru),
        "mru" => Box::new(Mru),
        "lfu" => Box::new(Lfu),
        "random" => Box::new(RandomDynamic::new(seed)),
        "random-static" => Box::new(RandomStatic::new(seed)),
        "spread" => Box::new(SpreadStatic::new()),
        other => {
            if let Some(mount_name) = other.strip_prefix("pin-") {
                let mount = Mount::ALL
                    .iter()
                    .find(|m| m.name().eq_ignore_ascii_case(mount_name))
                    .ok_or_else(|| format!("unknown mount {mount_name:?} in {other:?}"))?;
                Box::new(PinAll::new(*mount))
            } else {
                return Err(format!(
                    "unknown policy {other:?} (try geomancy, lru, lfu, mru, random, spread, pin-file0)"
                ));
            }
        }
    })
}

/// `geomancy simulate`.
///
/// # Errors
///
/// Returns an error for bad options or trace-export failures.
pub fn simulate(args: &Args) -> Result<(), Box<dyn Error>> {
    let seed = args.u64_or("seed", 7)?;
    let config = ExperimentConfig {
        seed,
        warmup_accesses: args.u64_or("warmup", 2_000)? as usize,
        runs: args.u64_or("runs", 15)? as usize,
        move_every_runs: args.u64_or("cadence", 5)? as usize,
        lookback: 4_000,
        transfer_budget: None,
        file_count: args.u64_or("files", 24)? as usize,
        inter_run_gap_secs: 5.0,
        early_retrain_on_drift: false,
    };
    let policy_name = args.str_or("policy", "geomancy");
    let mut policy = make_policy(&policy_name, seed)?;
    println!(
        "running {} for {} runs (seed {seed}, {} files)…",
        policy.name(),
        config.runs,
        config.file_count
    );
    let result = run_policy_experiment(policy.as_mut(), &config);
    println!(
        "\n{}: {:.2} ± {:.2} GB/s over {} accesses, {} layout changes",
        result.policy,
        result.avg_throughput / 1e9,
        result.std_throughput / 1e9,
        result.series.len(),
        result.movements.len(),
    );
    println!("per-mount usage:");
    for (mount, fraction) in &result.usage_fraction {
        println!("  {mount:>7}: {:.1} %", fraction * 100.0);
    }
    if args.flag("report")? {
        let report = geomancy_core::report::PerformanceReport::build(&result.db, 4_000, 8);
        println!("\n{}", report.render());
    }
    if let Some(path) = args.options.get("save-db") {
        geomancy_replaydb::save(&result.db, path)?;
        println!("wrote ReplayDB snapshot to {path}");
    }
    if let Some(path) = args.options.get("trace") {
        // Re-derive records from the series is lossy; export the per-access
        // series as CSV of (access, throughput) instead.
        let mut out = String::from("access_number,throughput_bytes_per_sec\n");
        for p in &result.series {
            out.push_str(&format!("{},{:.0}\n", p.access_number, p.throughput));
        }
        std::fs::write(path, out)?;
        println!("wrote throughput series to {path}");
    }
    Ok(())
}

/// `geomancy analyze`.
///
/// # Errors
///
/// Returns an error when the trace cannot be read or is empty.
pub fn analyze(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = args.str_required("trace")?;
    let records = geomancy_trace::io::load_csv(&path)?;
    if records.is_empty() {
        return Err(format!("trace {path} holds no records").into());
    }
    println!("{}: {} records", path, records.len());
    // Per-device summary.
    let mut by_device: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for r in &records {
        by_device.entry(r.fsid.0).or_default().push(r.throughput());
    }
    println!("\nper-device throughput:");
    for (dev, tps) in &by_device {
        let (mean, std) = mean_std(tps);
        println!(
            "  dev{dev}: {:>8.3} ± {:>8.3} MB/s over {} accesses",
            mean / 1e6,
            std / 1e6,
            tps.len()
        );
    }
    // Feature correlations (the Figure 4 analysis on this trace).
    let tp: Vec<f64> = records.iter().map(|r| r.throughput()).collect();
    println!("\nfeature correlation with throughput:");
    type Extract = fn(&geomancy_sim::record::AccessRecord) -> f64;
    let features: [(&str, Extract); 6] = [
        ("rb", |r| r.rb as f64),
        ("wb", |r| r.wb as f64),
        ("ots", |r| r.ots as f64),
        ("otms", |r| r.otms as f64),
        ("fid", |r| r.fid.0 as f64),
        ("fsid", |r| r.fsid.0 as f64),
    ];
    for (name, extract) in &features {
        let xs: Vec<f64> = records.iter().map(extract).collect();
        println!("  {name:>5}: {:+.3}", pearson(&xs, &tp));
    }
    Ok(())
}

/// `geomancy models`.
///
/// # Errors
///
/// Returns an error for bad options.
pub fn models(args: &Args) -> Result<(), Box<dyn Error>> {
    let z = args.u64_or("z", Z as u64)? as usize;
    println!("Table I architectures at Z = {z}:");
    for id in ModelId::all() {
        let mut rng = seeded_rng(0);
        let net = build_model(id, z, 8, &mut rng);
        println!(
            "  {:>8}  {:>7} params  {}",
            id.to_string(),
            net.param_count(),
            net.describe()
        );
    }
    Ok(())
}

/// `geomancy train`.
///
/// # Errors
///
/// Returns an error for bad options or checkpoint-write failures.
pub fn train_model(args: &Args) -> Result<(), Box<dyn Error>> {
    use geomancy_core::dataset::forecasting_dataset;
    use geomancy_nn::loss::Loss;
    use geomancy_nn::optimizer::Sgd;
    use geomancy_nn::training::{train, DataSplit, TrainConfig};
    use geomancy_sim::bluesky::bluesky_system;
    use geomancy_sim::cluster::FileMeta;
    use geomancy_sim::record::DeviceId;
    use geomancy_trace::belle2::Belle2Workload;

    let model_number = args.u64_or("model", 1)? as u8;
    let id = ModelId::new(model_number);
    let per_mount = args.u64_or("records", 2_000)? as usize;
    let epochs = args.u64_or("epochs", 200)? as usize;
    let mount_name = args.str_or("mount", "people");
    let mount = Mount::ALL
        .iter()
        .find(|m| m.name().eq_ignore_ascii_case(&mount_name))
        .ok_or_else(|| format!("unknown mount {mount_name:?}"))?;

    println!("gathering {per_mount} records from {mount}…");
    let mut system = bluesky_system(7);
    let mut workload = Belle2Workload::new(7);
    for (i, f) in workload.files().iter().enumerate() {
        system.add_file(
            f.fid,
            FileMeta {
                size: f.size,
                path: f.path.clone(),
            },
            DeviceId((i % 6) as u32),
        )?;
    }
    let mut records = Vec::new();
    while records.len() < per_mount {
        for op in workload.next_run() {
            let rec = system.read_file(op.fid, op.bytes)?;
            if rec.fsid == mount.device_id() {
                records.push(rec);
            }
            if records.len() >= per_mount {
                break;
            }
        }
        system.idle(3.0);
    }

    let timesteps = 8;
    let window = if id.is_recurrent() { timesteps } else { 1 };
    let ds = forecasting_dataset(&records, window, 4, 0);
    let split = DataSplit::split_60_20_20(ds.inputs.clone(), ds.targets.clone());
    let mut rng = seeded_rng(args.u64_or("seed", 0)?);
    let mut net = build_model(id, Z, timesteps, &mut rng);
    println!(
        "training {id}: {} ({} params, {epochs} epochs)…",
        net.describe(),
        net.param_count()
    );
    let mut opt = Sgd::new(0.05);
    let report = train(
        &mut net,
        &mut opt,
        &split,
        &TrainConfig {
            epochs,
            batch_size: 64,
            loss: Loss::MeanSquaredError,
            patience: None,
        },
    );
    println!(
        "test error {} over {} samples ({:.2}s training, {:.2}ms prediction)",
        report.error_cell(),
        split.test.0.rows(),
        report.training_time.as_secs_f64(),
        report.prediction_time.as_secs_f64() * 1e3,
    );
    if let Some(path) = args.options.get("checkpoint") {
        // Rebuild the architecture as a spec so the checkpoint is portable.
        let spec = model_spec(id, Z, timesteps);
        let json = spec.checkpoint(&net).to_json()?;
        std::fs::write(path, json)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

/// Mirrors [`build_model`]'s architecture as a serializable spec.
fn model_spec(id: ModelId, z: usize, timesteps: usize) -> geomancy_nn::spec::NetworkSpec {
    use geomancy_nn::activation::Activation;
    use geomancy_nn::spec::{LayerSpec, NetworkSpec};
    // Derive the layer list from a freshly built network's description: we
    // rebuild via the sizes the constructors use. Simplest robust approach:
    // walk the built network's describe() — but widths are embedded in the
    // constructors, so reconstruct from the same match the builder uses by
    // probing a built instance layer by layer.
    let mut rng = seeded_rng(0);
    let net = build_model(id, z, timesteps, &mut rng);
    // describe() yields entries like "96 (Dense) ReLU" / "6 (GRU) ReLU".
    let mut layers = Vec::new();
    let mut input = if id.is_recurrent() { z * timesteps } else { z };
    for cell in net.describe().split(", ") {
        let mut parts = cell.split(' ');
        let width: usize = parts.next().expect("width").parse().expect("numeric width");
        let kind = parts.next().expect("kind");
        let act = match parts.next().expect("activation") {
            "ReLU" => Activation::ReLU,
            "Linear" => Activation::Linear,
            "Sigmoid" => Activation::Sigmoid,
            other => panic!("unknown activation {other}"),
        };
        let layer = match kind {
            "(Dense)" => LayerSpec::Dense {
                input,
                output: width,
                activation: act,
            },
            "(SimpleRNN)" => LayerSpec::SimpleRnn {
                features: z,
                hidden: width,
                timesteps,
                activation: act,
            },
            "(LSTM)" => LayerSpec::Lstm {
                features: z,
                hidden: width,
                timesteps,
                activation: act,
            },
            "(GRU)" => LayerSpec::Gru {
                features: z,
                hidden: width,
                timesteps,
                activation: act,
            },
            other => panic!("unknown layer kind {other}"),
        };
        input = width;
        layers.push(layer);
    }
    NetworkSpec::new(layers)
}

/// `geomancy serve` — run the sharded online placement service under a
/// BELLE II load and report decisions/sec plus the full counter snapshot.
///
/// # Errors
///
/// Returns an error for bad options, JSON-output failures, or — with
/// `--strict` — a run that served no decisions, dropped ingest batches,
/// or stamped an invalid model epoch on a decision.
pub fn serve(args: &Args) -> Result<(), Box<dyn Error>> {
    use geomancy_serve::{AdmissionConfig, LoadConfig, PlacementService, QueryMode, ServeConfig};
    use geomancy_sim::record::DeviceId;
    use std::sync::Arc;

    let shards = args.u64_or("shards", 4)? as usize;
    let mode = if args.flag("per-file")? {
        QueryMode::PerFile
    } else {
        QueryMode::Batched
    };
    let serve_config = ServeConfig {
        shards,
        queue_capacity: args.u64_or("queue-capacity", 1024)? as usize,
        batch_window_micros: args.u64_or("batch-window-us", 100)?,
        max_batch: if mode == QueryMode::PerFile {
            1
        } else {
            args.u64_or("max-batch", 256)? as usize
        },
        wal_dir: args.options.get("wal-dir").map(std::path::PathBuf::from),
        store: crate::netcmd::store_settings(args)?,
        // The six Bluesky mounts.
        candidates: (0..6).map(DeviceId).collect(),
        drl: DrlConfig {
            train_window: 800,
            epochs: 20,
            smoothing_window: 8,
            seed: args.u64_or("seed", 42)?,
            ..DrlConfig::default()
        },
        retrain_every_records: None,
        trainer: geomancy_serve::TrainerConfig {
            mode: match args.options.get("retrain-mode") {
                None => geomancy_serve::RetrainMode::default(),
                Some(spec) => spec.parse().map_err(|e| format!("--retrain-mode: {e}"))?,
            },
            ..geomancy_serve::TrainerConfig::default()
        },
        reactor_workers: args.u64_or("reactor-workers", 0)? as usize,
        admission: AdmissionConfig {
            max_pending_requests: args
                .options
                .get("max-pending")
                .map(|v| v.parse())
                .transpose()?,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let load_config = LoadConfig {
        seed: args.u64_or("seed", 42)?,
        file_count: args.u64_or("files", 24)? as usize,
        warmup_runs: args.u64_or("warmup-runs", 2)? as usize,
        measured_runs: args.u64_or("runs", 2)? as usize,
        clients: args.u64_or("clients", 4)? as usize,
        mode,
        mid_load_retrains: args.u64_or("retrains", 1)? as usize,
        // `--zipf-ops N` switches each run from the paper's sequential
        // scan to N zipf-sampled accesses — the only practical mix once
        // `--files` reaches the 100k–1M range.
        access_mix: match args.u64_or("zipf-ops", 0)? {
            0 => geomancy_serve::AccessMix::Sequential,
            ops => geomancy_serve::AccessMix::Zipfian {
                ops_per_run: ops as usize,
                exponent: args
                    .options
                    .get("zipf-exponent")
                    .map(|v| v.parse::<f64>())
                    .transpose()
                    .map_err(|_| "--zipf-exponent expects a number")?
                    .unwrap_or(1.0),
            },
        },
    };
    let service = Arc::new(PlacementService::start(serve_config));
    println!(
        "serving BELLE II load: {} shards, {} clients, mode {:?}, {} reactor workers, {} kernels…",
        shards,
        load_config.clients,
        load_config.mode,
        service.reactor_workers(),
        geomancy_nn::matrix::kernels::backend_name(),
    );
    let report = geomancy_serve::run_belle2_load(&service, &load_config);
    let shard_dbs = Arc::try_unwrap(service)
        .expect("load driver released the service")
        .shutdown();

    println!(
        "{} decisions in {:.3} s — {:.0} decisions/sec (p99 {} µs)",
        report.decisions,
        report.elapsed_secs,
        report.decisions_per_sec,
        report.metrics.p99_latency_us(),
    );
    println!(
        "ingested {} records across {} shards ({} dropped batches), {} retrains, {} model swaps",
        report.ingested_records,
        shard_dbs.len(),
        report.metrics.dropped_batches,
        report.metrics.retrains,
        report.metrics.model_swaps,
    );
    println!(
        "batched/solo/coalesced decisions: {}/{}/{}; epochs seen {:?}",
        report.metrics.batched_decisions,
        report.metrics.solo_decisions,
        report.metrics.coalesced_decisions,
        report.epochs_seen,
    );
    if let Some(path) = args.options.get("json-out") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        println!("report written to {path}");
    }
    if args.flag("strict")? {
        if report.decisions == 0 {
            return Err("strict: no placement decisions were served".into());
        }
        if report.metrics.dropped_batches != 0 {
            return Err(format!(
                "strict: {} ingest batches dropped",
                report.metrics.dropped_batches
            )
            .into());
        }
        if report.invalid_epoch_decisions != 0 {
            return Err(format!(
                "strict: {} decisions carried an invalid model epoch",
                report.invalid_epoch_decisions
            )
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_policy_constructs() {
        for name in [
            "geomancy",
            "geomancy-static",
            "lru",
            "mru",
            "lfu",
            "random",
            "random-static",
            "spread",
            "pin-file0",
            "pin-USBtmp",
        ] {
            let policy = make_policy(name, 0).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!policy.name().is_empty());
        }
    }

    #[test]
    fn unknown_policy_is_an_error() {
        assert!(make_policy("definitely-not-a-policy", 0).is_err());
        assert!(make_policy("pin-nonexistent", 0).is_err());
    }

    #[test]
    fn model_spec_matches_builder_for_every_model() {
        for id in ModelId::all() {
            let spec = model_spec(id, 6, 4);
            let mut rng = seeded_rng(1);
            let built = spec.build(&mut rng);
            let mut rng2 = seeded_rng(1);
            let reference = build_model(id, 6, 4, &mut rng2);
            assert_eq!(built.describe(), reference.describe(), "{id}");
            assert_eq!(built.param_count(), reference.param_count(), "{id}");
        }
    }

    #[test]
    fn train_command_with_checkpoint() {
        let dir = std::env::temp_dir().join("geomancy_cli_train_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("model.json");
        let args = Args::parse(
            [
                "train",
                "--model",
                "11",
                "--records",
                "300",
                "--epochs",
                "10",
                "--mount",
                "USBtmp",
                "--checkpoint",
                ckpt.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        train_model(&args).unwrap();
        let json = std::fs::read_to_string(&ckpt).unwrap();
        let restored = geomancy_nn::spec::Checkpoint::from_json(&json).unwrap();
        let _net = restored.restore();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn models_command_lists_everything() {
        let args = Args::default();
        models(&args).unwrap();
    }

    #[test]
    fn simulate_tiny_run_end_to_end() {
        let args = Args::parse(
            [
                "simulate",
                "--policy",
                "spread",
                "--runs",
                "2",
                "--files",
                "4",
                "--warmup",
                "150",
                "--cadence",
                "1",
                "--seed",
                "3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        simulate(&args).unwrap();
    }

    #[test]
    fn analyze_round_trips_a_generated_trace() {
        use geomancy_sim::bluesky::bluesky_system;
        use geomancy_sim::cluster::FileMeta;
        use geomancy_sim::record::FileId;
        let mut system = bluesky_system(3);
        system
            .add_file(
                FileId(0),
                FileMeta {
                    size: 1_000_000,
                    path: "cli/a.root".into(),
                },
                Mount::Tmp.device_id(),
            )
            .unwrap();
        let records: Vec<_> = (0..20)
            .map(|_| system.read_file(FileId(0), None).unwrap())
            .collect();
        let dir = std::env::temp_dir().join("geomancy_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        geomancy_trace::io::save_csv(&path, &records).unwrap();
        let args = Args::parse(
            ["analyze", "--trace", path.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        analyze(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
