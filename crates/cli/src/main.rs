//! `geomancy` — command-line front end for the Geomancy reproduction.
//!
//! See [`commands::USAGE`] or run `geomancy help`.

mod args;
mod clustercmd;
mod commands;
mod netcmd;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let wants_help = parsed.flag("help").unwrap_or(false);
    let outcome = match parsed.command.as_deref() {
        _ if wants_help => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        Some("simulate") => commands::simulate(&parsed),
        Some("analyze") => commands::analyze(&parsed),
        Some("models") => commands::models(&parsed),
        Some("train") => commands::train_model(&parsed),
        Some("serve") => match parsed.options.get("listen") {
            Some(listen) => netcmd::serve_listen(&parsed, &listen.clone()),
            None => commands::serve(&parsed),
        },
        Some("ingest") => netcmd::ingest(&parsed),
        Some("query") => netcmd::query(&parsed),
        Some("cluster") => clustercmd::cluster(&parsed),
        Some("help") | None => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
