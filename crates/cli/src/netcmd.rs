//! Network-mode subcommands: `serve --listen`, `ingest`, and `query` —
//! the placement service on a real TCP socket, plus the client verbs
//! that talk to it.

use std::error::Error;
use std::sync::Arc;

use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig, NetServer};
use geomancy_serve::{
    AdmissionConfig, MetricsSnapshot, PlacementRequest, PlacementService, RetrainMode, ServeConfig,
    StoreSettings, TrainerConfig,
};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

use crate::args::Args;

/// Cooperative stop flag flipped by SIGINT/SIGTERM.
pub(crate) mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn handle(_sig: i32) {
            STOP.store(true, Ordering::SeqCst);
        }
        // Raw libc signal(2) via the C ABI — no crate dependency. The
        // handler only flips an atomic, which is async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// Parses the cold-store options shared by `serve` and `serve --listen`:
/// `--store-dir DIR` turns on the paged store, with shard WALs
/// checkpointed into it every `--checkpoint-every-ms` (0 = only on
/// demand) and the in-memory hot tail trimmed to `--hot-tail` records.
pub(crate) fn store_settings(args: &Args) -> Result<Option<StoreSettings>, Box<dyn Error>> {
    let Some(dir) = args.options.get("store-dir") else {
        return Ok(None);
    };
    if !args.options.contains_key("wal-dir") {
        return Err("--store-dir requires --wal-dir (the WAL feeds the store)".into());
    }
    let defaults = StoreSettings::default();
    Ok(Some(StoreSettings {
        dir: std::path::PathBuf::from(dir),
        page_size: args.u64_or("page-size-kib", 16)? as usize * 1024,
        cache_pages: args.u64_or("cache-pages", defaults.cache_pages as u64)? as usize,
        checkpoint_every_micros: args.u64_or("checkpoint-every-ms", 1000)? * 1000,
        hot_tail: args.u64_or("hot-tail", defaults.hot_tail as u64)? as usize,
    }))
}

/// Builds the service the listener fronts, from the same options the
/// in-process `serve` load mode uses.
fn build_service(args: &Args) -> Result<Arc<PlacementService>, Box<dyn Error>> {
    let shards = args.u64_or("shards", 4)? as usize;
    let per_shard_pending = match args.options.get("shard-pending") {
        None => Vec::new(),
        // Either one bound applied to every shard, or a full
        // comma-separated list (one bound per shard).
        Some(spec) => {
            let bounds: Vec<u64> = spec
                .split(',')
                .map(|t| t.trim().parse::<u64>())
                .collect::<Result<_, _>>()
                .map_err(|_| format!("--shard-pending expects integers, got {spec:?}"))?;
            match bounds.len() {
                1 => vec![bounds[0]; shards],
                n if n == shards => bounds,
                n => {
                    return Err(
                        format!("--shard-pending names {n} bounds for {shards} shards").into(),
                    )
                }
            }
        }
    };
    let store = store_settings(args)?;
    Ok(Arc::new(PlacementService::start(ServeConfig {
        shards,
        store,
        queue_capacity: args.u64_or("queue-capacity", 1024)? as usize,
        batch_window_micros: args.u64_or("batch-window-us", 100)?,
        max_batch: args.u64_or("max-batch", 256)? as usize,
        wal_dir: args.options.get("wal-dir").map(std::path::PathBuf::from),
        candidates: (0..6).map(DeviceId).collect(),
        drl: DrlConfig {
            train_window: 800,
            epochs: 20,
            smoothing_window: 8,
            seed: args.u64_or("seed", 42)?,
            ..DrlConfig::default()
        },
        retrain_every_records: match args.u64_or("retrain-every", 0)? {
            0 => None,
            n => Some(n),
        },
        trainer: TrainerConfig {
            mode: match args.options.get("retrain-mode") {
                None => RetrainMode::default(),
                Some(spec) => spec.parse().map_err(|e| format!("--retrain-mode: {e}"))?,
            },
            ..TrainerConfig::default()
        },
        reactor_workers: args.u64_or("reactor-workers", 0)? as usize,
        admission: AdmissionConfig {
            max_pending_requests: args
                .options
                .get("max-pending")
                .map(|v| v.parse())
                .transpose()?,
            per_shard_pending,
            ..AdmissionConfig::default()
        },
        node_id: args.u64_or("node-id", 0)?,
        ..ServeConfig::default()
    })))
}

/// `geomancy serve --listen ADDR`: run the placement service behind a
/// TCP listener until SIGTERM/Ctrl-C, then drain and exit 0.
///
/// # Errors
///
/// Returns an error for bad options or a failed bind.
pub fn serve_listen(args: &Args, listen: &str) -> Result<(), Box<dyn Error>> {
    let service = build_service(args)?;
    let server = NetServer::start(listen, Arc::clone(&service), NetConfig::default())?;
    sig::install();
    println!(
        "geomancy-serve listening on {} ({} shards, {} reactor workers); SIGTERM or Ctrl-C drains and exits",
        server.local_addr(),
        service.metrics().queue_depth.len(),
        service.reactor_workers(),
    );
    while !sig::stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("draining: closing listener, flushing in-flight replies…");
    server.shutdown();
    let service =
        Arc::try_unwrap(service).map_err(|_| "connections still hold the service after drain")?;
    let snapshot = service.metrics();
    service.shutdown();
    println!(
        "drained cleanly: {} decisions served, {} records ingested, {} shed",
        snapshot.decisions, snapshot.ingested_records, snapshot.queries_shed
    );
    Ok(())
}

/// The synthetic biased telemetry the client verbs replay: device 0 is
/// slow (400 ms per access), device 1 fast (100 ms), so a trained model
/// has a real gradient to find.
pub(crate) fn synthetic_record(n: u64, files: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(n % files.max(1)),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// `geomancy ingest --addr HOST:PORT`: ship synthetic telemetry batches
/// to a running server, optionally retraining afterwards.
///
/// # Errors
///
/// Returns an error for bad options or transport failures.
pub fn ingest(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.str_required("addr")?;
    let records = args.u64_or("records", 300)?;
    let files = args.u64_or("files", 4)?;
    let batch = args.u64_or("batch", 32)?.max(1);
    let client = Client::connect(addr.as_str(), ClientConfig::default())
        .map_err(|e| format!("connect {addr}: {e}"))?;

    let mut sent = 0u64;
    let mut batches = 0u64;
    while sent < records {
        let n = batch.min(records - sent);
        let chunk: Vec<AccessRecord> = (sent..sent + n)
            .map(|i| synthetic_record(i, files))
            .collect();
        client
            .ingest(sent * 1_000_000, &chunk)
            .map_err(|e| format!("ingest batch {batches}: {e}"))?;
        sent += n;
        batches += 1;
    }
    println!("ingested {sent} records in {batches} batches to {addr}");
    if args.flag("retrain")? {
        let epoch = client.retrain().map_err(|e| format!("retrain: {e}"))?;
        println!("retrained: model epoch {epoch} published");
    }
    Ok(())
}

/// `geomancy query --addr HOST:PORT`: ask a running server where the
/// next accesses should land and print each decision.
///
/// # Errors
///
/// Returns an error for bad options or transport failures.
pub fn query(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.str_required("addr")?;
    let count = args.u64_or("count", 8)?.max(1);
    let files = args.u64_or("files", 4)?;
    let bytes = args.u64_or("bytes", 1_000_000)?;
    let client = Client::connect(addr.as_str(), ClientConfig::default())
        .map_err(|e| format!("connect {addr}: {e}"))?;

    if args.flag("json")? {
        if !args.flag("metrics")? {
            return Err("--json requires --metrics".into());
        }
        // Machine-readable mode: emit the metrics object alone, with
        // no synthetic queries and no prose around it.
        let m = client.metrics().map_err(|e| format!("metrics: {e}"))?;
        println!("{}", metrics_json(&m));
        return Ok(());
    }

    let health = client.health().map_err(|e| format!("health: {e}"))?;
    println!(
        "server at {addr}: epoch {}, {} shards{}",
        health.published_epoch,
        health.shards,
        if health.draining { ", draining" } else { "" }
    );
    let requests: Vec<PlacementRequest> = (0..count)
        .map(|i| PlacementRequest {
            fid: FileId(i % files.max(1)),
            read_bytes: bytes,
            write_bytes: 0,
        })
        .collect();
    let decisions = client
        .query_many(&requests)
        .map_err(|e| format!("query: {e}"))?;
    for d in &decisions {
        println!(
            "  fid {} → dev{} ({:.2} MB/s predicted, epoch {}, fused {}/{})",
            d.fid.0,
            d.best.0,
            d.predicted_tp / 1e6,
            d.model_epoch,
            d.batch_requests,
            d.unique_rows,
        );
    }
    if args.flag("metrics")? {
        let m = client.metrics().map_err(|e| format!("metrics: {e}"))?;
        println!(
            "server metrics (node {}): {} decisions, offered/admitted/shed {}/{}/{}, shard sheds {:?}",
            m.node_id, m.decisions, m.queries_offered, m.queries_admitted, m.queries_shed, m.shard_shed
        );
        println!(
            "transport: {} live connections, {} live writer actors",
            m.net_connections_live, m.net_writers_live
        );
        println!("server kernel backend: {}", m.kernel_backend);
        if m.store_pages > 0 || m.checkpoints > 0 {
            println!(
                "cold store: {} pages ({} bytes), {} checkpoints (last absorb {} µs), {} records awaiting checkpoint",
                m.store_pages,
                m.store_cold_bytes,
                m.checkpoints,
                m.last_checkpoint_micros,
                m.wal_pending_records,
            );
        }
        if m.retrains > 0 {
            println!(
                "trainer: {} retrains ({} warm starts, {} full), {} snapshot records moved, {} µs training",
                m.retrains, m.warm_starts, m.full_retrains, m.retrain_records, m.retrain_micros,
            );
        }
    }
    Ok(())
}

/// Renders a metrics snapshot as one flat JSON object, by hand — the
/// tree carries no serde, and the shape is simple enough (u64s, u64
/// arrays, one short string) that assembling the text directly is the
/// honest implementation.
fn metrics_json(m: &MetricsSnapshot) -> String {
    fn arr(values: impl Iterator<Item = u64>) -> String {
        let mut out = String::from("[");
        for (i, v) in values.enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
        out
    }
    // The only string field is the kernel backend name, which is a
    // fixed identifier — escape the JSON specials anyway so a future
    // backend name cannot produce invalid output.
    let backend: String = m
        .kernel_backend
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let mut s = String::with_capacity(1024);
    s.push('{');
    let field = |s: &mut String, name: &str, value: String| {
        if s.len() > 1 {
            s.push(',');
        }
        s.push('"');
        s.push_str(name);
        s.push_str("\":");
        s.push_str(&value);
    };
    field(&mut s, "node_id", m.node_id.to_string());
    field(&mut s, "ingested_records", m.ingested_records.to_string());
    field(&mut s, "ingest_batches", m.ingest_batches.to_string());
    field(&mut s, "dropped_batches", m.dropped_batches.to_string());
    field(&mut s, "dropped_records", m.dropped_records.to_string());
    field(
        &mut s,
        "queue_depth",
        arr(m.queue_depth.iter().map(|&d| d as u64)),
    );
    field(&mut s, "decisions", m.decisions.to_string());
    field(&mut s, "batched_decisions", m.batched_decisions.to_string());
    field(&mut s, "solo_decisions", m.solo_decisions.to_string());
    field(
        &mut s,
        "coalesced_decisions",
        m.coalesced_decisions.to_string(),
    );
    field(&mut s, "fused_rows", m.fused_rows.to_string());
    field(&mut s, "model_swaps", m.model_swaps.to_string());
    field(&mut s, "retrains", m.retrains.to_string());
    field(&mut s, "queries_offered", m.queries_offered.to_string());
    field(&mut s, "queries_admitted", m.queries_admitted.to_string());
    field(&mut s, "queries_shed", m.queries_shed.to_string());
    field(&mut s, "pending_requests", m.pending_requests.to_string());
    field(&mut s, "pending_peak", m.pending_peak.to_string());
    field(
        &mut s,
        "pending_per_shard",
        arr(m.pending_per_shard.iter().copied()),
    );
    field(&mut s, "shard_shed", arr(m.shard_shed.iter().copied()));
    field(&mut s, "latency_ewma_us", m.latency_ewma_us.to_string());
    field(&mut s, "p99_latency_us", m.p99_latency_us().to_string());
    field(&mut s, "latency_us", arr(m.latency_us.iter().copied()));
    field(&mut s, "engine_queue", (m.engine_queue as u64).to_string());
    field(
        &mut s,
        "net_connections_live",
        m.net_connections_live.to_string(),
    );
    field(&mut s, "net_writers_live", m.net_writers_live.to_string());
    field(&mut s, "kernel_backend", format!("\"{backend}\""));
    field(&mut s, "store_pages", m.store_pages.to_string());
    field(&mut s, "store_cold_bytes", m.store_cold_bytes.to_string());
    field(
        &mut s,
        "wal_pending_records",
        m.wal_pending_records.to_string(),
    );
    field(&mut s, "checkpoints", m.checkpoints.to_string());
    field(
        &mut s,
        "last_checkpoint_micros",
        m.last_checkpoint_micros.to_string(),
    );
    field(&mut s, "retrain_records", m.retrain_records.to_string());
    field(&mut s, "retrain_micros", m.retrain_micros.to_string());
    field(&mut s, "warm_starts", m.warm_starts.to_string());
    field(&mut s, "full_retrains", m.full_retrains.to_string());
    s.push('}');
    s
}
