//! End-to-end tests of the `geomancy` binary via the compiled executable.

use std::process::Command;

fn geomancy() -> Command {
    Command::new(env!("CARGO_BIN_EXE_geomancy"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = geomancy().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
}

#[test]
fn no_args_prints_usage() {
    let out = geomancy().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = geomancy().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn unknown_policy_reports_error() {
    let out = geomancy()
        .args(["simulate", "--policy", "nope", "--runs", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown policy"));
}

#[test]
fn models_lists_all_23() {
    let out = geomancy().arg("models").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Model 1 "));
    assert!(stdout.contains("Model 23"));
    assert!(stdout.contains("LSTM"));
}

#[test]
fn simulate_trace_report_analyze_pipeline() {
    let dir = std::env::temp_dir().join("geomancy_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("replay.json");

    // Simulate a tiny run, saving the ReplayDB.
    let out = geomancy()
        .args([
            "simulate",
            "--policy",
            "spread",
            "--runs",
            "2",
            "--files",
            "4",
            "--warmup",
            "150",
            "--seed",
            "11",
            "--report",
            "--save-db",
            db_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Spread static"));
    assert!(stdout.contains("Performance report"));
    assert!(db_path.exists());

    // Convert the snapshot to a record CSV and analyze it.
    let db = geomancy_replaydb::load(&db_path).unwrap();
    let records: Vec<_> = db.records().map(|s| s.record).collect();
    let csv_path = dir.join("trace.csv");
    geomancy_trace::io::save_csv(&csv_path, &records).unwrap();
    let out = geomancy()
        .args(["analyze", "--trace", csv_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("per-device throughput"));
    assert!(stdout.contains("feature correlation"));

    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = geomancy()
        .args(["analyze", "--trace", "/definitely/not/here.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
