//! Replica catch-up: the protocol logic behind the `CatchUpReq` /
//! `CatchUpChunk` / `CatchUpDone` frames (wire protocol v6).
//!
//! A round is either **pure-seq** or **pure-cold**, never mixed:
//!
//! - *Seq mode* runs when the follower's floor is in the primary's
//!   sequence space (its recorded origin for the shard **is** this
//!   primary) and the primary's [`SegmentRetainer`] still holds every
//!   sealed segment in `(follower floor, primary floor]`. Chunks are
//!   whole retained segments, applied through the follower's existing
//!   exactly-once absorb path.
//! - *Cold mode* runs otherwise: a timestamp-cursor export over the
//!   primary's **service store ∪ replica store** (an emergency primary's
//!   pre-promotion history lives in its replica store). Every chunk ends
//!   at a timestamp boundary — a run of equal timestamps is never split
//!   — so the follower's cursor (`max stored ts` recomputed from its own
//!   stores) makes a crash-interrupted round resumable with no persisted
//!   cursor at all. The first chunk of a round includes ties at the
//!   cursor; the follower drops the ones it already holds.
//!
//! Floors are only meaningful relative to one origin's sequence space,
//! so a follower records the origin node per shard in an `origin.json`
//! sidecar next to its replica store, written *after* the floor commit
//! (a crash between the two costs one conservative extra cold round).
//! Incoming ships are gated on that origin and applied strictly in
//! order; both together keep the replica store hole-free below its
//! cursor, which is what makes cursor exports complete.

use std::collections::HashMap;
use std::path::Path;

use geomancy_net::wire::{CatchUpChunk, CatchUpData, CatchUpReq};
use geomancy_replaydb::StoredRecord;
use geomancy_serve::SegmentRetainer;
use geomancy_sim::record::FileId;
use geomancy_store::{FaultPoint, PagedStore, StoreError};

use crate::map::shard_for;

/// Name of the per-shard origin sidecar inside a replica directory.
pub const ORIGIN_FILE: &str = "origin.json";

/// Loads the shard→origin-node sidecar; missing or unparsable entries
/// are simply absent (the follower falls back to a cold round, which is
/// always safe).
#[must_use]
pub fn load_origins(dir: &Path) -> HashMap<u32, u64> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(dir.join(ORIGIN_FILE)) else {
        return out;
    };
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if let (Some(shard), Some(node), None) = (it.next(), it.next(), it.next()) {
            if let (Ok(shard), Ok(node)) = (shard.parse(), node.parse()) {
                out.insert(shard, node);
            }
        }
    }
    out
}

/// Atomically (tmp + rename) persists the shard→origin sidecar.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn save_origins(dir: &Path, origins: &HashMap<u32, u64>) -> std::io::Result<()> {
    let mut entries: Vec<(u32, u64)> = origins.iter().map(|(&s, &n)| (s, n)).collect();
    entries.sort_unstable();
    let mut text = String::new();
    for (shard, node) in entries {
        text.push_str(&format!("{shard} {node}\n"));
    }
    let tmp = dir.join("origin.json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join(ORIGIN_FILE))?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// The shard-membership predicate a cold export filters by: the same
/// splitmix64 routing every other layer uses.
pub fn cold_pred(shards: u32, shard: u32) -> impl Fn(&StoredRecord) -> bool {
    move |s: &StoredRecord| shard_for(s.record.fid, shards) == shard
}

/// The follower's cold cursor for `shard`: the newest matching timestamp
/// across **both** of its stores (service + replica), or 0 when it holds
/// nothing. The union matters for a rejoined ex-primary, whose own
/// service store already covers its pre-crash reign — pulling from the
/// union cursor fetches only the interregnum, never re-downloading (and
/// thus never duplicating) its own history.
///
/// # Errors
///
/// Returns an I/O or corruption error from page reads.
pub fn shard_cursor(
    replica: &PagedStore,
    service: Option<&PagedStore>,
    shards: u32,
    shard: u32,
) -> Result<u64, StoreError> {
    let pred = cold_pred(shards, shard);
    let a = replica.max_timestamp_matching(&pred)?;
    let b = match service {
        Some(s) => s.max_timestamp_matching(&pred)?,
        None => None,
    };
    Ok(a.max(b).unwrap_or(0))
}

/// Builds the primary-side reply to one [`CatchUpReq`]. The caller must
/// hold a read guard on the service store for the whole call so the
/// exported records and the reported `floor_seq` come from one snapshot
/// — a floor newer than the export would let a later ship replay a
/// segment whose records the export already carried.
///
/// # Errors
///
/// Returns an I/O or corruption error from page reads.
pub fn build_chunk(
    req: &CatchUpReq,
    service: Option<&PagedStore>,
    replica: Option<&PagedStore>,
    retainer: Option<&SegmentRetainer>,
    shards: u32,
) -> Result<CatchUpChunk, StoreError> {
    let shard = req.shard;
    let floor = service
        .and_then(|s| s.absorbed().get(shard as usize).copied())
        .unwrap_or(0);
    // Seq mode: the follower's floor lives in our sequence space and the
    // retainer still holds the whole gap.
    if req.after_seq > 0 {
        if req.after_seq >= floor {
            return Ok(CatchUpChunk {
                shard,
                done: true,
                floor_seq: floor,
                next_ts: req.after_ts,
                data: CatchUpData::Cold(Vec::new()),
            });
        }
        if let Some(retainer) = retainer {
            if retainer.holds_range(shard, req.after_seq, floor) {
                if let Some((seq, bytes)) = retainer.next_after(shard, req.after_seq) {
                    return Ok(CatchUpChunk {
                        shard,
                        done: seq >= floor,
                        floor_seq: floor,
                        next_ts: req.after_ts,
                        data: CatchUpData::Segment {
                            seq,
                            bytes: bytes.as_ref().clone(),
                        },
                    });
                }
            }
        }
        // Retention hole: fall through to a cold round on the follower's
        // timestamp cursor.
    }
    let pred = cold_pred(shards, shard);
    let limit = req.max_records.max(1) as usize;
    let mut parts: Vec<(Vec<StoredRecord>, bool)> = Vec::new();
    if let Some(store) = service {
        parts.push(store.export_matching(req.after_ts, req.include_ties, limit, &pred)?);
    }
    if let Some(store) = replica {
        parts.push(store.export_matching(req.after_ts, req.include_ties, limit, &pred)?);
    }
    // Merge the per-store chunks. Each part is complete up to its own
    // boundary, so the merged chunk is only complete up to the *lowest*
    // boundary among parts that have more — truncate there.
    let boundary = parts
        .iter()
        .filter(|(records, more)| *more && !records.is_empty())
        .map(|(records, _)| records.last().expect("nonempty").timestamp_micros)
        .min();
    let mut merged: Vec<StoredRecord> = parts.into_iter().flat_map(|(r, _)| r).collect();
    merged.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
    if let Some(b) = boundary {
        merged.retain(|s| s.timestamp_micros <= b);
    }
    let done = boundary.is_none();
    let next_ts = merged.last().map_or(req.after_ts, |s| s.timestamp_micros);
    Ok(CatchUpChunk {
        shard,
        done,
        floor_seq: floor,
        next_ts,
        data: CatchUpData::Cold(
            merged
                .into_iter()
                .map(|s| (s.timestamp_micros, s.record))
                .collect(),
        ),
    })
}

/// Applies one cold chunk to the follower's replica store: drops records
/// it already holds at the chunk's lowest timestamp (the tie run the
/// first request re-fetched on purpose), imports the rest, and — on a
/// `done` chunk — commits `floor` as the shard's absorb floor in the
/// same atomic manifest commit. Returns how many records were imported.
///
/// `fault` kills the import at the named boundary for crash-injection
/// tests; a pre-manifest kill rolls the chunk back on reopen and the
/// recomputed cursor re-drives it.
///
/// # Errors
///
/// Returns an I/O or corruption error.
pub fn apply_cold_records(
    replica: &mut PagedStore,
    service: Option<&PagedStore>,
    shards: u32,
    shard: u32,
    records: &[(u64, geomancy_sim::record::AccessRecord)],
    commit_floor: Option<u64>,
    fault: Option<FaultPoint>,
) -> Result<u64, StoreError> {
    let pred = cold_pred(shards, shard);
    let mut fresh: Vec<StoredRecord> = Vec::new();
    if let Some(&(min_ts, _)) = records.first() {
        // Overlap with what we already hold is only possible at the
        // chunk's lowest timestamp (our cursor): collect our own tie run
        // there, from both stores, and drop re-sent copies.
        let mut own: std::collections::HashSet<(u64, u64, FileId)> = std::collections::HashSet::new();
        let tie_pred = |s: &StoredRecord| s.timestamp_micros == min_ts && pred(s);
        for (ts, r, fid) in replica
            .export_matching(min_ts, true, 0, &tie_pred)?
            .0
            .iter()
            .map(|s| (s.timestamp_micros, s.record.access_number, s.record.fid))
        {
            own.insert((ts, r, fid));
        }
        if let Some(store) = service {
            for (ts, r, fid) in store
                .export_matching(min_ts, true, 0, &tie_pred)?
                .0
                .iter()
                .map(|s| (s.timestamp_micros, s.record.access_number, s.record.fid))
            {
                own.insert((ts, r, fid));
            }
        }
        fresh = records
            .iter()
            .filter(|(ts, r)| !own.contains(&(*ts, r.access_number, r.fid)))
            .map(|&(ts, record)| StoredRecord {
                timestamp_micros: ts,
                record,
            })
            .collect();
    }
    let absorbed = commit_floor.map(|floor| {
        let mut floors = replica.absorbed().to_vec();
        if floors.len() < shards as usize {
            floors.resize(shards as usize, 0);
        }
        floors[shard as usize] = floor;
        floors
    });
    if fresh.is_empty() && absorbed.is_none() {
        return Ok(0);
    }
    let applied = fresh.len() as u64;
    replica.import_records(&fresh, absorbed, fault)?;
    Ok(applied)
}

/// Applies one seq-mode segment chunk: write the bytes under a temp
/// name, rename into the replica WAL, fsync, absorb — byte-for-byte the
/// ship path, so re-delivery is exactly-once through the same floors.
/// Returns how many records the absorb replayed.
///
/// # Errors
///
/// Returns an I/O error, or a store error from the absorb.
pub fn apply_segment_chunk(
    replica: &mut PagedStore,
    wal_dir: &Path,
    shards: u32,
    shard: u32,
    seq: u64,
    bytes: &[u8],
    fault: Option<FaultPoint>,
) -> Result<u64, StoreError> {
    let dest = geomancy_replaydb::segment_path(wal_dir, shard as usize, seq);
    let tmp = wal_dir.join(format!("catchup-{shard}-{seq}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, &dest)?;
    std::fs::File::open(wal_dir)?.sync_all()?;
    let report = replica.absorb_segments(wal_dir, shards as usize, fault)?;
    Ok(report.records_absorbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{AccessRecord, DeviceId};
    use geomancy_store::StoreConfig;

    fn stored(ts: u64, n: u64, fid: u64) -> StoredRecord {
        StoredRecord {
            timestamp_micros: ts,
            record: AccessRecord {
                access_number: n,
                fid: FileId(fid),
                fsid: DeviceId(0),
                rb: 1,
                wb: 0,
                ots: ts,
                otms: 0,
                cts: ts,
                ctms: 0,
            },
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("geomancy_catchup").join(tag);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path) -> PagedStore {
        PagedStore::open(
            dir,
            StoreConfig {
                page_size: 4096,
                cache_pages: 4,
            },
        )
        .unwrap()
        .0
    }

    #[test]
    fn origins_round_trip_and_tolerate_absence() {
        let dir = tmpdir("origins");
        assert!(load_origins(&dir).is_empty());
        let mut origins = HashMap::new();
        origins.insert(0u32, 7u64);
        origins.insert(3u32, 2u64);
        save_origins(&dir, &origins).unwrap();
        assert_eq!(load_origins(&dir), origins);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_round_trip_via_union_export() {
        // Primary state split across service store (its reign) and
        // replica store (pre-promotion history): a follower pulling cold
        // chunks must receive the union, exactly once, in ts order.
        let shards = 1u32;
        let sdir = tmpdir("cold_svc");
        let rdir = tmpdir("cold_rep");
        let fdir = tmpdir("cold_follower");
        let mut service = open(&sdir);
        let mut replica = open(&rdir);
        let mut follower = open(&fdir);
        let old: Vec<StoredRecord> = (0..40).map(|n| stored(n / 2, n, n)).collect();
        let new: Vec<StoredRecord> = (40..100).map(|n| stored(n / 2, n, n)).collect();
        replica.import_records(&old, None, None).unwrap();
        service.import_records(&new, Some(vec![9]), None).unwrap();

        let mut first = true;
        let mut total = 0u64;
        loop {
            let cursor = shard_cursor(&follower, None, shards, 0).unwrap();
            let req = CatchUpReq {
                node_id: 9,
                shard: 0,
                after_seq: 0,
                after_ts: cursor,
                include_ties: first,
                max_records: 7,
            };
            first = false;
            let chunk = build_chunk(&req, Some(&service), Some(&replica), None, shards).unwrap();
            let CatchUpData::Cold(records) = &chunk.data else {
                panic!("cold round must stay cold");
            };
            total += apply_cold_records(
                &mut follower,
                None,
                shards,
                0,
                records,
                chunk.done.then_some(chunk.floor_seq),
                None,
            )
            .unwrap();
            if chunk.done {
                break;
            }
        }
        assert_eq!(total, 100);
        assert_eq!(follower.total_records(), 100);
        assert_eq!(follower.absorbed(), &[9]);
        // Re-running from the new cursor is a no-op round.
        let cursor = shard_cursor(&follower, None, shards, 0).unwrap();
        let req = CatchUpReq {
            node_id: 9,
            shard: 0,
            after_seq: 0,
            after_ts: cursor,
            include_ties: true,
            max_records: 64,
        };
        let chunk = build_chunk(&req, Some(&service), Some(&replica), None, shards).unwrap();
        assert!(chunk.done);
        let CatchUpData::Cold(records) = &chunk.data else {
            panic!()
        };
        let applied =
            apply_cold_records(&mut follower, None, shards, 0, records, None, None).unwrap();
        assert_eq!(applied, 0, "tie dedup must drop re-sent records");
        assert_eq!(follower.total_records(), 100);
        for d in [&sdir, &rdir, &fdir] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn seq_mode_serves_retained_segments_then_reports_done() {
        let shards = 1u32;
        let sdir = tmpdir("seq_svc");
        let mut service = open(&sdir);
        // Primary absorbed segments up to floor 3; retainer holds 2..=3.
        service
            .import_records(&[stored(1, 1, 1)], Some(vec![3]), None)
            .unwrap();
        let retainer = SegmentRetainer::new(1 << 20);
        retainer.insert(0, 2, vec![b'x'; 8]);
        retainer.insert(0, 3, vec![b'y'; 8]);
        let req = CatchUpReq {
            node_id: 9,
            shard: 0,
            after_seq: 1,
            after_ts: 1,
            include_ties: false,
            max_records: 64,
        };
        let chunk = build_chunk(&req, Some(&service), None, Some(&retainer), shards).unwrap();
        match chunk.data {
            CatchUpData::Segment { seq, ref bytes } => {
                assert_eq!(seq, 2);
                assert_eq!(bytes[0], b'x');
                assert!(!chunk.done);
            }
            CatchUpData::Cold(_) => panic!("retained range must serve seq mode"),
        }
        // Next request from floor 2 → segment 3, which is the floor.
        let chunk = build_chunk(
            &CatchUpReq {
                after_seq: 2,
                ..req.clone()
            },
            Some(&service),
            None,
            Some(&retainer),
            shards,
        )
        .unwrap();
        assert!(chunk.done);
        assert!(matches!(chunk.data, CatchUpData::Segment { seq: 3, .. }));
        // At the floor already: immediate done, no data.
        let chunk = build_chunk(
            &CatchUpReq {
                after_seq: 3,
                ..req.clone()
            },
            Some(&service),
            None,
            Some(&retainer),
            shards,
        )
        .unwrap();
        assert!(chunk.done);
        assert!(matches!(chunk.data, CatchUpData::Cold(ref v) if v.is_empty()));
        // Evicted range → falls back to a cold round.
        let starved = SegmentRetainer::new(4);
        let chunk = build_chunk(
            &CatchUpReq {
                after_seq: 1,
                ..req
            },
            Some(&service),
            None,
            Some(&starved),
            shards,
        )
        .unwrap();
        assert!(matches!(chunk.data, CatchUpData::Cold(_)));
        std::fs::remove_dir_all(&sdir).ok();
    }
}
