//! The cluster-aware client: routes each request by file hash through
//! the [`ClusterMap`] to the owning node, fails over to replicas, and
//! adopts fresher maps from `WrongEpoch` rejections.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use geomancy_net::{Client, ClientConfig, ClusterMap, NetError};
use geomancy_serve::{Decision, PlacementRequest};
use geomancy_sim::record::AccessRecord;

use crate::map::shard_for;

/// Everything that can go wrong routing a request through the cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// No candidate node (primary or replica) accepted the request.
    /// Carries the last transport error seen, if any.
    Exhausted(Option<NetError>),
    /// The map kept moving under us past the re-route bound — a signal
    /// of a flapping or split cluster, not of one slow node.
    TooManyRounds,
    /// The map names a node id with no address, or has no assignment
    /// for a shard — a malformed map, not a transport fault.
    BadMap(&'static str),
    /// A non-failover error from the node that owned the request.
    Net(NetError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Exhausted(Some(e)) => {
                write!(f, "no candidate node accepted the request (last: {e})")
            }
            ClusterError::Exhausted(None) => f.write_str("no candidate node accepted the request"),
            ClusterError::TooManyRounds => {
                f.write_str("cluster map kept changing; gave up re-routing")
            }
            ClusterError::BadMap(what) => write!(f, "malformed cluster map: {what}"),
            ClusterError::Net(e) => write!(f, "cluster request failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A client that speaks to the whole cluster instead of one node.
///
/// Holds the latest [`ClusterMap`] it has seen plus one lazily-opened
/// pooled [`Client`] per node. Each batch is split by
/// [`shard_for`](crate::map::shard_for) and sent to each shard's
/// primary; on a connect failure, a disconnect, or a status that says
/// "this node cannot take it" ([`geomancy_net::WireStatus::retry_elsewhere`]
/// — `Draining`, `ServiceDown`, `WrongEpoch`), the request fails over
/// to the shard's replicas in order. A `WrongEpoch` reply carries the
/// server's newer map, which the client adopts before re-routing; at
/// most [`MAX_ROUTE_ROUNDS`] adoption rounds guard against a flapping
/// map.
pub struct ClusterClient {
    map: RwLock<ClusterMap>,
    conns: Mutex<HashMap<u64, Arc<Client>>>,
    config: ClientConfig,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("epoch", &self.map.read().expect("map lock").epoch)
            .finish_non_exhaustive()
    }
}

/// Bound on map-adoption re-route rounds per logical request.
pub const MAX_ROUTE_ROUNDS: usize = 4;

impl ClusterClient {
    /// Builds a client from a map it already trusts (e.g. the
    /// deterministic bootstrap map) without touching the network.
    #[must_use]
    pub fn from_map(map: ClusterMap, config: ClientConfig) -> ClusterClient {
        ClusterClient {
            map: RwLock::new(map),
            conns: Mutex::new(HashMap::new()),
            config,
        }
    }

    /// Connects by asking each seed address in turn for its
    /// [`ClusterMap`] (`ClusterInfoReq`), adopting the first answer.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Exhausted`] when no seed answers.
    pub fn connect(seeds: &[String], config: ClientConfig) -> Result<ClusterClient, ClusterError> {
        let mut last = None;
        for seed in seeds {
            match Client::connect(seed.as_str(), config.clone()).and_then(|c| c.cluster_info()) {
                Ok(map) => return Ok(ClusterClient::from_map(map, config)),
                Err(e) => last = Some(e),
            }
        }
        Err(ClusterError::Exhausted(last))
    }

    /// The latest map this client has adopted.
    #[must_use]
    pub fn map(&self) -> ClusterMap {
        self.map.read().expect("map lock").clone()
    }

    /// Re-fetches the map from any reachable node already in the map,
    /// adopting it if its epoch is newer.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Exhausted`] when no node answers.
    pub fn refresh(&self) -> Result<ClusterMap, ClusterError> {
        let nodes: Vec<u64> = {
            let map = self.map.read().expect("map lock");
            map.nodes.iter().map(|n| n.node_id).collect()
        };
        let mut last = None;
        for node in nodes {
            match self.with_node(node, Client::cluster_info) {
                Ok(map) => {
                    self.adopt(&map);
                    return Ok(map);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClusterError::Exhausted(last))
    }

    /// Adopts `map` if it is strictly newer than the one held.
    /// Returns whether it was adopted.
    pub fn adopt(&self, map: &ClusterMap) -> bool {
        let mut held = self.map.write().expect("map lock");
        if map.epoch > held.epoch {
            *held = map.clone();
            true
        } else {
            false
        }
    }

    /// Ships a telemetry batch, splitting it per owning node and
    /// failing over per the routing policy in the type docs.
    ///
    /// # Errors
    ///
    /// Typed [`ClusterError`]s once failover and re-routing are
    /// exhausted.
    pub fn ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), ClusterError> {
        for round in 0.. {
            if round == MAX_ROUTE_ROUNDS {
                return Err(ClusterError::TooManyRounds);
            }
            // Split by shard under the current map (failover candidates
            // are per shard); a re-route round re-splits everything
            // under the adopted map.
            let map = self.map();
            let mut by_shard: HashMap<u32, Vec<AccessRecord>> = HashMap::new();
            for r in records {
                by_shard
                    .entry(shard_for(r.fid, map.shards))
                    .or_default()
                    .push(*r);
            }
            // Sub-batches go out sequentially per logical call: at the
            // sub-millisecond round trips this client sees, a
            // thread-per-shard fan-out costs more in spawn overhead
            // than it saves (measured in serve_bench) — callers wanting
            // node-level parallelism run concurrent `ingest` calls,
            // which pipeline over the shared per-node connections.
            let mut stale = false;
            for (shard, chunk) in by_shard {
                match self.send_failover(&map, shard, |c| c.ingest(timestamp_micros, &chunk)) {
                    Ok(()) => {}
                    Err(ClusterError::Net(NetError::WrongEpoch(new_map))) => {
                        self.adopt(&new_map);
                        stale = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !stale {
                return Ok(());
            }
        }
        unreachable!("loop returns or errors within MAX_ROUTE_ROUNDS")
    }

    /// Routes a placement batch, returning decisions in request order.
    ///
    /// # Errors
    ///
    /// Typed [`ClusterError`]s once failover and re-routing are
    /// exhausted.
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, ClusterError> {
        for round in 0.. {
            if round == MAX_ROUTE_ROUNDS {
                return Err(ClusterError::TooManyRounds);
            }
            let map = self.map();
            let mut by_shard: HashMap<u32, (Vec<usize>, Vec<PlacementRequest>)> = HashMap::new();
            for (i, req) in requests.iter().enumerate() {
                let slot = by_shard.entry(shard_for(req.fid, map.shards)).or_default();
                slot.0.push(i);
                slot.1.push(*req);
            }
            let mut gathered: Vec<Option<Decision>> = vec![None; requests.len()];
            let mut stale = false;
            for (shard, (indices, chunk)) in by_shard {
                match self.send_failover(&map, shard, |c| c.query_many(&chunk)) {
                    Ok(decisions) => {
                        if decisions.len() != indices.len() {
                            return Err(ClusterError::Net(NetError::Protocol(
                                geomancy_net::DecodeError::BadPayload(
                                    "wrong decision count from node",
                                ),
                            )));
                        }
                        for (i, d) in indices.into_iter().zip(decisions) {
                            gathered[i] = Some(d);
                        }
                    }
                    Err(ClusterError::Net(NetError::WrongEpoch(new_map))) => {
                        self.adopt(&new_map);
                        stale = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if stale {
                continue;
            }
            return gathered
                .into_iter()
                .collect::<Option<Vec<Decision>>>()
                .ok_or(ClusterError::BadMap("request left unrouted"));
        }
        unreachable!("loop returns or errors within MAX_ROUTE_ROUNDS")
    }

    /// Tries `op` against the shard's primary, then each replica in
    /// order. Failover triggers on connect failure, disconnect,
    /// timeout, or a `retry_elsewhere` status; a `WrongEpoch` carrying
    /// a *newer* map aborts the candidate walk so the caller can
    /// re-route, while a same-epoch `WrongEpoch` (a replica that
    /// correctly refuses the shard) just advances to the next
    /// candidate.
    fn send_failover<T>(
        &self,
        map: &ClusterMap,
        shard: u32,
        mut op: impl FnMut(&Client) -> Result<T, NetError>,
    ) -> Result<T, ClusterError> {
        let primary = map
            .primary_of(shard)
            .ok_or(ClusterError::BadMap("shard with no assignment"))?;
        let mut candidates = vec![primary];
        candidates.extend_from_slice(map.replicas_of(shard));
        let mut last = None;
        for node in candidates {
            match self.with_node(node, &mut op) {
                Ok(v) => return Ok(v),
                Err(NetError::WrongEpoch(new_map)) => {
                    if new_map.epoch > map.epoch {
                        return Err(ClusterError::Net(NetError::WrongEpoch(new_map)));
                    }
                    // Same-epoch refusal: this candidate simply does not
                    // own the shard (e.g. an unpromoted replica). Try
                    // the next one.
                    last = Some(NetError::WrongEpoch(new_map));
                }
                Err(NetError::Server(s)) if s.retry_elsewhere() => {
                    last = Some(NetError::Server(s));
                }
                Err(e @ (NetError::Io(_) | NetError::Disconnected | NetError::Timeout)) => {
                    // The connection is suspect; drop it so the next use
                    // of this node redials.
                    self.conns.lock().expect("conn lock").remove(&node);
                    last = Some(e);
                }
                Err(e) => return Err(ClusterError::Net(e)),
            }
        }
        Err(ClusterError::Exhausted(last))
    }

    /// Runs `op` with the pooled connection for `node`, dialing it
    /// first if needed.
    fn with_node<T>(
        &self,
        node: u64,
        op: impl FnOnce(&Client) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let addr = {
            let map = self.map.read().expect("map lock");
            map.addr_of(node).map(str::to_string)
        };
        let Some(addr) = addr else {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("node {node} has no address in the map"),
            )));
        };
        let client = {
            let mut conns = self.conns.lock().expect("conn lock");
            match conns.get(&node) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(Client::connect(addr.as_str(), self.config.clone())?);
                    conns.insert(node, Arc::clone(&c));
                    c
                }
            }
        };
        // The pool-map lock is released before the call: requests
        // pipeline over the shared per-node connection, they do not
        // serialize on the map.
        op(&client)
    }
}
