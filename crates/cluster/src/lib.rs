//! # geomancy-cluster
//!
//! The replicated multi-node placement service: N
//! [`geomancy_serve::PlacementService`] processes, each behind a
//! cluster-aware [`geomancy_net::NetServer`], coordinated by a
//! versioned [`geomancy_net::ClusterMap`] instead of any external
//! coordinator. The paper runs Geomancy as a single daemon sampling one
//! storage system (§V); this layer is what it takes to keep placement
//! decisions flowing when that daemon's host dies.
//!
//! Four pieces:
//!
//! - [`map`]: deterministic epoch-1 map construction from the shared
//!   peer list, file→shard routing ([`map::shard_for`], bit-for-bit the
//!   service's own [`geomancy_serve::shard_of`]), and the promotion
//!   rewrite a follower applies when a primary goes silent.
//! - [`node::ClusterNode`]: one node — the placement service plus the
//!   primary-side WAL shipper (sealed segments stream to replicas as
//!   `ShipSegment` frames), the follower-side replica store (applied
//!   via the store's exactly-once absorb), and the failover controller
//!   (an actor on the service's own reactor watching heartbeat
//!   sightings).
//! - [`client::ClusterClient`]: routes each request to the owning
//!   node, fails over to replicas on `Draining`/`ServiceDown`/connect
//!   failure, and adopts fresher maps from `WrongEpoch` rejections.
//! - The wire vocabulary itself (`ClusterInfo`, `ShipSegment`,
//!   `Heartbeat`, the `WrongEpoch` status) lives in
//!   [`geomancy_net::wire`] as protocol-v5 frames.
//!
//! Consistency model: a record is *cluster-durable* once the segment
//! holding it has been acknowledged by every replica of its shard
//! ([`node::ClusterNode::shipped`]). Failover promotes the first
//! replica in ring order after a heartbeat-deadline silence; the epoch
//! bump propagates to peers through heartbeat acks and to clients
//! through `WrongEpoch` replies carrying the new map.

#![warn(missing_docs)]

pub mod client;
pub mod map;
pub mod node;

pub use client::{ClusterClient, ClusterError};
pub use map::{bootstrap_map, promote, shard_for};
pub use node::{ClusterNode, ClusterNodeConfig, ClusterNodeError, ReplicaStats, ShippedSeg};

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners and immediately releasing them — the standard way a test
/// or bench pins down a peer list before any node starts. The ports
/// can in principle be re-grabbed between reservation and use; in
/// practice the window is too short to matter for tests.
///
/// # Panics
///
/// Panics if the OS refuses an ephemeral loopback bind.
#[must_use]
pub fn reserve_loopback_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("bound addr").to_string())
        .collect()
}
