//! # geomancy-cluster
//!
//! The replicated multi-node placement service: N
//! [`geomancy_serve::PlacementService`] processes, each behind a
//! cluster-aware [`geomancy_net::NetServer`], coordinated by a
//! versioned [`geomancy_net::ClusterMap`] instead of any external
//! coordinator. The paper runs Geomancy as a single daemon sampling one
//! storage system (§V); this layer is what it takes to keep placement
//! decisions flowing when that daemon's host dies.
//!
//! Six pieces:
//!
//! - [`map`]: deterministic epoch-1 map construction from the shared
//!   peer list, file→shard routing ([`map::shard_for`], bit-for-bit the
//!   service's own [`geomancy_serve::shard_of`]), and the pure map
//!   transitions — the promotion rewrite a follower applies when a
//!   primary goes silent, and the [`map::demote`]/[`map::join`]/
//!   [`map::leave`] rewrites membership repair uses to hand shards
//!   back.
//! - [`node::ClusterNode`]: one node — the placement service plus the
//!   primary-side WAL shipper (sealed segments stream to replicas as
//!   `ShipSegment` frames), the follower-side replica store (applied
//!   via the store's exactly-once absorb), and the failover controller
//!   (an actor on the service's own reactor watching heartbeat
//!   sightings).
//! - [`catchup`]: bounded replica catch-up — a follower whose
//!   per-shard floor trails the primary pulls the gap as retained
//!   sealed segments (seq mode) or a timestamp-cursor export (cold
//!   mode), committing floors exactly-once on the final chunk.
//! - [`repair`]: the demotion state machine the sitting emergency
//!   primary walks to hand a shard back to a caught-up preferred owner
//!   (checkpoint barrier → floor wait → epoch-bumping demote).
//! - [`client::ClusterClient`]: routes each request to the owning
//!   node, fails over to replicas on `Draining`/`ServiceDown`/connect
//!   failure, and adopts fresher maps from `WrongEpoch` rejections.
//! - The wire vocabulary itself (`ClusterInfo`, `ShipSegment`,
//!   `Heartbeat`, the `CatchUp*` family, the `WrongEpoch` status)
//!   lives in [`geomancy_net::wire`] as protocol-v6 frames.
//!
//! Consistency model: a record is *cluster-durable* once the segment
//! holding it has been acknowledged by every replica of its shard
//! ([`node::ClusterNode::shipped`]). Failover promotes the first
//! replica in ring order after a heartbeat-deadline silence; the epoch
//! bump propagates to peers through heartbeat acks and to clients
//! through `WrongEpoch` replies carrying the new map. A recovered node
//! restarted with `rejoin` announces itself over heartbeats, catches up
//! every shard it should host, and the emergency primary demotes back
//! to the preferred assignment once the rejoiner's floors cover a
//! checkpoint barrier — the cluster heals to its original shape without
//! an operator touching the map.

#![warn(missing_docs)]

pub mod catchup;
pub mod client;
pub mod map;
pub mod node;
pub mod repair;

pub use client::{ClusterClient, ClusterError};
pub use map::{bootstrap_map, demote, join, leave, preferred_primary, promote, shard_for};
pub use node::{ClusterNode, ClusterNodeConfig, ClusterNodeError, ReplicaStats, ShippedSeg};
pub use repair::{DemotionStep, RepairState};

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners and immediately releasing them — the standard way a test
/// or bench pins down a peer list before any node starts. The ports
/// can in principle be re-grabbed between reservation and use; in
/// practice the window is too short to matter for tests.
///
/// # Panics
///
/// Panics if the OS refuses an ephemeral loopback bind.
#[must_use]
pub fn reserve_loopback_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral loopback bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("bound addr").to_string())
        .collect()
}
