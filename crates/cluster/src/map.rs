//! Deterministic cluster-map construction, routing, and promotion.
//!
//! The map itself ([`ClusterMap`]) lives in `geomancy-net` because it
//! rides the wire; this module owns the *policy*: how a fresh cluster
//! lays shards over nodes, how a request routes to a shard, and how a
//! follower rewrites the map when it promotes itself.

use geomancy_net::{ClusterMap, ClusterNodeInfo, ShardAssignment};
use geomancy_sim::record::FileId;

/// Routes a file to its shard: the same splitmix64-modulus mapping the
/// placement service uses internally ([`geomancy_serve::shard_of`]), so
/// a cluster client and a node always agree on ownership bit-for-bit.
#[must_use]
pub fn shard_for(fid: FileId, shards: u32) -> u32 {
    geomancy_serve::shard_of(fid, shards as usize) as u32
}

/// Builds the epoch-1 bootstrap map every node and client computes
/// identically from the same peer list: peers are sorted by node id,
/// shard `s` is assigned primary `peers[s % n]`, and the next
/// `replicas` peers in ring order follow as replicas. Duplicate node
/// ids are debug-asserted against; the degenerate single-node cluster
/// gets every shard with no replicas.
#[must_use]
pub fn bootstrap_map(peers: &[(u64, String)], shards: u32, replicas: usize) -> ClusterMap {
    let mut nodes: Vec<ClusterNodeInfo> = peers
        .iter()
        .map(|(node_id, addr)| ClusterNodeInfo {
            node_id: *node_id,
            addr: addr.clone(),
        })
        .collect();
    nodes.sort_by_key(|n| n.node_id);
    debug_assert!(
        nodes.windows(2).all(|w| w[0].node_id != w[1].node_id),
        "duplicate node ids in peer list"
    );
    let n = nodes.len().max(1);
    let replicas = replicas.min(n.saturating_sub(1));
    let assignments = (0..shards)
        .map(|shard| {
            let p = shard as usize % n;
            ShardAssignment {
                shard,
                primary: nodes[p].node_id,
                replicas: (1..=replicas).map(|k| nodes[(p + k) % n].node_id).collect(),
            }
        })
        .collect();
    ClusterMap {
        epoch: 1,
        shards,
        nodes,
        assignments,
    }
}

/// Rewrites `map` for a failover: every shard whose primary is `dead`
/// and whose first replica is `successor` flips to `successor` as
/// primary (dropped from the replica list; the dead node is *not*
/// retained as a replica). Returns the bumped-epoch map, or `None` if
/// the successor is not first in line for any of the dead node's
/// shards — promotion is the first live replica's job, and this keeps
/// two followers from both claiming the same shard range.
#[must_use]
pub fn promote(map: &ClusterMap, dead: u64, successor: u64) -> Option<ClusterMap> {
    let mut next = map.clone();
    let mut changed = false;
    for a in &mut next.assignments {
        if a.primary == dead && a.replicas.first() == Some(&successor) {
            a.primary = successor;
            a.replicas.retain(|&r| r != successor);
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    next.epoch += 1;
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_peers() -> Vec<(u64, String)> {
        vec![
            (3, "c:3".to_string()),
            (1, "a:1".to_string()),
            (2, "b:2".to_string()),
        ]
    }

    #[test]
    fn bootstrap_is_order_independent() {
        let mut peers = three_peers();
        let a = bootstrap_map(&peers, 8, 1);
        peers.reverse();
        let b = bootstrap_map(&peers, 8, 1);
        assert_eq!(a, b);
        assert_eq!(a.epoch, 1);
        assert_eq!(a.nodes.len(), 3);
    }

    #[test]
    fn bootstrap_rings_replicas() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Sorted ids are [1, 2, 3]; shard 0 → primary 1, replica 2.
        assert_eq!(map.primary_of(0), Some(1));
        assert_eq!(map.replicas_of(0), &[2]);
        assert_eq!(map.primary_of(1), Some(2));
        assert_eq!(map.replicas_of(1), &[3]);
        assert_eq!(map.primary_of(2), Some(3));
        assert_eq!(map.replicas_of(2), &[1]);
    }

    #[test]
    fn bootstrap_caps_replicas_at_cluster_size() {
        let map = bootstrap_map(&three_peers(), 4, 9);
        for a in &map.assignments {
            assert_eq!(a.replicas.len(), 2);
            assert!(!a.replicas.contains(&a.primary));
        }
        let solo = bootstrap_map(&[(7, "x:1".into())], 4, 2);
        for a in &solo.assignments {
            assert_eq!(a.primary, 7);
            assert!(a.replicas.is_empty());
        }
    }

    #[test]
    fn promote_flips_only_first_replica_shards() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Node 1 is primary of shards 0 and 3, with node 2 first replica.
        let next = promote(&map, 1, 2).expect("node 2 is first in line");
        assert_eq!(next.epoch, map.epoch + 1);
        assert_eq!(next.primary_of(0), Some(2));
        assert_eq!(next.replicas_of(0), &[] as &[u64]);
        assert_eq!(next.primary_of(3), Some(2));
        // Shards 1/2 untouched.
        assert_eq!(next.primary_of(1), Some(2));
        assert_eq!(next.primary_of(2), Some(3));
        // Node 3 is nobody's first replica for node 1's shards.
        assert!(promote(&map, 1, 3).is_none());
    }
}
