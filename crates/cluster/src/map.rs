//! Deterministic cluster-map construction, routing, and promotion.
//!
//! The map itself ([`ClusterMap`]) lives in `geomancy-net` because it
//! rides the wire; this module owns the *policy*: how a fresh cluster
//! lays shards over nodes, how a request routes to a shard, and how a
//! follower rewrites the map when it promotes itself.

use geomancy_net::{ClusterMap, ClusterNodeInfo, ShardAssignment};
use geomancy_sim::record::FileId;

/// Routes a file to its shard: the same splitmix64-modulus mapping the
/// placement service uses internally ([`geomancy_serve::shard_of`]), so
/// a cluster client and a node always agree on ownership bit-for-bit.
#[must_use]
pub fn shard_for(fid: FileId, shards: u32) -> u32 {
    geomancy_serve::shard_of(fid, shards as usize) as u32
}

/// Builds the epoch-1 bootstrap map every node and client computes
/// identically from the same peer list: peers are sorted by node id,
/// shard `s` is assigned primary `peers[s % n]`, and the next
/// `replicas` peers in ring order follow as replicas. Duplicate node
/// ids are debug-asserted against; the degenerate single-node cluster
/// gets every shard with no replicas.
#[must_use]
pub fn bootstrap_map(peers: &[(u64, String)], shards: u32, replicas: usize) -> ClusterMap {
    let mut nodes: Vec<ClusterNodeInfo> = peers
        .iter()
        .map(|(node_id, addr)| ClusterNodeInfo {
            node_id: *node_id,
            addr: addr.clone(),
        })
        .collect();
    nodes.sort_by_key(|n| n.node_id);
    debug_assert!(
        nodes.windows(2).all(|w| w[0].node_id != w[1].node_id),
        "duplicate node ids in peer list"
    );
    let n = nodes.len().max(1);
    let replicas = replicas.min(n.saturating_sub(1));
    let assignments = (0..shards)
        .map(|shard| {
            let p = shard as usize % n;
            ShardAssignment {
                shard,
                primary: nodes[p].node_id,
                replicas: (1..=replicas).map(|k| nodes[(p + k) % n].node_id).collect(),
            }
        })
        .collect();
    ClusterMap {
        epoch: 1,
        shards,
        nodes,
        assignments,
    }
}

/// Rewrites `map` for a failover: every shard whose primary is `dead`
/// and whose first replica is `successor` flips to `successor` as
/// primary (dropped from the replica list; the dead node is *not*
/// retained as a replica). Returns the bumped-epoch map, or `None` if
/// the successor is not first in line for any of the dead node's
/// shards — promotion is the first live replica's job, and this keeps
/// two followers from both claiming the same shard range.
#[must_use]
pub fn promote(map: &ClusterMap, dead: u64, successor: u64) -> Option<ClusterMap> {
    let mut next = map.clone();
    let mut changed = false;
    for a in &mut next.assignments {
        if a.primary == dead && a.replicas.first() == Some(&successor) {
            a.primary = successor;
            a.replicas.retain(|&r| r != successor);
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    next.epoch += 1;
    Some(next)
}

/// Node ids of `map` in ascending order — the ring every preferred-
/// assignment computation walks. Maps built by this module keep their
/// node list sorted, but sorting here keeps the policy correct for any
/// decodable map.
fn sorted_ids(map: &ClusterMap) -> Vec<u64> {
    let mut ids: Vec<u64> = map.nodes.iter().map(|n| n.node_id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The node that *should* own `shard` under the bootstrap placement rule
/// applied to the map's current node set — the rebalance target a
/// recovered node converges back to. `None` only for an empty map.
#[must_use]
pub fn preferred_primary(map: &ClusterMap, shard: u32) -> Option<u64> {
    let ids = sorted_ids(map);
    if ids.is_empty() {
        return None;
    }
    Some(ids[shard as usize % ids.len()])
}

/// The full preferred assignment for `shard`: ring primary plus the next
/// `replicas` nodes, capped at cluster size minus one — exactly what
/// [`bootstrap_map`] would emit for the map's current node set.
#[must_use]
pub fn preferred_assignment(map: &ClusterMap, shard: u32, replicas: usize) -> ShardAssignment {
    let ids = sorted_ids(map);
    let n = ids.len().max(1);
    let replicas = replicas.min(n.saturating_sub(1));
    let p = shard as usize % n;
    ShardAssignment {
        shard,
        primary: ids.get(p).copied().unwrap_or(0),
        replicas: (1..=replicas).map(|k| ids[(p + k) % n]).collect(),
    }
}

/// Adds (or re-addresses) a node in the membership list without touching
/// any shard assignment: a rejoiner first becomes routable, then earns
/// its shards back through catch-up and [`demote`]. Returns the
/// bumped-epoch map, or `None` when the node is already present at that
/// address — every peer applying the same heartbeat-announced join
/// computes an identical map, so concurrent joins agree.
#[must_use]
pub fn join(map: &ClusterMap, node_id: u64, addr: &str) -> Option<ClusterMap> {
    let mut next = map.clone();
    match next.nodes.iter_mut().find(|n| n.node_id == node_id) {
        Some(existing) if existing.addr == addr => return None,
        Some(existing) => existing.addr = addr.to_string(),
        None => next.nodes.push(ClusterNodeInfo {
            node_id,
            addr: addr.to_string(),
        }),
    }
    next.nodes.sort_by_key(|n| n.node_id);
    next.epoch += 1;
    Some(next)
}

/// Removes a node from the membership list and every replica set. A node
/// still holding a primaryship cannot leave — demote it first — so a
/// map transition never strands a shard without a primary. Returns the
/// bumped-epoch map, or `None` when the node is absent or still primary
/// somewhere.
#[must_use]
pub fn leave(map: &ClusterMap, node_id: u64) -> Option<ClusterMap> {
    if !map.nodes.iter().any(|n| n.node_id == node_id)
        || map.assignments.iter().any(|a| a.primary == node_id)
    {
        return None;
    }
    let mut next = map.clone();
    next.nodes.retain(|n| n.node_id != node_id);
    for a in &mut next.assignments {
        a.replicas.retain(|&r| r != node_id);
    }
    next.epoch += 1;
    Some(next)
}

/// Hands shards back after a rejoin: every shard whose current primary
/// is `from` and whose [`preferred_primary`] is `to` flips to the full
/// preferred ring assignment (degree `replicas`). The caller — the
/// *current* primary, the one node entitled to give a shard away —
/// invokes this only once `to` has proven it is caught up. Returns the
/// bumped-epoch map, or `None` if no shard qualifies.
#[must_use]
pub fn demote(map: &ClusterMap, from: u64, to: u64, replicas: usize) -> Option<ClusterMap> {
    if from == to || !map.nodes.iter().any(|n| n.node_id == to) {
        return None;
    }
    let mut next = map.clone();
    let mut changed = false;
    for a in &mut next.assignments {
        if a.primary == from && preferred_primary(map, a.shard) == Some(to) {
            *a = preferred_assignment(map, a.shard, replicas);
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    next.epoch += 1;
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_peers() -> Vec<(u64, String)> {
        vec![
            (3, "c:3".to_string()),
            (1, "a:1".to_string()),
            (2, "b:2".to_string()),
        ]
    }

    #[test]
    fn bootstrap_is_order_independent() {
        let mut peers = three_peers();
        let a = bootstrap_map(&peers, 8, 1);
        peers.reverse();
        let b = bootstrap_map(&peers, 8, 1);
        assert_eq!(a, b);
        assert_eq!(a.epoch, 1);
        assert_eq!(a.nodes.len(), 3);
    }

    #[test]
    fn bootstrap_rings_replicas() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Sorted ids are [1, 2, 3]; shard 0 → primary 1, replica 2.
        assert_eq!(map.primary_of(0), Some(1));
        assert_eq!(map.replicas_of(0), &[2]);
        assert_eq!(map.primary_of(1), Some(2));
        assert_eq!(map.replicas_of(1), &[3]);
        assert_eq!(map.primary_of(2), Some(3));
        assert_eq!(map.replicas_of(2), &[1]);
    }

    #[test]
    fn bootstrap_caps_replicas_at_cluster_size() {
        let map = bootstrap_map(&three_peers(), 4, 9);
        for a in &map.assignments {
            assert_eq!(a.replicas.len(), 2);
            assert!(!a.replicas.contains(&a.primary));
        }
        let solo = bootstrap_map(&[(7, "x:1".into())], 4, 2);
        for a in &solo.assignments {
            assert_eq!(a.primary, 7);
            assert!(a.replicas.is_empty());
        }
    }

    #[test]
    fn promote_flips_only_first_replica_shards() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Node 1 is primary of shards 0 and 3, with node 2 first replica.
        let next = promote(&map, 1, 2).expect("node 2 is first in line");
        assert_eq!(next.epoch, map.epoch + 1);
        assert_eq!(next.primary_of(0), Some(2));
        assert_eq!(next.replicas_of(0), &[] as &[u64]);
        assert_eq!(next.primary_of(3), Some(2));
        // Shards 1/2 untouched.
        assert_eq!(next.primary_of(1), Some(2));
        assert_eq!(next.primary_of(2), Some(3));
        // Node 3 is nobody's first replica for node 1's shards.
        assert!(promote(&map, 1, 3).is_none());
    }

    #[test]
    fn join_is_membership_only_and_deterministic() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        let joined = join(&map, 5, "e:5").expect("new node");
        assert_eq!(joined.epoch, map.epoch + 1);
        assert_eq!(
            joined.nodes.iter().map(|n| n.node_id).collect::<Vec<_>>(),
            vec![1, 2, 3, 5]
        );
        // Assignments untouched: the joiner owns nothing yet.
        assert_eq!(joined.assignments, map.assignments);
        // Same join applied anywhere produces the identical map.
        assert_eq!(join(&map, 5, "e:5").unwrap(), joined);
        // Already present at that address: no transition.
        assert!(join(&joined, 5, "e:5").is_none());
        // Present at a new address (restart on a new port): re-address.
        let moved = join(&joined, 5, "e:6").expect("re-address");
        assert_eq!(moved.epoch, joined.epoch + 1);
        assert_eq!(
            moved.nodes.iter().find(|n| n.node_id == 5).unwrap().addr,
            "e:6"
        );
    }

    #[test]
    fn demote_returns_shards_to_preferred_owner() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Node 1 dies; node 2 takes shards 0 and 3.
        let failed = promote(&map, 1, 2).unwrap();
        assert_eq!(failed.primary_of(0), Some(2));
        // Node 1 recovers and is caught up: node 2 (current primary)
        // hands shards 0 and 3 back with the preferred ring restored.
        let healed = demote(&failed, 2, 1, 1).expect("shards to hand back");
        assert_eq!(healed.epoch, failed.epoch + 1);
        assert_eq!(healed.primary_of(0), Some(1));
        assert_eq!(healed.replicas_of(0), &[2]);
        assert_eq!(healed.primary_of(3), Some(1));
        assert_eq!(healed.replicas_of(3), &[2]);
        // Untouched shards keep their assignment.
        assert_eq!(healed.primary_of(1), Some(2));
        assert_eq!(healed.primary_of(2), Some(3));
        // Nothing left to demote a second time.
        assert!(demote(&healed, 2, 1, 1).is_none());
        // A non-member target never receives shards.
        assert!(demote(&failed, 2, 9, 1).is_none());
        assert_eq!(healed, map_with_epoch(&map, healed.epoch));
    }

    /// `map` with its epoch replaced — demote must restore the bootstrap
    /// layout exactly, epoch aside.
    fn map_with_epoch(map: &ClusterMap, epoch: u64) -> ClusterMap {
        let mut m = map.clone();
        m.epoch = epoch;
        m
    }

    #[test]
    fn leave_refuses_primaries_and_scrubs_replicas() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        // Every node is a primary in the bootstrap map.
        assert!(leave(&map, 1).is_none());
        // After node 1's shards move to node 2, node 1 may leave.
        let failed = promote(&map, 1, 2).unwrap();
        let left = leave(&failed, 1).expect("no longer primary");
        assert_eq!(left.epoch, failed.epoch + 1);
        assert!(!left.nodes.iter().any(|n| n.node_id == 1));
        for a in &left.assignments {
            assert!(!a.replicas.contains(&1));
            assert_ne!(a.primary, 1);
        }
        assert!(leave(&map, 42).is_none());
    }

    #[test]
    fn preferred_assignment_matches_bootstrap() {
        let map = bootstrap_map(&three_peers(), 6, 1);
        for a in &map.assignments {
            assert_eq!(preferred_primary(&map, a.shard), Some(a.primary));
            assert_eq!(preferred_assignment(&map, a.shard, 1), *a);
        }
        // The preferred ring follows the membership list, not the
        // current assignments: after a promote, shard 0's preferred
        // primary is still node 1.
        let failed = promote(&map, 1, 2).unwrap();
        assert_eq!(preferred_primary(&failed, 0), Some(1));
    }
}
