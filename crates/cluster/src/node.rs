//! One cluster node: a [`PlacementService`] behind a cluster-aware
//! [`NetServer`], plus the three background roles that make it a
//! *replicated* node — the WAL shipper (primary side), the replica
//! store (follower side), and the failover controller.
//!
//! ```text
//!        seal hook (checkpoint actor)        peers
//!             │ (shard, seq, bytes)            ▲
//!             ▼                                │ heartbeats
//!        shipper thread ── ShipSegment ──► replicas
//!                                              │ ShipAck
//!        prober thread  ── Heartbeat ──────────┘
//!             │ sightings
//!             ▼
//!        failover actor (service reactor): silence > deadline
//!             └─► promote: bump epoch, own the dead node's shards
//! ```

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::{Duration, Instant};

use geomancy_net::wire::{
    self, decode_catch_up_done, decode_catch_up_req, decode_heartbeat_addr, decode_ship_segment,
    encode_catch_up_ack, encode_catch_up_chunk, encode_cluster_info_resp, encode_heartbeat,
    encode_ship_ack, encode_wrong_epoch,
};
use geomancy_net::{
    Client, ClientConfig, ClusterHandler, ClusterMap, NetConfig, NetError, NetServer, WireStatus,
};
use geomancy_runtime::{Actor, Ctx};
use geomancy_serve::{PlacementService, SealHook, SegmentRetainer, ServeConfig, StoreSettings};
use geomancy_sim::record::FileId;
use geomancy_store::{PagedStore, SharedPagedStore, StoreConfig};

use crate::catchup;
use crate::map::{bootstrap_map, join, preferred_primary, promote, shard_for};
use crate::repair::{DemotionStep, RepairState};

/// Everything that can go wrong bringing a node up.
#[derive(Debug)]
pub enum ClusterNodeError {
    /// The peer list does not name this node.
    SelfNotInPeers(u64),
    /// Filesystem or socket failure during startup.
    Io(std::io::Error),
    /// The replica store failed to open.
    Store(String),
}

impl std::fmt::Display for ClusterNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterNodeError::SelfNotInPeers(id) => {
                write!(f, "peer list does not include this node (id {id})")
            }
            ClusterNodeError::Io(e) => write!(f, "cluster node startup I/O: {e}"),
            ClusterNodeError::Store(e) => write!(f, "replica store: {e}"),
        }
    }
}

impl std::error::Error for ClusterNodeError {}

impl From<std::io::Error> for ClusterNodeError {
    fn from(e: std::io::Error) -> ClusterNodeError {
        ClusterNodeError::Io(e)
    }
}

/// Configuration of one [`ClusterNode`].
#[derive(Debug, Clone)]
pub struct ClusterNodeConfig {
    /// This node's stable id (must appear in `peers`).
    pub node_id: u64,
    /// Address to bind the listener on (may be `ip:0`; peers route by
    /// the *advertised* address in `peers`).
    pub listen: String,
    /// Every cluster member as `(node_id, advertised address)`,
    /// including this node. All members must agree on this list — the
    /// epoch-1 map is computed from it deterministically.
    pub peers: Vec<(u64, String)>,
    /// Replication degree: followers per shard beyond the primary.
    pub replicas: usize,
    /// Shard count (also the placement service's ingest shard count).
    pub shards: u32,
    /// Base directory; the node keeps `wal/`, `store/`, `replica-wal/`
    /// and `replica-store/` underneath it.
    pub dir: PathBuf,
    /// Cadence of outgoing heartbeat probes, in microseconds.
    pub heartbeat_micros: u64,
    /// Primary silence past this deadline triggers promotion.
    pub failover_after_micros: u64,
    /// Template for the embedded placement service. `shards`,
    /// `node_id`, `wal_dir`, the store directory, and `seal_hook` are
    /// overridden by the cluster layer; everything else (DRL config,
    /// batching, admission, checkpoint cadence) is honored.
    pub serve: ServeConfig,
    /// Transport settings for the node's listener.
    pub net: NetConfig,
    /// Rejoin mode: the node starts with an epoch-0 map that assigns it
    /// *no* primaryships (any live peer's real map wins on first
    /// contact), announces itself through v6 heartbeats, catches each
    /// wanted shard up, and earns its shards back through the demotion
    /// protocol. `peers` may omit this node when it is a brand-new
    /// member.
    pub rejoin: bool,
    /// Byte cap on sealed segments retained in memory for seq-mode
    /// catch-up. Past it, oldest segments evict and stragglers fall back
    /// to cold-store catch-up — retention never grows unbounded while a
    /// replica is down.
    pub retain_bytes: usize,
    /// Max records per cold catch-up chunk (chunks may run slightly
    /// longer to close a timestamp tie run).
    pub catch_up_max_records: u32,
}

impl Default for ClusterNodeConfig {
    fn default() -> Self {
        ClusterNodeConfig {
            node_id: 1,
            listen: "127.0.0.1:0".to_string(),
            peers: vec![(1, "127.0.0.1:0".to_string())],
            replicas: 1,
            shards: 4,
            dir: PathBuf::from("geomancy-node"),
            heartbeat_micros: 100_000,
            failover_after_micros: 500_000,
            serve: ServeConfig::default(),
            net: NetConfig::default(),
            rejoin: false,
            retain_bytes: 64 << 20,
            catch_up_max_records: 4096,
        }
    }
}

/// One WAL segment the shipper got acknowledged by *every* replica of
/// its shard — the durability unit of the replication protocol: records
/// in acked segments survive the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShippedSeg {
    /// Ingest shard the segment belongs to.
    pub shard: u32,
    /// WAL sequence number (monotonic per shard).
    pub seq: u64,
    /// Records the segment carried.
    pub records: u64,
}

/// Counters for the follower half of a node: segments applied into the
/// replica store and the per-shard absorb floors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Ship frames durably applied (exactly-once; re-sent segments at
    /// or under the floor count here too, but add no records).
    pub segments_applied: u64,
    /// Records added to the replica store.
    pub records_applied: u64,
    /// Total records in the replica store.
    pub total_records: u64,
    /// Per-shard absorb floors: every segment with `seq <=` the floor
    /// is durably in the replica store.
    pub floors: Vec<u64>,
}

/// The state shared between the listener's cluster hook, the shipper,
/// the prober, and the failover actor.
struct ClusterCore {
    node_id: u64,
    map: RwLock<ClusterMap>,
    replica: Mutex<ReplicaState>,
    /// Liveness sightings, reported catch-up floors, and demotion
    /// barriers — all timestamped off `base`.
    repair: Mutex<RepairState>,
    /// Monotonic clock base for the repair state's microsecond domain.
    base: Instant,
    /// Sealed segments kept in memory for seq-mode catch-up.
    retainer: Arc<SegmentRetainer>,
    /// The embedded service's cold store, filled in right after the
    /// service starts (catch-up exports read it).
    store: OnceLock<SharedPagedStore>,
    shards: u32,
    replicas_degree: usize,
    promotions: AtomicU64,
    ship_rejects: AtomicU64,
    catch_up_chunks_served: AtomicU64,
}

struct ReplicaState {
    store: PagedStore,
    wal_dir: PathBuf,
    shards: usize,
    segments_applied: u64,
    records_applied: u64,
    /// Which node's sequence space each shard's floor lives in. Ships
    /// are only accepted from the recorded origin, in order; everything
    /// else goes through catch-up. Persisted in an `origin.json`
    /// sidecar.
    origins: HashMap<u32, u64>,
    /// Shards that rejected an out-of-order or wrong-origin ship and
    /// need a catch-up round.
    dirty: HashSet<u32>,
    /// Shards with a catch-up round in flight; concurrent ships answer
    /// `Backpressure` instead of racing the round.
    catching: HashSet<u32>,
}

impl ClusterCore {
    fn epoch(&self) -> u64 {
        self.map.read().expect("map lock").epoch
    }

    fn map(&self) -> ClusterMap {
        self.map.read().expect("map lock").clone()
    }

    fn now_micros(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adopts `map` if strictly newer.
    fn adopt(&self, map: &ClusterMap) -> bool {
        let mut held = self.map.write().expect("map lock");
        if map.epoch > held.epoch {
            *held = map.clone();
            true
        } else {
            false
        }
    }

    fn mark_seen(&self, node: u64) {
        let now = self.now_micros();
        self.repair.lock().expect("repair lock").mark_seen(node, now);
    }

    /// Peers (other than us) silent for longer than `deadline` that
    /// still hold primaryship of at least one shard.
    fn silent_primaries(&self, deadline: Duration) -> Vec<u64> {
        let now = self.now_micros();
        let deadline = u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX);
        let map = self.map.read().expect("map lock");
        let repair = self.repair.lock().expect("repair lock");
        map.nodes
            .iter()
            .map(|n| n.node_id)
            .filter(|&id| id != self.node_id)
            .filter(|&id| !map.shards_owned_by(id).is_empty())
            .filter(|&id| !repair.live(id, now, deadline))
            .collect()
    }

    /// Promotes this node over `dead`'s shards if it is first in line;
    /// returns the new epoch when the map changed.
    fn try_promote(&self, dead: u64) -> Option<u64> {
        let mut held = self.map.write().expect("map lock");
        let next = promote(&held, dead, self.node_id)?;
        let epoch = next.epoch;
        *held = next;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        Some(epoch)
    }

    /// Applies an unknown node's heartbeat-announced join to the local
    /// map: membership only, no shard moves, deterministic content so
    /// every peer computes the identical map.
    fn apply_join(&self, node: u64, addr: &str) {
        let mut held = self.map.write().expect("map lock");
        if held.nodes.iter().any(|n| n.node_id == node) {
            return;
        }
        if let Some(next) = join(&held, node, addr) {
            *held = next;
        }
    }

    /// Gate + apply for one shipped segment. Ships are accepted only
    /// in-order (`seq <= floor + 1`) from the shard's recorded origin —
    /// an out-of-order absorb would silently skip the gap and leave a
    /// permanent hole below the cold cursor that no catch-up round could
    /// ever see. A virgin shard (no origin, floor 0, no records) adopts
    /// the map's primary as origin on its first `seq == 1` ship; every
    /// other mismatch answers `Backpressure` and flags the shard for a
    /// catch-up round.
    fn gate_and_apply_ship(&self, ship: &wire::SegmentShip, map: &ClusterMap) -> WireStatus {
        let mut replica = self.replica.lock().expect("replica lock");
        let shard = ship.shard;
        if replica.catching.contains(&shard) {
            return WireStatus::Backpressure;
        }
        let floor = replica
            .store
            .absorbed()
            .get(shard as usize)
            .copied()
            .unwrap_or(0);
        let mut adopt_origin = false;
        match replica.origins.get(&shard) {
            Some(&origin) if origin == ship.from_node => {
                if ship.seq > floor + 1 {
                    replica.dirty.insert(shard);
                    return WireStatus::Backpressure;
                }
            }
            Some(_) => {
                replica.dirty.insert(shard);
                return WireStatus::Backpressure;
            }
            None => {
                let virgin = floor == 0
                    && ship.seq == 1
                    && map.primary_of(shard) == Some(ship.from_node)
                    && replica
                        .store
                        .max_timestamp_matching(catchup::cold_pred(self.shards, shard))
                        .unwrap_or(None)
                        .is_none();
                if !virgin {
                    replica.dirty.insert(shard);
                    return WireStatus::Backpressure;
                }
                adopt_origin = true;
            }
        }
        match Self::apply_ship(&mut replica, ship) {
            Ok(()) => {
                if adopt_origin {
                    replica.origins.insert(shard, ship.from_node);
                    let dir = replica.store.dir().to_path_buf();
                    let _ = catchup::save_origins(&dir, &replica.origins);
                }
                WireStatus::Ok
            }
            Err(_) => WireStatus::Internal,
        }
    }

    /// Durably applies one shipped segment: write the bytes under a
    /// temp name, rename into the replica WAL, fsync, absorb into the
    /// replica store. Segments at or under the manifest floor are
    /// deleted unreplayed by the absorb — re-sent segments are
    /// exactly-once by construction.
    fn apply_ship(replica: &mut ReplicaState, ship: &wire::SegmentShip) -> Result<(), std::io::Error> {
        let dest = geomancy_replaydb::segment_path(&replica.wal_dir, ship.shard as usize, ship.seq);
        let tmp = replica
            .wal_dir
            .join(format!("ship-{}-{}.tmp", ship.shard, ship.seq));
        std::fs::write(&tmp, &ship.bytes)?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        std::fs::rename(&tmp, &dest)?;
        std::fs::File::open(&replica.wal_dir)?.sync_all()?;
        let shards = replica.shards;
        let wal_dir = replica.wal_dir.clone();
        let report = replica
            .store
            .absorb_segments(&wal_dir, shards, None)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        replica.segments_applied += 1;
        replica.records_applied += report.records_absorbed;
        Ok(())
    }

    fn replica_stats(&self) -> ReplicaStats {
        let replica = self.replica.lock().expect("replica lock");
        ReplicaStats {
            segments_applied: replica.segments_applied,
            records_applied: replica.records_applied,
            total_records: replica.store.total_records(),
            floors: replica.store.absorbed().to_vec(),
        }
    }
}

impl ClusterHandler for ClusterCore {
    fn owns(&self, fid: FileId) -> bool {
        let map = self.map.read().expect("map lock");
        map.primary_of(shard_for(fid, map.shards)) == Some(self.node_id)
    }

    fn wrong_epoch_payload(&self) -> Vec<u8> {
        encode_wrong_epoch(&self.map.read().expect("map lock"))
    }

    fn cluster_info_payload(&self) -> Vec<u8> {
        encode_cluster_info_resp(&self.map.read().expect("map lock"))
    }

    fn on_ship(&self, payload: &[u8]) -> Vec<u8> {
        let ship = match decode_ship_segment(payload) {
            Ok(ship) => ship,
            Err(_) => return encode_ship_ack(WireStatus::BadRequest, 0, 0, None),
        };
        let map = self.map();
        if ship.epoch < map.epoch {
            self.ship_rejects.fetch_add(1, Ordering::Relaxed);
            return encode_ship_ack(WireStatus::WrongEpoch, ship.shard, ship.seq, Some(&map));
        }
        self.mark_seen(ship.from_node);
        let status = self.gate_and_apply_ship(&ship, &map);
        if status == WireStatus::Backpressure {
            self.ship_rejects.fetch_add(1, Ordering::Relaxed);
        }
        encode_ship_ack(status, ship.shard, ship.seq, None)
    }

    fn on_heartbeat(&self, payload: &[u8]) -> Vec<u8> {
        if let Ok((peer, _epoch, addr)) = decode_heartbeat_addr(payload) {
            self.mark_seen(peer);
            // A v6 heartbeat carries the sender's listener address: an
            // unknown node announcing itself joins the membership list
            // (assignments untouched — it earns shards via catch-up).
            if let Some(addr) = addr {
                self.apply_join(peer, &addr);
            }
        }
        encode_heartbeat(self.node_id, self.epoch())
    }

    fn on_catch_up(&self, payload: &[u8]) -> Vec<u8> {
        let Ok(req) = decode_catch_up_req(payload) else {
            return encode_catch_up_chunk(WireStatus::BadRequest, None, None);
        };
        let map = self.map();
        if map.primary_of(req.shard) != Some(self.node_id) {
            // Not ours to serve: hand back the map so the follower
            // re-aims, same shape as every WrongEpoch correction.
            return encode_catch_up_chunk(WireStatus::WrongEpoch, None, Some(&map));
        }
        self.mark_seen(req.node_id);
        let Some(store) = self.store.get() else {
            return encode_catch_up_chunk(WireStatus::Internal, None, None);
        };
        // Lock order everywhere: service store first, then replica. The
        // shared read guard keeps the exported records and the reported
        // floor one snapshot — a floor newer than the export would let a
        // later ship replay records the export already carried.
        let service = store.read();
        let replica = self.replica.lock().expect("replica lock");
        match catchup::build_chunk(
            &req,
            Some(&service),
            Some(&replica.store),
            Some(&self.retainer),
            self.shards,
        ) {
            Ok(chunk) => {
                self.catch_up_chunks_served.fetch_add(1, Ordering::Relaxed);
                encode_catch_up_chunk(WireStatus::Ok, Some(&chunk), None)
            }
            Err(_) => encode_catch_up_chunk(WireStatus::Internal, None, None),
        }
    }

    fn on_catch_up_done(&self, payload: &[u8]) -> Vec<u8> {
        let Ok(done) = decode_catch_up_done(payload) else {
            return encode_catch_up_ack(WireStatus::BadRequest, 0, None);
        };
        self.mark_seen(done.node_id);
        self.repair
            .lock()
            .expect("repair lock")
            .record_done(done.node_id, done.shard, done.floor_seq);
        encode_catch_up_ack(WireStatus::Ok, self.epoch(), None)
    }
}

/// The failover controller: a reactor actor (co-located on the
/// placement service's pool) that checks sighting deadlines on a timer
/// and promotes this node over silent primaries it is first in line
/// for. Promotion only rewrites the map; correction of *peers* happens
/// through heartbeat acks (stale nodes see the higher epoch and fetch
/// the map), and of *clients* through `WrongEpoch` replies.
struct FailoverActor {
    core: Arc<ClusterCore>,
    deadline: Duration,
    check_every_micros: u64,
}

impl Actor for FailoverActor {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Grace period: nobody is "silent" before a full deadline has
        // elapsed from node start.
        let now = self.core.now_micros();
        let mut repair = self.core.repair.lock().expect("repair lock");
        for n in &self.core.map().nodes {
            repair.mark_seen(n.node_id, now);
        }
        drop(repair);
        ctx.set_timer(self.check_every_micros, 0);
    }

    fn on_msg(&mut self, (): (), _ctx: &mut Ctx<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        for dead in self.core.silent_primaries(self.deadline) {
            if self.core.try_promote(dead).is_some() {
                // The epoch bump is the whole protocol: requests routed
                // on the old map now answer WrongEpoch with this map.
            }
        }
        ctx.set_timer(self.check_every_micros, 0);
    }
}

/// A sealed segment handed from the checkpoint actor's seal hook to the
/// shipper thread.
struct SealedSeg {
    shard: u32,
    seq: u64,
    records: u64,
    bytes: Vec<u8>,
}

/// One running cluster node. Dropping it without calling
/// [`ClusterNode::shutdown`] or [`ClusterNode::kill`] leaks the
/// background threads for the life of the process.
pub struct ClusterNode {
    core: Arc<ClusterCore>,
    service: Option<Arc<PlacementService>>,
    server: Option<NetServer>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    abandon: Arc<AtomicBool>,
    shipper: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    shipped: Arc<Mutex<Vec<ShippedSeg>>>,
    ship_failures: Arc<AtomicU64>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("node_id", &self.core.node_id)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Brings the node up: opens the replica store, starts the
    /// placement service with the seal hook wired, binds the
    /// cluster-aware listener, and spawns the shipper, prober, and
    /// failover actor.
    ///
    /// # Errors
    ///
    /// Typed [`ClusterNodeError`]s for a bad peer list, store, or bind
    /// failure.
    pub fn start(config: ClusterNodeConfig) -> Result<ClusterNode, ClusterNodeError> {
        if !config.rejoin && !config.peers.iter().any(|(id, _)| *id == config.node_id) {
            return Err(ClusterNodeError::SelfNotInPeers(config.node_id));
        }
        let mut map = bootstrap_map(&config.peers, config.shards, config.replicas);
        if config.rejoin {
            // A rejoiner must not claim shards off a guessed map: demote
            // itself out of every primaryship and start at epoch 0, so
            // the first live peer's real map (epoch >= 1) always wins.
            for a in &mut map.assignments {
                if a.primary == config.node_id {
                    if let Some(&succ) = a.replicas.first() {
                        a.primary = succ;
                        a.replicas.retain(|&r| r != succ);
                    }
                }
            }
            map.epoch = 0;
        }
        let wal_dir = config.dir.join("wal");
        let store_dir = config.dir.join("store");
        let replica_wal = config.dir.join("replica-wal");
        let replica_store_dir = config.dir.join("replica-store");
        std::fs::create_dir_all(&replica_wal)?;

        let store_settings = config.serve.store.clone().unwrap_or_default();
        let (replica_store, _recovery) = PagedStore::open(
            &replica_store_dir,
            StoreConfig {
                page_size: store_settings.page_size,
                cache_pages: store_settings.cache_pages,
            },
        )
        .map_err(|e| ClusterNodeError::Store(e.to_string()))?;

        let origins = catchup::load_origins(replica_store.dir());
        let retainer = Arc::new(SegmentRetainer::new(config.retain_bytes));
        let core = Arc::new(ClusterCore {
            node_id: config.node_id,
            map: RwLock::new(map),
            replica: Mutex::new(ReplicaState {
                store: replica_store,
                wal_dir: replica_wal,
                shards: config.shards as usize,
                segments_applied: 0,
                records_applied: 0,
                origins,
                dirty: HashSet::new(),
                catching: HashSet::new(),
            }),
            repair: Mutex::new(RepairState::default()),
            base: Instant::now(),
            retainer: Arc::clone(&retainer),
            store: OnceLock::new(),
            shards: config.shards,
            replicas_degree: config.replicas,
            promotions: AtomicU64::new(0),
            ship_rejects: AtomicU64::new(0),
            catch_up_chunks_served: AtomicU64::new(0),
        });

        // Seal hook: runs on the checkpoint actor's worker in the
        // absorb window, while the sealed segment file still exists.
        // Read the bytes (and record count) synchronously, hand them to
        // the shipper thread and the catch-up retainer, return.
        let (seal_tx, seal_rx) = mpsc::channel::<SealedSeg>();
        let hook = SealHook(Arc::new(move |shard: usize, seq: u64, path: &Path| {
            let Ok(bytes) = std::fs::read(path) else {
                return;
            };
            let records = geomancy_replaydb::recover(path)
                .map(|(_, replayed)| replayed)
                .unwrap_or(0);
            retainer.insert(shard as u32, seq, bytes.clone());
            let _ = seal_tx.send(SealedSeg {
                shard: shard as u32,
                seq,
                records,
                bytes,
            });
        }));

        let service = Arc::new(PlacementService::start(ServeConfig {
            shards: config.shards as usize,
            node_id: config.node_id,
            wal_dir: Some(wal_dir),
            store: Some(StoreSettings {
                dir: store_dir,
                ..store_settings
            }),
            seal_hook: Some(hook),
            ..config.serve
        }));
        if let Some(store) = service.store() {
            let _ = core.store.set(store.clone());
        }

        // The failover controller shares the service's reactor pool:
        // one pool runs the whole node.
        let (fail_addr, _fail_handle) = service.reactor().spawn(
            "cluster-failover",
            8,
            FailoverActor {
                core: Arc::clone(&core),
                deadline: Duration::from_micros(config.failover_after_micros),
                check_every_micros: config.heartbeat_micros.max(1),
            },
        );
        drop(fail_addr);

        let server = NetServer::start_with_cluster(
            config.listen.as_str(),
            Arc::clone(&service),
            config.net.clone(),
            Arc::clone(&core) as Arc<dyn ClusterHandler>,
        )
        .map_err(ClusterNodeError::Io)?;
        let addr = server.local_addr();

        let stop = Arc::new(AtomicBool::new(false));
        let abandon = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(Mutex::new(Vec::new()));
        let ship_failures = Arc::new(AtomicU64::new(0));
        let shipper = {
            let core = Arc::clone(&core);
            let shipped = Arc::clone(&shipped);
            let failures = Arc::clone(&ship_failures);
            let abandon = Arc::clone(&abandon);
            std::thread::Builder::new()
                .name(format!("geomancy-ship-{}", config.node_id))
                .spawn(move || shipper_loop(&core, &seal_rx, &shipped, &failures, &abandon))
                .expect("spawn shipper")
        };
        let prober = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            let interval = Duration::from_micros(config.heartbeat_micros.max(1));
            // The prober holds the service weakly so teardown's
            // `Arc::try_unwrap` of the service still succeeds.
            let service = Arc::downgrade(&service);
            let advertised = config
                .peers
                .iter()
                .find(|(id, _)| *id == config.node_id)
                .map(|(_, a)| a.clone())
                .filter(|a| !a.ends_with(":0"))
                .unwrap_or_else(|| addr.to_string());
            let knobs = ProberKnobs {
                advertised,
                deadline_micros: config.failover_after_micros,
                catch_up_max_records: config.catch_up_max_records,
            };
            std::thread::Builder::new()
                .name(format!("geomancy-probe-{}", config.node_id))
                .spawn(move || prober_loop(&core, &service, &stop, interval, &knobs))
                .expect("spawn prober")
        };

        Ok(ClusterNode {
            core,
            service: Some(service),
            server: Some(server),
            addr,
            stop,
            abandon,
            shipper: Some(shipper),
            prober: Some(prober),
            shipped,
            ship_failures,
        })
    }

    /// This node's stable id.
    #[must_use]
    pub fn node_id(&self) -> u64 {
        self.core.node_id
    }

    /// The bound listener address.
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts advertising `Draining` on this node's listener without
    /// stopping anything: placement requests are refused with the
    /// fail-over status while heartbeats, shipping, and cluster-info
    /// keep answering. The decommission handshake — drain first so
    /// clients move, then [`shutdown`](ClusterNode::shutdown).
    pub fn begin_drain(&self) {
        if let Some(server) = &self.server {
            server.begin_drain();
        }
    }

    /// The node's current map view.
    #[must_use]
    pub fn map(&self) -> ClusterMap {
        self.core.map()
    }

    /// The node's current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// How many times this node promoted itself over a silent primary.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.core.promotions.load(Ordering::Relaxed)
    }

    /// Segments fully acknowledged by every replica of their shard —
    /// the records guaranteed to survive this node's death.
    #[must_use]
    pub fn shipped(&self) -> Vec<ShippedSeg> {
        self.shipped.lock().expect("shipped lock").clone()
    }

    /// Segments the shipper gave up on after retries.
    #[must_use]
    pub fn ship_failures(&self) -> u64 {
        self.ship_failures.load(Ordering::Relaxed)
    }

    /// Counters for the follower half of this node.
    #[must_use]
    pub fn replica_stats(&self) -> ReplicaStats {
        self.core.replica_stats()
    }

    /// How many shards this node handed back to their preferred owner
    /// as outgoing primary.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.core.repair.lock().expect("repair lock").demotions
    }

    /// The node this replica currently accepts ships for on `shard`
    /// (its ship origin), if established.
    #[must_use]
    pub fn origin_of(&self, shard: u32) -> Option<u64> {
        self.core
            .replica
            .lock()
            .expect("replica lock")
            .origins
            .get(&shard)
            .copied()
    }

    /// Bytes of sealed segments currently retained for seq-mode
    /// catch-up.
    #[must_use]
    pub fn retained_bytes(&self) -> usize {
        self.core.retainer.bytes()
    }

    /// Retained segments evicted to stay under the byte cap (those
    /// ranges fall back to cold-store catch-up).
    #[must_use]
    pub fn retainer_evictions(&self) -> u64 {
        self.core.retainer.evicted()
    }

    /// Catch-up chunks this node served as primary.
    #[must_use]
    pub fn catch_up_chunks_served(&self) -> u64 {
        self.core.catch_up_chunks_served.load(Ordering::Relaxed)
    }

    /// Ships rejected by the origin/continuity gate (gap, wrong origin,
    /// or mid-catch-up backpressure).
    #[must_use]
    pub fn ship_rejects(&self) -> u64 {
        self.core.ship_rejects.load(Ordering::Relaxed)
    }

    /// The embedded placement service (for explicit checkpoints,
    /// metrics, or in-process queries in tests and benches).
    #[must_use]
    pub fn service(&self) -> &Arc<PlacementService> {
        self.service.as_ref().expect("service alive until shutdown")
    }

    /// Orderly stop: drain the listener, stop the shipper and prober,
    /// shut the service down.
    pub fn shutdown(mut self) {
        self.teardown(false);
    }

    /// Crash-like stop for failover tests: the shipper and prober die
    /// *first* (nothing sealed after this call is shipped), then the
    /// listener closes. Replicas must recover from acked segments only.
    pub fn kill(mut self) {
        self.teardown(true);
    }

    fn teardown(&mut self, abrupt: bool) {
        self.stop.store(true, Ordering::SeqCst);
        if abrupt {
            // A crash ships nothing more: segments sealed from here on
            // are dropped unshipped, so replicas must make do with what
            // was already acknowledged.
            self.abandon.store(true, Ordering::SeqCst);
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        let mut service_down = false;
        if let Some(mut service) = self.service.take() {
            // Connection threads hold clones briefly while the drain
            // finishes; give them a moment before abandoning the unwrap.
            for _ in 0..100 {
                match Arc::try_unwrap(service) {
                    Ok(s) => {
                        let _ = s.shutdown();
                        service_down = true;
                        break;
                    }
                    Err(back) => {
                        service = back;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }
        // The service (and with it the seal hook's sender) is gone:
        // recv() now disconnects and the shipper exits. If the service
        // could not be reclaimed (a wedged connection thread), leak the
        // shipper rather than hang the teardown on its join.
        if let Some(h) = self.shipper.take() {
            if service_down {
                let _ = h.join();
            }
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        if self.server.is_some() || self.service.is_some() {
            self.teardown(true);
        }
    }
}

/// Ships each sealed segment to every replica of its shard, retrying
/// transient failures, and records fully-acked segments. Exits when the
/// seal channel disconnects (service shut down).
fn shipper_loop(
    core: &Arc<ClusterCore>,
    seals: &mpsc::Receiver<SealedSeg>,
    shipped: &Mutex<Vec<ShippedSeg>>,
    failures: &AtomicU64,
    abandon: &AtomicBool,
) {
    let mut conns: HashMap<u64, Client> = HashMap::new();
    while let Ok(seg) = seals.recv() {
        if abandon.load(Ordering::SeqCst) {
            continue;
        }
        if ship_one(core, &seg, &mut conns) {
            shipped.lock().expect("shipped lock").push(ShippedSeg {
                shard: seg.shard,
                seq: seg.seq,
                records: seg.records,
            });
        } else {
            failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Ships one segment to all current replicas of its shard. `true` once
/// every replica acked (vacuously true with no replicas).
fn ship_one(core: &Arc<ClusterCore>, seg: &SealedSeg, conns: &mut HashMap<u64, Client>) -> bool {
    const ATTEMPTS: usize = 5;
    for attempt in 0..ATTEMPTS {
        let map = core.map();
        let replicas: Vec<u64> = map
            .replicas_of(seg.shard)
            .iter()
            .copied()
            .filter(|&r| r != core.node_id)
            .collect();
        let ship = wire::SegmentShip {
            from_node: core.node_id,
            epoch: map.epoch,
            shard: seg.shard,
            seq: seg.seq,
            bytes: seg.bytes.clone(),
        };
        let mut all_ok = true;
        for replica in replicas {
            let Some(addr) = map.addr_of(replica).map(str::to_string) else {
                all_ok = false;
                continue;
            };
            let client = match conns.entry(replica) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    match Client::connect(addr.as_str(), ClientConfig::default()) {
                        Ok(c) => v.insert(c),
                        Err(_) => {
                            all_ok = false;
                            continue;
                        }
                    }
                }
            };
            match client.ship_segment(&ship) {
                Ok(()) => {}
                Err(NetError::WrongEpoch(new_map)) => {
                    core.adopt(&new_map);
                    all_ok = false;
                }
                Err(_) => {
                    conns.remove(&replica);
                    all_ok = false;
                }
            }
        }
        if all_ok {
            return true;
        }
        if attempt + 1 < ATTEMPTS {
            std::thread::sleep(Duration::from_millis(10 << attempt));
        }
    }
    false
}

/// Per-prober settings that don't change after startup.
struct ProberKnobs {
    /// Listener address announced in v6 heartbeats (drives join).
    advertised: String,
    /// Liveness deadline for the demotion state machine, in micros.
    deadline_micros: u64,
    /// Cold catch-up chunk size.
    catch_up_max_records: u32,
}

/// Heartbeats every peer on a cadence, recording answered probes as
/// sightings and chasing higher epochs seen in acks with a map fetch.
/// Between probe sweeps it runs the two repair roles: the follower-side
/// catch-up puller (anti-entropy; the first round runs *before* the
/// first sleep so fresh clusters establish ship origins promptly) and
/// the primary-side demotion state machine.
fn prober_loop(
    core: &Arc<ClusterCore>,
    service: &Weak<PlacementService>,
    stop: &AtomicBool,
    interval: Duration,
    knobs: &ProberKnobs,
) {
    let mut conns: HashMap<u64, Client> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        pull_round(core, &mut conns, knobs.catch_up_max_records, stop);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        demotion_round(core, service, knobs.deadline_micros);
        let map = core.map();
        for n in &map.nodes {
            if n.node_id == core.node_id || stop.load(Ordering::SeqCst) {
                continue;
            }
            let client = match conns.entry(n.node_id) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    match Client::connect(n.addr.as_str(), ClientConfig::default()) {
                        Ok(c) => v.insert(c),
                        Err(_) => continue,
                    }
                }
            };
            match client.heartbeat_addr(core.node_id, map.epoch, &knobs.advertised) {
                Ok((peer_id, peer_epoch)) => {
                    core.mark_seen(peer_id);
                    if peer_epoch > core.epoch() {
                        if let Ok(new_map) = client.cluster_info() {
                            core.adopt(&new_map);
                        }
                    }
                }
                Err(_) => {
                    conns.remove(&n.node_id);
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// One demotion-state-machine evaluation by the current primary:
/// checkpoint to set a barrier when a candidate first qualifies, flip
/// the map once the candidate's reported floors meet it.
fn demotion_round(core: &Arc<ClusterCore>, service: &Weak<PlacementService>, deadline_micros: u64) {
    // Up to two steps per round: NeedCheckpoint then (rarely) an
    // immediate Demote when the candidate already reported the floors.
    for _ in 0..2 {
        let map = core.map();
        let now = core.now_micros();
        let step = core.repair.lock().expect("repair lock").plan_demotion(
            &map,
            core.node_id,
            core.replicas_degree,
            now,
            deadline_micros,
        );
        match step {
            DemotionStep::NeedCheckpoint { candidate } => {
                let Some(service) = service.upgrade() else {
                    return;
                };
                if service.checkpoint_now().is_err() {
                    return;
                }
                let floors = core
                    .store
                    .get()
                    .map(|s| s.read().absorbed().to_vec())
                    .unwrap_or_default();
                let wants = RepairState::wanted_shards(&map, core.node_id, candidate);
                core.repair
                    .lock()
                    .expect("repair lock")
                    .set_barrier(candidate, &wants, &floors);
            }
            DemotionStep::Demote { map: next, .. } => {
                core.adopt(&next);
                return;
            }
            DemotionStep::Waiting { .. } | DemotionStep::Idle => return,
        }
    }
}

/// The follower-side catch-up puller: for every shard this node should
/// track (current replica, or preferred primary waiting to take over),
/// run bounded catch-up rounds against the shard's primary whenever the
/// ship origin is missing/mismatched, a gap was flagged, or this node is
/// the shard's preferred owner chasing the demotion barrier.
fn pull_round(
    core: &Arc<ClusterCore>,
    conns: &mut HashMap<u64, Client>,
    max_records: u32,
    stop: &AtomicBool,
) {
    let map = core.map();
    for shard in 0..map.shards {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Some(primary) = map.primary_of(shard) else {
            continue;
        };
        if primary == core.node_id {
            continue;
        }
        let preferred_here = preferred_primary(&map, shard) == Some(core.node_id);
        let in_scope = preferred_here || map.replicas_of(shard).contains(&core.node_id);
        if !in_scope {
            continue;
        }
        let needs_pull = {
            let replica = core.replica.lock().expect("replica lock");
            preferred_here
                || replica.dirty.contains(&shard)
                || replica.origins.get(&shard) != Some(&primary)
        };
        if !needs_pull {
            continue;
        }
        let Some(addr) = map.addr_of(primary).map(str::to_string) else {
            continue;
        };
        let client = match conns.entry(primary) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match Client::connect(addr.as_str(), ClientConfig::default()) {
                    Ok(c) => v.insert(c),
                    Err(_) => continue,
                }
            }
        };
        match pull_shard(core, client, shard, primary, max_records) {
            Ok(Some(done)) => {
                let _ = client.catch_up_done(&done);
            }
            Ok(None) => {}
            Err(NetError::WrongEpoch(new_map)) => {
                core.adopt(&new_map);
                return;
            }
            Err(_) => {
                conns.remove(&primary);
            }
        }
    }
}

/// Runs catch-up rounds for one shard until done or a per-tick chunk
/// budget runs out. Returns the `CatchUpDone` report to send when a
/// round completed.
fn pull_shard(
    core: &Arc<ClusterCore>,
    client: &Client,
    shard: u32,
    primary: u64,
    max_records: u32,
) -> Result<Option<wire::CatchUpDone>, NetError> {
    const CHUNK_BUDGET: usize = 256;
    {
        let mut replica = core.replica.lock().expect("replica lock");
        replica.catching.insert(shard);
    }
    let result = pull_shard_inner(core, client, shard, primary, max_records, CHUNK_BUDGET);
    let mut replica = core.replica.lock().expect("replica lock");
    replica.catching.remove(&shard);
    if matches!(result, Ok(Some(_))) {
        replica.dirty.remove(&shard);
        replica.origins.insert(shard, primary);
        let dir = replica.store.dir().to_path_buf();
        let origins = replica.origins.clone();
        drop(replica);
        let _ = catchup::save_origins(&dir, &origins);
    }
    result
}

fn pull_shard_inner(
    core: &Arc<ClusterCore>,
    client: &Client,
    shard: u32,
    primary: u64,
    max_records: u32,
    chunk_budget: usize,
) -> Result<Option<wire::CatchUpDone>, NetError> {
    let mut first = true;
    for _ in 0..chunk_budget {
        // Plan the request: floor only counts if it is already in the
        // primary's sequence space; the cold cursor is the union max
        // over both local stores, recomputed each chunk (crash-safe
        // resume without a persisted cursor).
        let (after_seq, after_ts) = {
            let service = core.store.get().map(|s| s.read());
            let replica = core.replica.lock().expect("replica lock");
            let after_seq = if replica.origins.get(&shard) == Some(&primary) {
                replica
                    .store
                    .absorbed()
                    .get(shard as usize)
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            };
            let after_ts = catchup::shard_cursor(
                &replica.store,
                service.as_deref(),
                core.shards,
                shard,
            )
            .unwrap_or(0);
            (after_seq, after_ts)
        };
        let req = wire::CatchUpReq {
            node_id: core.node_id,
            shard,
            after_seq,
            after_ts,
            include_ties: first,
            max_records,
        };
        first = false;
        let chunk = client.catch_up(&req)?;
        let done = chunk.done;
        let floor_seq = chunk.floor_seq;
        let applied = {
            let service = core.store.get().map(|s| s.read());
            let mut replica = core.replica.lock().expect("replica lock");
            match chunk.data {
                wire::CatchUpData::Segment { seq, bytes } => {
                    let wal_dir = replica.wal_dir.clone();
                    let shards = core.shards;
                    catchup::apply_segment_chunk(
                        &mut replica.store,
                        &wal_dir,
                        shards,
                        shard,
                        seq,
                        &bytes,
                        None,
                    )
                }
                wire::CatchUpData::Cold(records) => catchup::apply_cold_records(
                    &mut replica.store,
                    service.as_deref(),
                    core.shards,
                    shard,
                    &records,
                    done.then_some(floor_seq),
                    None,
                ),
            }
        };
        match applied {
            Ok(records) => {
                let mut replica = core.replica.lock().expect("replica lock");
                replica.records_applied += records;
            }
            Err(_) => return Ok(None),
        }
        if done {
            let (floor, max_ts) = {
                let replica = core.replica.lock().expect("replica lock");
                let floor = replica
                    .store
                    .absorbed()
                    .get(shard as usize)
                    .copied()
                    .unwrap_or(0);
                let max_ts = replica
                    .store
                    .max_timestamp_matching(catchup::cold_pred(core.shards, shard))
                    .ok()
                    .flatten()
                    .unwrap_or(0);
                (floor, max_ts)
            };
            return Ok(Some(wire::CatchUpDone {
                node_id: core.node_id,
                shard,
                floor_seq: floor,
                max_ts,
            }));
        }
    }
    Ok(None)
}
