//! One cluster node: a [`PlacementService`] behind a cluster-aware
//! [`NetServer`], plus the three background roles that make it a
//! *replicated* node — the WAL shipper (primary side), the replica
//! store (follower side), and the failover controller.
//!
//! ```text
//!        seal hook (checkpoint actor)        peers
//!             │ (shard, seq, bytes)            ▲
//!             ▼                                │ heartbeats
//!        shipper thread ── ShipSegment ──► replicas
//!                                              │ ShipAck
//!        prober thread  ── Heartbeat ──────────┘
//!             │ sightings
//!             ▼
//!        failover actor (service reactor): silence > deadline
//!             └─► promote: bump epoch, own the dead node's shards
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use geomancy_net::wire::{
    self, decode_heartbeat, decode_ship_segment, encode_cluster_info_resp, encode_heartbeat,
    encode_ship_ack, encode_wrong_epoch,
};
use geomancy_net::{
    Client, ClientConfig, ClusterHandler, ClusterMap, NetConfig, NetError, NetServer, WireStatus,
};
use geomancy_runtime::{Actor, Ctx};
use geomancy_serve::{PlacementService, SealHook, ServeConfig, StoreSettings};
use geomancy_sim::record::FileId;
use geomancy_store::{PagedStore, StoreConfig};

use crate::map::{bootstrap_map, promote, shard_for};

/// Everything that can go wrong bringing a node up.
#[derive(Debug)]
pub enum ClusterNodeError {
    /// The peer list does not name this node.
    SelfNotInPeers(u64),
    /// Filesystem or socket failure during startup.
    Io(std::io::Error),
    /// The replica store failed to open.
    Store(String),
}

impl std::fmt::Display for ClusterNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterNodeError::SelfNotInPeers(id) => {
                write!(f, "peer list does not include this node (id {id})")
            }
            ClusterNodeError::Io(e) => write!(f, "cluster node startup I/O: {e}"),
            ClusterNodeError::Store(e) => write!(f, "replica store: {e}"),
        }
    }
}

impl std::error::Error for ClusterNodeError {}

impl From<std::io::Error> for ClusterNodeError {
    fn from(e: std::io::Error) -> ClusterNodeError {
        ClusterNodeError::Io(e)
    }
}

/// Configuration of one [`ClusterNode`].
#[derive(Debug, Clone)]
pub struct ClusterNodeConfig {
    /// This node's stable id (must appear in `peers`).
    pub node_id: u64,
    /// Address to bind the listener on (may be `ip:0`; peers route by
    /// the *advertised* address in `peers`).
    pub listen: String,
    /// Every cluster member as `(node_id, advertised address)`,
    /// including this node. All members must agree on this list — the
    /// epoch-1 map is computed from it deterministically.
    pub peers: Vec<(u64, String)>,
    /// Replication degree: followers per shard beyond the primary.
    pub replicas: usize,
    /// Shard count (also the placement service's ingest shard count).
    pub shards: u32,
    /// Base directory; the node keeps `wal/`, `store/`, `replica-wal/`
    /// and `replica-store/` underneath it.
    pub dir: PathBuf,
    /// Cadence of outgoing heartbeat probes, in microseconds.
    pub heartbeat_micros: u64,
    /// Primary silence past this deadline triggers promotion.
    pub failover_after_micros: u64,
    /// Template for the embedded placement service. `shards`,
    /// `node_id`, `wal_dir`, the store directory, and `seal_hook` are
    /// overridden by the cluster layer; everything else (DRL config,
    /// batching, admission, checkpoint cadence) is honored.
    pub serve: ServeConfig,
    /// Transport settings for the node's listener.
    pub net: NetConfig,
}

impl Default for ClusterNodeConfig {
    fn default() -> Self {
        ClusterNodeConfig {
            node_id: 1,
            listen: "127.0.0.1:0".to_string(),
            peers: vec![(1, "127.0.0.1:0".to_string())],
            replicas: 1,
            shards: 4,
            dir: PathBuf::from("geomancy-node"),
            heartbeat_micros: 100_000,
            failover_after_micros: 500_000,
            serve: ServeConfig::default(),
            net: NetConfig::default(),
        }
    }
}

/// One WAL segment the shipper got acknowledged by *every* replica of
/// its shard — the durability unit of the replication protocol: records
/// in acked segments survive the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShippedSeg {
    /// Ingest shard the segment belongs to.
    pub shard: u32,
    /// WAL sequence number (monotonic per shard).
    pub seq: u64,
    /// Records the segment carried.
    pub records: u64,
}

/// Counters for the follower half of a node: segments applied into the
/// replica store and the per-shard absorb floors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Ship frames durably applied (exactly-once; re-sent segments at
    /// or under the floor count here too, but add no records).
    pub segments_applied: u64,
    /// Records added to the replica store.
    pub records_applied: u64,
    /// Total records in the replica store.
    pub total_records: u64,
    /// Per-shard absorb floors: every segment with `seq <=` the floor
    /// is durably in the replica store.
    pub floors: Vec<u64>,
}

/// The state shared between the listener's cluster hook, the shipper,
/// the prober, and the failover actor.
struct ClusterCore {
    node_id: u64,
    map: RwLock<ClusterMap>,
    replica: Mutex<ReplicaState>,
    /// Last time each peer was heard from — by an incoming heartbeat
    /// *or* an answered outgoing probe.
    seen: Mutex<HashMap<u64, Instant>>,
    promotions: AtomicU64,
    ship_rejects: AtomicU64,
}

struct ReplicaState {
    store: PagedStore,
    wal_dir: PathBuf,
    shards: usize,
    segments_applied: u64,
    records_applied: u64,
}

impl ClusterCore {
    fn epoch(&self) -> u64 {
        self.map.read().expect("map lock").epoch
    }

    fn map(&self) -> ClusterMap {
        self.map.read().expect("map lock").clone()
    }

    /// Adopts `map` if strictly newer.
    fn adopt(&self, map: &ClusterMap) -> bool {
        let mut held = self.map.write().expect("map lock");
        if map.epoch > held.epoch {
            *held = map.clone();
            true
        } else {
            false
        }
    }

    fn mark_seen(&self, node: u64) {
        self.seen
            .lock()
            .expect("seen lock")
            .insert(node, Instant::now());
    }

    /// Peers (other than us) silent for longer than `deadline` that
    /// still hold primaryship of at least one shard.
    fn silent_primaries(&self, deadline: Duration) -> Vec<u64> {
        let map = self.map.read().expect("map lock");
        let seen = self.seen.lock().expect("seen lock");
        map.nodes
            .iter()
            .map(|n| n.node_id)
            .filter(|&id| id != self.node_id)
            .filter(|&id| !map.shards_owned_by(id).is_empty())
            .filter(|id| seen.get(id).is_none_or(|at| at.elapsed() > deadline))
            .collect()
    }

    /// Promotes this node over `dead`'s shards if it is first in line;
    /// returns the new epoch when the map changed.
    fn try_promote(&self, dead: u64) -> Option<u64> {
        let mut held = self.map.write().expect("map lock");
        let next = promote(&held, dead, self.node_id)?;
        let epoch = next.epoch;
        *held = next;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        Some(epoch)
    }

    /// Durably applies one shipped segment: write the bytes under a
    /// temp name, rename into the replica WAL, fsync, absorb into the
    /// replica store. Segments at or under the manifest floor are
    /// deleted unreplayed by the absorb — re-sent segments are
    /// exactly-once by construction.
    fn apply_ship(&self, ship: &wire::SegmentShip) -> Result<(), std::io::Error> {
        let mut replica = self.replica.lock().expect("replica lock");
        let dest = geomancy_replaydb::segment_path(&replica.wal_dir, ship.shard as usize, ship.seq);
        let tmp = replica
            .wal_dir
            .join(format!("ship-{}-{}.tmp", ship.shard, ship.seq));
        std::fs::write(&tmp, &ship.bytes)?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        std::fs::rename(&tmp, &dest)?;
        std::fs::File::open(&replica.wal_dir)?.sync_all()?;
        let shards = replica.shards;
        let wal_dir = replica.wal_dir.clone();
        let report = replica
            .store
            .absorb_segments(&wal_dir, shards, None)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        replica.segments_applied += 1;
        replica.records_applied += report.records_absorbed;
        Ok(())
    }

    fn replica_stats(&self) -> ReplicaStats {
        let replica = self.replica.lock().expect("replica lock");
        ReplicaStats {
            segments_applied: replica.segments_applied,
            records_applied: replica.records_applied,
            total_records: replica.store.total_records(),
            floors: replica.store.absorbed().to_vec(),
        }
    }
}

impl ClusterHandler for ClusterCore {
    fn owns(&self, fid: FileId) -> bool {
        let map = self.map.read().expect("map lock");
        map.primary_of(shard_for(fid, map.shards)) == Some(self.node_id)
    }

    fn wrong_epoch_payload(&self) -> Vec<u8> {
        encode_wrong_epoch(&self.map.read().expect("map lock"))
    }

    fn cluster_info_payload(&self) -> Vec<u8> {
        encode_cluster_info_resp(&self.map.read().expect("map lock"))
    }

    fn on_ship(&self, payload: &[u8]) -> Vec<u8> {
        let ship = match decode_ship_segment(payload) {
            Ok(ship) => ship,
            Err(_) => return encode_ship_ack(WireStatus::BadRequest, 0, 0, None),
        };
        let map = self.map();
        if ship.epoch < map.epoch {
            self.ship_rejects.fetch_add(1, Ordering::Relaxed);
            return encode_ship_ack(WireStatus::WrongEpoch, ship.shard, ship.seq, Some(&map));
        }
        self.mark_seen(ship.from_node);
        match self.apply_ship(&ship) {
            Ok(()) => encode_ship_ack(WireStatus::Ok, ship.shard, ship.seq, None),
            Err(_) => encode_ship_ack(WireStatus::Internal, ship.shard, ship.seq, None),
        }
    }

    fn on_heartbeat(&self, payload: &[u8]) -> Vec<u8> {
        if let Ok((peer, _epoch)) = decode_heartbeat(payload) {
            self.mark_seen(peer);
        }
        encode_heartbeat(self.node_id, self.epoch())
    }
}

/// The failover controller: a reactor actor (co-located on the
/// placement service's pool) that checks sighting deadlines on a timer
/// and promotes this node over silent primaries it is first in line
/// for. Promotion only rewrites the map; correction of *peers* happens
/// through heartbeat acks (stale nodes see the higher epoch and fetch
/// the map), and of *clients* through `WrongEpoch` replies.
struct FailoverActor {
    core: Arc<ClusterCore>,
    deadline: Duration,
    check_every_micros: u64,
}

impl Actor for FailoverActor {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Grace period: nobody is "silent" before a full deadline has
        // elapsed from node start.
        let now = Instant::now();
        let mut seen = self.core.seen.lock().expect("seen lock");
        for n in &self.core.map().nodes {
            seen.entry(n.node_id).or_insert(now);
        }
        drop(seen);
        ctx.set_timer(self.check_every_micros, 0);
    }

    fn on_msg(&mut self, (): (), _ctx: &mut Ctx<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        for dead in self.core.silent_primaries(self.deadline) {
            if self.core.try_promote(dead).is_some() {
                // The epoch bump is the whole protocol: requests routed
                // on the old map now answer WrongEpoch with this map.
            }
        }
        ctx.set_timer(self.check_every_micros, 0);
    }
}

/// A sealed segment handed from the checkpoint actor's seal hook to the
/// shipper thread.
struct SealedSeg {
    shard: u32,
    seq: u64,
    records: u64,
    bytes: Vec<u8>,
}

/// One running cluster node. Dropping it without calling
/// [`ClusterNode::shutdown`] or [`ClusterNode::kill`] leaks the
/// background threads for the life of the process.
pub struct ClusterNode {
    core: Arc<ClusterCore>,
    service: Option<Arc<PlacementService>>,
    server: Option<NetServer>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    abandon: Arc<AtomicBool>,
    shipper: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    shipped: Arc<Mutex<Vec<ShippedSeg>>>,
    ship_failures: Arc<AtomicU64>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("node_id", &self.core.node_id)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Brings the node up: opens the replica store, starts the
    /// placement service with the seal hook wired, binds the
    /// cluster-aware listener, and spawns the shipper, prober, and
    /// failover actor.
    ///
    /// # Errors
    ///
    /// Typed [`ClusterNodeError`]s for a bad peer list, store, or bind
    /// failure.
    pub fn start(config: ClusterNodeConfig) -> Result<ClusterNode, ClusterNodeError> {
        if !config.peers.iter().any(|(id, _)| *id == config.node_id) {
            return Err(ClusterNodeError::SelfNotInPeers(config.node_id));
        }
        let map = bootstrap_map(&config.peers, config.shards, config.replicas);
        let wal_dir = config.dir.join("wal");
        let store_dir = config.dir.join("store");
        let replica_wal = config.dir.join("replica-wal");
        let replica_store_dir = config.dir.join("replica-store");
        std::fs::create_dir_all(&replica_wal)?;

        let store_settings = config.serve.store.clone().unwrap_or_default();
        let (replica_store, _recovery) = PagedStore::open(
            &replica_store_dir,
            StoreConfig {
                page_size: store_settings.page_size,
                cache_pages: store_settings.cache_pages,
            },
        )
        .map_err(|e| ClusterNodeError::Store(e.to_string()))?;

        let core = Arc::new(ClusterCore {
            node_id: config.node_id,
            map: RwLock::new(map),
            replica: Mutex::new(ReplicaState {
                store: replica_store,
                wal_dir: replica_wal,
                shards: config.shards as usize,
                segments_applied: 0,
                records_applied: 0,
            }),
            seen: Mutex::new(HashMap::new()),
            promotions: AtomicU64::new(0),
            ship_rejects: AtomicU64::new(0),
        });

        // Seal hook: runs on the checkpoint actor's worker in the
        // absorb window, while the sealed segment file still exists.
        // Read the bytes (and record count) synchronously, hand them to
        // the shipper thread, return.
        let (seal_tx, seal_rx) = mpsc::channel::<SealedSeg>();
        let hook = SealHook(Arc::new(move |shard: usize, seq: u64, path: &Path| {
            let Ok(bytes) = std::fs::read(path) else {
                return;
            };
            let records = geomancy_replaydb::recover(path)
                .map(|(_, replayed)| replayed)
                .unwrap_or(0);
            let _ = seal_tx.send(SealedSeg {
                shard: shard as u32,
                seq,
                records,
                bytes,
            });
        }));

        let service = Arc::new(PlacementService::start(ServeConfig {
            shards: config.shards as usize,
            node_id: config.node_id,
            wal_dir: Some(wal_dir),
            store: Some(StoreSettings {
                dir: store_dir,
                ..store_settings
            }),
            seal_hook: Some(hook),
            ..config.serve
        }));

        // The failover controller shares the service's reactor pool:
        // one pool runs the whole node.
        let (fail_addr, _fail_handle) = service.reactor().spawn(
            "cluster-failover",
            8,
            FailoverActor {
                core: Arc::clone(&core),
                deadline: Duration::from_micros(config.failover_after_micros),
                check_every_micros: config.heartbeat_micros.max(1),
            },
        );
        drop(fail_addr);

        let server = NetServer::start_with_cluster(
            config.listen.as_str(),
            Arc::clone(&service),
            config.net.clone(),
            Arc::clone(&core) as Arc<dyn ClusterHandler>,
        )
        .map_err(ClusterNodeError::Io)?;
        let addr = server.local_addr();

        let stop = Arc::new(AtomicBool::new(false));
        let abandon = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(Mutex::new(Vec::new()));
        let ship_failures = Arc::new(AtomicU64::new(0));
        let shipper = {
            let core = Arc::clone(&core);
            let shipped = Arc::clone(&shipped);
            let failures = Arc::clone(&ship_failures);
            let abandon = Arc::clone(&abandon);
            std::thread::Builder::new()
                .name(format!("geomancy-ship-{}", config.node_id))
                .spawn(move || shipper_loop(&core, &seal_rx, &shipped, &failures, &abandon))
                .expect("spawn shipper")
        };
        let prober = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            let interval = Duration::from_micros(config.heartbeat_micros.max(1));
            std::thread::Builder::new()
                .name(format!("geomancy-probe-{}", config.node_id))
                .spawn(move || prober_loop(&core, &stop, interval))
                .expect("spawn prober")
        };

        Ok(ClusterNode {
            core,
            service: Some(service),
            server: Some(server),
            addr,
            stop,
            abandon,
            shipper: Some(shipper),
            prober: Some(prober),
            shipped,
            ship_failures,
        })
    }

    /// This node's stable id.
    #[must_use]
    pub fn node_id(&self) -> u64 {
        self.core.node_id
    }

    /// The bound listener address.
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts advertising `Draining` on this node's listener without
    /// stopping anything: placement requests are refused with the
    /// fail-over status while heartbeats, shipping, and cluster-info
    /// keep answering. The decommission handshake — drain first so
    /// clients move, then [`shutdown`](ClusterNode::shutdown).
    pub fn begin_drain(&self) {
        if let Some(server) = &self.server {
            server.begin_drain();
        }
    }

    /// The node's current map view.
    #[must_use]
    pub fn map(&self) -> ClusterMap {
        self.core.map()
    }

    /// The node's current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// How many times this node promoted itself over a silent primary.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.core.promotions.load(Ordering::Relaxed)
    }

    /// Segments fully acknowledged by every replica of their shard —
    /// the records guaranteed to survive this node's death.
    #[must_use]
    pub fn shipped(&self) -> Vec<ShippedSeg> {
        self.shipped.lock().expect("shipped lock").clone()
    }

    /// Segments the shipper gave up on after retries.
    #[must_use]
    pub fn ship_failures(&self) -> u64 {
        self.ship_failures.load(Ordering::Relaxed)
    }

    /// Counters for the follower half of this node.
    #[must_use]
    pub fn replica_stats(&self) -> ReplicaStats {
        self.core.replica_stats()
    }

    /// The embedded placement service (for explicit checkpoints,
    /// metrics, or in-process queries in tests and benches).
    #[must_use]
    pub fn service(&self) -> &Arc<PlacementService> {
        self.service.as_ref().expect("service alive until shutdown")
    }

    /// Orderly stop: drain the listener, stop the shipper and prober,
    /// shut the service down.
    pub fn shutdown(mut self) {
        self.teardown(false);
    }

    /// Crash-like stop for failover tests: the shipper and prober die
    /// *first* (nothing sealed after this call is shipped), then the
    /// listener closes. Replicas must recover from acked segments only.
    pub fn kill(mut self) {
        self.teardown(true);
    }

    fn teardown(&mut self, abrupt: bool) {
        self.stop.store(true, Ordering::SeqCst);
        if abrupt {
            // A crash ships nothing more: segments sealed from here on
            // are dropped unshipped, so replicas must make do with what
            // was already acknowledged.
            self.abandon.store(true, Ordering::SeqCst);
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        let mut service_down = false;
        if let Some(mut service) = self.service.take() {
            // Connection threads hold clones briefly while the drain
            // finishes; give them a moment before abandoning the unwrap.
            for _ in 0..100 {
                match Arc::try_unwrap(service) {
                    Ok(s) => {
                        let _ = s.shutdown();
                        service_down = true;
                        break;
                    }
                    Err(back) => {
                        service = back;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }
        // The service (and with it the seal hook's sender) is gone:
        // recv() now disconnects and the shipper exits. If the service
        // could not be reclaimed (a wedged connection thread), leak the
        // shipper rather than hang the teardown on its join.
        if let Some(h) = self.shipper.take() {
            if service_down {
                let _ = h.join();
            }
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        if self.server.is_some() || self.service.is_some() {
            self.teardown(true);
        }
    }
}

/// Ships each sealed segment to every replica of its shard, retrying
/// transient failures, and records fully-acked segments. Exits when the
/// seal channel disconnects (service shut down).
fn shipper_loop(
    core: &Arc<ClusterCore>,
    seals: &mpsc::Receiver<SealedSeg>,
    shipped: &Mutex<Vec<ShippedSeg>>,
    failures: &AtomicU64,
    abandon: &AtomicBool,
) {
    let mut conns: HashMap<u64, Client> = HashMap::new();
    while let Ok(seg) = seals.recv() {
        if abandon.load(Ordering::SeqCst) {
            continue;
        }
        if ship_one(core, &seg, &mut conns) {
            shipped.lock().expect("shipped lock").push(ShippedSeg {
                shard: seg.shard,
                seq: seg.seq,
                records: seg.records,
            });
        } else {
            failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Ships one segment to all current replicas of its shard. `true` once
/// every replica acked (vacuously true with no replicas).
fn ship_one(core: &Arc<ClusterCore>, seg: &SealedSeg, conns: &mut HashMap<u64, Client>) -> bool {
    const ATTEMPTS: usize = 5;
    for attempt in 0..ATTEMPTS {
        let map = core.map();
        let replicas: Vec<u64> = map
            .replicas_of(seg.shard)
            .iter()
            .copied()
            .filter(|&r| r != core.node_id)
            .collect();
        let ship = wire::SegmentShip {
            from_node: core.node_id,
            epoch: map.epoch,
            shard: seg.shard,
            seq: seg.seq,
            bytes: seg.bytes.clone(),
        };
        let mut all_ok = true;
        for replica in replicas {
            let Some(addr) = map.addr_of(replica).map(str::to_string) else {
                all_ok = false;
                continue;
            };
            let client = match conns.entry(replica) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    match Client::connect(addr.as_str(), ClientConfig::default()) {
                        Ok(c) => v.insert(c),
                        Err(_) => {
                            all_ok = false;
                            continue;
                        }
                    }
                }
            };
            match client.ship_segment(&ship) {
                Ok(()) => {}
                Err(NetError::WrongEpoch(new_map)) => {
                    core.adopt(&new_map);
                    all_ok = false;
                }
                Err(_) => {
                    conns.remove(&replica);
                    all_ok = false;
                }
            }
        }
        if all_ok {
            return true;
        }
        if attempt + 1 < ATTEMPTS {
            std::thread::sleep(Duration::from_millis(10 << attempt));
        }
    }
    false
}

/// Heartbeats every peer on a cadence, recording answered probes as
/// sightings and chasing higher epochs seen in acks with a map fetch.
fn prober_loop(core: &Arc<ClusterCore>, stop: &AtomicBool, interval: Duration) {
    let mut conns: HashMap<u64, Client> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        let map = core.map();
        for n in &map.nodes {
            if n.node_id == core.node_id || stop.load(Ordering::SeqCst) {
                continue;
            }
            let client = match conns.entry(n.node_id) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    match Client::connect(n.addr.as_str(), ClientConfig::default()) {
                        Ok(c) => v.insert(c),
                        Err(_) => continue,
                    }
                }
            };
            match client.heartbeat(core.node_id, map.epoch) {
                Ok((peer_id, peer_epoch)) => {
                    core.mark_seen(peer_id);
                    if peer_epoch > core.epoch() {
                        if let Ok(new_map) = client.cluster_info() {
                            core.adopt(&new_map);
                        }
                    }
                }
                Err(_) => {
                    conns.remove(&n.node_id);
                }
            }
        }
        std::thread::sleep(interval);
    }
}
