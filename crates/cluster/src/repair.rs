//! Membership repair: the demotion state machine that hands shards back
//! to their preferred owner once a rejoined node has caught up.
//!
//! Only the *current primary* of a shard ever demotes it — a per-shard
//! single decision-maker, so two nodes never hand the same shard to
//! different owners in the same epoch. The rule is deterministic over
//! `(ClusterMap, liveness, reported catch-up floors)`:
//!
//! 1. A candidate is a live node that is the [`preferred
//!    primary`](crate::map::preferred_primary) of at least one shard we
//!    currently hold.
//! 2. When a candidate first qualifies, we checkpoint (sealing the hot
//!    tail into shipped/retained segments) and record the post-checkpoint
//!    absorb floors as the **barrier** — the durable state the candidate
//!    must reach before taking over.
//! 3. Once the candidate's reported [`CatchUpDone`] floors meet the
//!    barrier on every wanted shard, we apply [`crate::map::demote`]:
//!    epoch bump, preferred ring restored, propagated through heartbeat
//!    acks and `WrongEpoch` replies like every other map transition.
//!
//! Losing liveness resets the candidate's barrier; records ingested
//! between the barrier checkpoint and the flip remain durable on the
//! outgoing primary (every ship-acked record is at or below the barrier,
//! so the handover never loses acked data).
//!
//! All timing flows through explicit `now_micros` arguments — the state
//! machine is a pure function of its inputs, which is what lets the
//! virtual-time harness script it deterministically.
//!
//! [`CatchUpDone`]: geomancy_net::wire::CatchUpDone

use std::collections::HashMap;

use geomancy_net::ClusterMap;

use crate::map::{demote, preferred_primary};

/// Liveness sightings, reported catch-up floors, and demotion barriers —
/// the mutable half of the repair state machine. Wrap it in a lock to
/// share between threads; the harness drives it single-threaded.
#[derive(Debug, Default)]
pub struct RepairState {
    /// Last sighting of each peer, in the caller's clock domain.
    seen: HashMap<u64, u64>,
    /// Latest `CatchUpDone` floor per `(node, shard)`.
    peer_floors: HashMap<(u64, u32), u64>,
    /// Post-checkpoint floor barrier per candidate: `shard -> floor` the
    /// candidate must reach.
    barriers: HashMap<u64, HashMap<u32, u64>>,
    /// Demotions this node has applied as outgoing primary.
    pub demotions: u64,
}

/// What [`RepairState::plan_demotion`] decided.
#[derive(Debug)]
pub enum DemotionStep {
    /// Nothing to do: no live candidate wants any of our shards.
    Idle,
    /// A candidate qualified for the first time: the caller must
    /// checkpoint, then call [`RepairState::set_barrier`] with the
    /// post-checkpoint floors.
    NeedCheckpoint {
        /// The candidate awaiting a barrier.
        candidate: u64,
    },
    /// The candidate met its barrier on every wanted shard: the caller
    /// adopts this map (epoch already bumped).
    Demote {
        /// The new owner.
        candidate: u64,
        /// The rewritten map to adopt and propagate.
        map: ClusterMap,
    },
    /// A barrier exists but the candidate has not met it yet.
    Waiting {
        /// The candidate being waited on.
        candidate: u64,
    },
}

impl RepairState {
    /// Records a sighting of `node` at `now_micros`.
    pub fn mark_seen(&mut self, node: u64, now_micros: u64) {
        let at = self.seen.entry(node).or_insert(now_micros);
        *at = (*at).max(now_micros);
    }

    /// Last sighting of `node`, if any.
    #[must_use]
    pub fn last_seen(&self, node: u64) -> Option<u64> {
        self.seen.get(&node).copied()
    }

    /// Whether `node` was sighted within `deadline_micros` of `now`.
    #[must_use]
    pub fn live(&self, node: u64, now_micros: u64, deadline_micros: u64) -> bool {
        self.seen
            .get(&node)
            .is_some_and(|&at| now_micros.saturating_sub(at) <= deadline_micros)
    }

    /// Records a completed catch-up round reported by `node` for
    /// `shard`, with the floor it durably committed.
    pub fn record_done(&mut self, node: u64, shard: u32, floor: u64) {
        let f = self.peer_floors.entry((node, shard)).or_insert(floor);
        *f = (*f).max(floor);
    }

    /// The latest floor `node` reported for `shard`.
    #[must_use]
    pub fn peer_floor(&self, node: u64, shard: u32) -> Option<u64> {
        self.peer_floors.get(&(node, shard)).copied()
    }

    /// Installs the post-checkpoint barrier for `candidate`: `floors[s]`
    /// is this node's absorb floor for shard `s` after the checkpoint.
    pub fn set_barrier(&mut self, candidate: u64, wants: &[u32], floors: &[u64]) {
        let barrier = wants
            .iter()
            .map(|&s| (s, floors.get(s as usize).copied().unwrap_or(0)))
            .collect();
        self.barriers.insert(candidate, barrier);
    }

    /// Drops `candidate`'s barrier (it died or no longer wants shards).
    pub fn clear_barrier(&mut self, candidate: u64) {
        self.barriers.remove(&candidate);
    }

    /// Shards `map` says `self_id` currently owns but `candidate`
    /// should: the handover set.
    #[must_use]
    pub fn wanted_shards(map: &ClusterMap, self_id: u64, candidate: u64) -> Vec<u32> {
        map.assignments
            .iter()
            .filter(|a| a.primary == self_id && preferred_primary(map, a.shard) == Some(candidate))
            .map(|a| a.shard)
            .collect()
    }

    /// One step of the demotion state machine, evaluated by the current
    /// primary. Scans candidates in ascending node-id order and returns
    /// the first actionable step; liveness loss clears barriers as it
    /// goes.
    #[must_use]
    pub fn plan_demotion(
        &mut self,
        map: &ClusterMap,
        self_id: u64,
        replicas: usize,
        now_micros: u64,
        deadline_micros: u64,
    ) -> DemotionStep {
        let mut candidates: Vec<u64> = map
            .nodes
            .iter()
            .map(|n| n.node_id)
            .filter(|&id| id != self_id)
            .collect();
        candidates.sort_unstable();
        for candidate in candidates {
            let wants = Self::wanted_shards(map, self_id, candidate);
            if wants.is_empty() || !self.live(candidate, now_micros, deadline_micros) {
                self.clear_barrier(candidate);
                continue;
            }
            let Some(barrier) = self.barriers.get(&candidate) else {
                return DemotionStep::NeedCheckpoint { candidate };
            };
            let met = wants.iter().all(|&s| {
                let need = barrier.get(&s).copied().unwrap_or(u64::MAX);
                self.peer_floor(candidate, s).is_some_and(|f| f >= need)
            });
            if !met {
                return DemotionStep::Waiting { candidate };
            }
            if let Some(next) = demote(map, self_id, candidate, replicas) {
                self.clear_barrier(candidate);
                self.demotions += 1;
                return DemotionStep::Demote {
                    candidate,
                    map: next,
                };
            }
            self.clear_barrier(candidate);
        }
        DemotionStep::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{bootstrap_map, promote};

    fn peers() -> Vec<(u64, String)> {
        vec![(1, "a:1".into()), (2, "b:2".into()), (3, "c:3".into())]
    }

    #[test]
    fn demotion_runs_checkpoint_barrier_flip() {
        // Node 1 died, node 2 promoted over shards 0 and 3; node 1
        // rejoins and must earn them back through the barrier.
        let map = promote(&bootstrap_map(&peers(), 6, 1), 1, 2).unwrap();
        let mut state = RepairState::default();
        let deadline = 500_000;

        // Node 1 not yet sighted: idle.
        assert!(matches!(
            state.plan_demotion(&map, 2, 1, 1_000_000, deadline),
            DemotionStep::Idle
        ));

        // Sighted: first actionable step is the barrier checkpoint.
        state.mark_seen(1, 1_000_000);
        state.mark_seen(3, 1_000_000);
        let step = state.plan_demotion(&map, 2, 1, 1_000_000, deadline);
        let DemotionStep::NeedCheckpoint { candidate: 1 } = step else {
            panic!("expected NeedCheckpoint, got {step:?}");
        };
        // Post-checkpoint floors: shard 0 at 4, shard 3 at 2.
        let floors = vec![4, 0, 0, 2, 0, 0];
        state.set_barrier(1, &[0, 3], &floors);

        // Candidate behind the barrier: waiting.
        state.record_done(1, 0, 4);
        state.record_done(1, 3, 1);
        assert!(matches!(
            state.plan_demotion(&map, 2, 1, 1_100_000, deadline),
            DemotionStep::Waiting { candidate: 1 }
        ));

        // Floors meet the barrier: flip, epoch bump, preferred ring.
        state.record_done(1, 3, 2);
        let step = state.plan_demotion(&map, 2, 1, 1_200_000, deadline);
        let DemotionStep::Demote { candidate: 1, map: healed } = step else {
            panic!("expected Demote, got {step:?}");
        };
        assert_eq!(healed.epoch, map.epoch + 1);
        assert_eq!(healed.primary_of(0), Some(1));
        assert_eq!(healed.primary_of(3), Some(1));
        assert_eq!(state.demotions, 1);
        // Barrier consumed: planning against the healed map is idle.
        assert!(matches!(
            state.plan_demotion(&healed, 2, 1, 1_200_000, deadline),
            DemotionStep::Idle
        ));
    }

    #[test]
    fn liveness_loss_resets_the_barrier() {
        let map = promote(&bootstrap_map(&peers(), 6, 1), 1, 2).unwrap();
        let mut state = RepairState::default();
        let deadline = 500_000;
        state.mark_seen(1, 1_000_000);
        assert!(matches!(
            state.plan_demotion(&map, 2, 1, 1_000_000, deadline),
            DemotionStep::NeedCheckpoint { candidate: 1 }
        ));
        state.set_barrier(1, &[0, 3], &[4, 0, 0, 2, 0, 0]);
        // Node 1 goes silent past the deadline: barrier cleared, no
        // stale flip when it comes back with old floors.
        assert!(matches!(
            state.plan_demotion(&map, 2, 1, 2_000_000, deadline),
            DemotionStep::Idle
        ));
        state.mark_seen(1, 2_000_000);
        assert!(matches!(
            state.plan_demotion(&map, 2, 1, 2_000_000, deadline),
            DemotionStep::NeedCheckpoint { candidate: 1 }
        ));
    }

    #[test]
    fn floors_and_sightings_are_monotonic() {
        let mut state = RepairState::default();
        state.mark_seen(1, 100);
        state.mark_seen(1, 50);
        assert_eq!(state.last_seen(1), Some(100));
        state.record_done(1, 0, 9);
        state.record_done(1, 0, 3);
        assert_eq!(state.peer_floor(1, 0), Some(9));
        assert!(state.live(1, 150, 100));
        assert!(!state.live(1, 300, 100));
        assert!(!state.live(2, 0, u64::MAX));
    }
}
