//! Multi-node integration tests: wrong-epoch routing, exactly-once
//! segment shipping, stale-map adoption, and a full three-node
//! kill-the-primary failover with the zero-lost-acked-records check.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use geomancy_cluster::{
    bootstrap_map, reserve_loopback_addrs, shard_for, ClusterClient, ClusterError, ClusterNode,
    ClusterNodeConfig,
};
use geomancy_core::drl::DrlConfig;
use geomancy_net::wire::SegmentShip;
use geomancy_net::{Client, ClientConfig, NetError, ShardAssignment};
use geomancy_serve::{PlacementRequest, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// A fid that routes to `shard` under `shards`.
fn fid_in_shard(shard: u32, shards: u32) -> u64 {
    (0..)
        .find(|&f| shard_for(FileId(f), shards) == shard)
        .expect("some fid per shard")
}

fn test_serve() -> ServeConfig {
    ServeConfig {
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            train_window: 100,
            epochs: 5,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn node_config(
    node_id: u64,
    peers: &[(u64, String)],
    shards: u32,
    dir: PathBuf,
    failover_after_micros: u64,
) -> ClusterNodeConfig {
    let listen = peers
        .iter()
        .find(|(id, _)| *id == node_id)
        .map(|(_, a)| a.clone())
        .expect("self in peers");
    ClusterNodeConfig {
        node_id,
        listen,
        peers: peers.to_vec(),
        replicas: 1,
        shards,
        dir,
        heartbeat_micros: 50_000,
        failover_after_micros,
        serve: test_serve(),
        net: geomancy_net::NetConfig::default(),
        rejoin: false,
        retain_bytes: 64 << 20,
        catch_up_max_records: 4096,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("geomancy-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// A request a node does not own answers `WrongEpoch`, and the payload
/// carries a decodable map naming the real owner.
#[test]
fn wrong_epoch_reply_carries_decodable_map() {
    let addrs = reserve_loopback_addrs(2);
    let peers = vec![(1u64, addrs[0].clone()), (2u64, addrs[1].clone())];
    let dir = tmpdir("wrong-epoch");
    // Huge failover deadline: node 1 must not promote over absent node 2.
    let node = ClusterNode::start(node_config(1, &peers, 4, dir.join("n1"), u64::MAX / 4))
        .expect("start node 1");

    let c = Client::connect(node.local_addr(), ClientConfig::default()).expect("connect");
    // The bootstrap map gives shard 1 to node 2 (sorted ring [1, 2]).
    let foreign = fid_in_shard(1, 4);
    match c.ingest(0, &[rec(0, foreign)]) {
        Err(NetError::WrongEpoch(map)) => {
            assert_eq!(map.epoch, 1);
            assert_eq!(map.primary_of(1), Some(2));
            assert_eq!(map.addr_of(2), Some(addrs[1].as_str()));
        }
        other => panic!("expected WrongEpoch, got {other:?}"),
    }
    // A record the node does own is accepted.
    let owned = fid_in_shard(0, 4);
    c.ingest(0, &[rec(0, owned)]).expect("owned ingest");
    // ClusterInfo serves the full map to anyone who asks.
    let map = c.cluster_info().expect("cluster info");
    assert_eq!(map.nodes.len(), 2);
    assert_eq!(map.shards, 4);

    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-shipping an already-absorbed segment must not double-apply: the
/// replica's manifest floor turns the duplicate into a deleted orphan.
#[test]
fn reshipped_segment_applies_exactly_once() {
    let addrs = reserve_loopback_addrs(2);
    let peers = vec![(1u64, addrs[0].clone()), (2u64, addrs[1].clone())];
    let dir = tmpdir("reship");
    let node = ClusterNode::start(node_config(2, &peers, 4, dir.join("n2"), u64::MAX / 4))
        .expect("start node 2");

    // Build a real sealed WAL segment with ten records.
    let wal = dir.join("seed-wal");
    std::fs::create_dir_all(&wal).expect("wal dir");
    let mut w = geomancy_replaydb::WalWriter::open(wal.join("shard-0.wal")).expect("wal open");
    for i in 0..10u64 {
        w.append(i * 1_000, rec(i, i)).expect("append");
    }
    let seg = geomancy_replaydb::segment_path(&wal, 0, 1);
    w.seal_to(&seg).expect("seal");
    let bytes = std::fs::read(&seg).expect("segment bytes");

    let c = Client::connect(node.local_addr(), ClientConfig::default()).expect("connect");
    let ship = SegmentShip {
        from_node: 1,
        epoch: 1,
        shard: 0,
        seq: 1,
        bytes,
    };
    c.ship_segment(&ship).expect("first ship");
    let first = node.replica_stats();
    assert_eq!(first.records_applied, 10);
    assert_eq!(first.total_records, 10);
    assert!(first.floors[0] >= 1);

    // The retransmit is acked (idempotent) but adds nothing.
    c.ship_segment(&ship).expect("re-ship is acked");
    let second = node.replica_stats();
    assert_eq!(second.segments_applied, 2);
    assert_eq!(second.records_applied, 10);
    assert_eq!(second.total_records, 10);

    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lone surviving follower promotes itself over the silent primary's
/// shards, and a client on the honest bootstrap map fails over to it:
/// the dead primary's connect is refused, the promoted replica accepts.
#[test]
fn follower_promotes_over_silent_primary() {
    let addrs = reserve_loopback_addrs(2);
    let peers = vec![(1u64, addrs[0].clone()), (2u64, addrs[1].clone())];
    let dir = tmpdir("promotion");
    // Node 1 never starts; node 2 promotes after ~300 ms of silence.
    let node = ClusterNode::start(node_config(2, &peers, 4, dir.join("n2"), 300_000))
        .expect("start node 2");

    let deadline = Instant::now() + Duration::from_secs(10);
    while node.epoch() < 2 {
        assert!(Instant::now() < deadline, "follower never promoted");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(node.promotions(), 1);
    let promoted = node.map();
    assert_eq!(
        promoted.primary_of(0),
        Some(2),
        "node 2 owns everything now"
    );

    let bootstrap = bootstrap_map(&peers, 4, 1);
    let client = ClusterClient::from_map(bootstrap, ClientConfig::default());
    let f0 = fid_in_shard(0, 4);
    client
        .ingest(0, &[rec(1, f0)])
        .expect("failover to replica");

    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole end-to-end: three nodes, routed ingest and queries,
/// explicit checkpoints shipping sealed segments to replicas, then the
/// primary of shard 0 killed mid-stream. The first replica promotes
/// within the deadline and every record in a ship-acked segment is in
/// its replica store exactly once.
#[test]
fn three_node_failover_loses_no_acked_records() {
    let addrs = reserve_loopback_addrs(3);
    let peers: Vec<(u64, String)> = (0..3).map(|i| (i as u64 + 1, addrs[i].clone())).collect();
    let dir = tmpdir("three-node");
    // Sorted ring [1, 2, 3] over 3 shards: shard 0 → primary 1,
    // replica 2; shard 1 → primary 2, replica 3; shard 2 → primary 3,
    // replica 1.
    let shards = 3u32;
    let mut nodes: Vec<Option<ClusterNode>> = (1u64..=3)
        .map(|id| {
            Some(
                ClusterNode::start(node_config(
                    id,
                    &peers,
                    shards,
                    dir.join(format!("n{id}")),
                    400_000,
                ))
                .expect("start node"),
            )
        })
        .collect();

    let client = ClusterClient::connect(&[addrs[0].clone()], ClientConfig::default())
        .expect("bootstrap from seed");
    assert_eq!(client.map().epoch, 1);

    // Routed ingest: 900 records spread over every shard.
    for batch in 0..30u64 {
        let records: Vec<AccessRecord> = (0..30)
            .map(|i| rec(batch * 30 + i, batch * 30 + i))
            .collect();
        client
            .ingest(batch * 30_000_000, &records)
            .expect("routed ingest");
    }

    // Stale-map adoption: a crafted epoch-0 map mis-routes shard 0 to
    // node 3 (live, but not the owner). Node 3's WrongEpoch reply
    // carries the real epoch-1 map; the client adopts it, re-routes to
    // node 1, and the ingest lands.
    let mut crafted = client.map();
    crafted.epoch = 0;
    for a in &mut crafted.assignments {
        if a.shard == 0 {
            *a = ShardAssignment {
                shard: 0,
                primary: 3,
                replicas: vec![],
            };
        }
    }
    let stale_client = ClusterClient::from_map(crafted, ClientConfig::default());
    let f0 = fid_in_shard(0, shards);
    stale_client
        .ingest(900_000_000, &[rec(900, f0)])
        .expect("adopt newer map and re-route");
    assert_eq!(stale_client.map().epoch, 1, "WrongEpoch map adopted");

    // Checkpoint every node: seals WAL segments and hands them to the
    // shippers. Wait until node 1 (primary of shard 0) has its segment
    // acked by the replica.
    for node in nodes.iter().flatten() {
        node.service().checkpoint_now().expect("checkpoint");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while nodes[0].as_ref().unwrap().shipped().is_empty() {
        assert!(Instant::now() < deadline, "node 1 never got a ship ack");
        std::thread::sleep(Duration::from_millis(20));
    }
    let acked = nodes[0].as_ref().unwrap().shipped();
    assert!(
        acked.iter().all(|s| s.shard == 0),
        "node 1 only owns shard 0"
    );
    let acked_records: u64 = acked.iter().map(|s| s.records).sum();
    let acked_seq = acked.iter().map(|s| s.seq).max().unwrap();
    assert!(acked_records > 0);
    assert_eq!(nodes[0].as_ref().unwrap().ship_failures(), 0);

    // Train the two survivors-to-be so queries keep working after the
    // kill (each node trains on its own shard's telemetry).
    for node in [&nodes[1], &nodes[2]] {
        let c = Client::connect(node.as_ref().unwrap().local_addr(), ClientConfig::default())
            .expect("connect");
        c.retrain().expect("retrain survivor");
    }

    // Kill the primary of shard 0 and time the failover.
    let killed_at = Instant::now();
    nodes[0].take().unwrap().kill();
    let node2 = nodes[1].as_ref().unwrap();
    let promote_deadline = killed_at + Duration::from_secs(10);
    while node2.epoch() < 2 {
        assert!(
            Instant::now() < promote_deadline,
            "first replica never promoted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let elapsed = killed_at.elapsed();
    // Deadline gate: silence detection plus one heartbeat tick, with
    // slack for CI noise — well under 10× the configured deadline.
    assert!(
        elapsed < Duration::from_secs(4),
        "promotion took {elapsed:?}"
    );
    assert_eq!(node2.map().primary_of(0), Some(2));

    // Zero lost acked records: everything node 1 had acknowledged is in
    // node 2's replica store, exactly once. Node 2's replica WAL only
    // ever receives shard-0 segments (shard 1's replica is node 3,
    // shard 2's is node 1), so the totals must match exactly.
    let stats = node2.replica_stats();
    assert!(stats.floors[0] >= acked_seq, "acked segment not durable");
    assert_eq!(stats.records_applied, acked_records);
    assert_eq!(stats.total_records, acked_records);

    // The stale client re-routes shard 0 to the promoted node: ingest
    // and queries keep flowing (retry while the cluster settles).
    let f0 = fid_in_shard(0, shards);
    let settle = Instant::now() + Duration::from_secs(10);
    loop {
        match client.ingest(1_000_000_000, &[rec(9_000, f0)]) {
            Ok(()) => break,
            Err(ClusterError::Exhausted(_)) if Instant::now() < settle => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("post-failover ingest: {e}"),
        }
    }
    let reqs: Vec<PlacementRequest> = (0..12)
        .map(|i| PlacementRequest {
            fid: FileId(i),
            read_bytes: 1_000_000,
            write_bytes: 0,
        })
        .collect();
    let decisions = loop {
        match client.query_many(&reqs) {
            Ok(d) => break d,
            Err(ClusterError::Exhausted(_) | ClusterError::Net(_)) if Instant::now() < settle => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("post-failover query: {e}"),
        }
    };
    assert_eq!(decisions.len(), reqs.len());
    for (d, q) in decisions.iter().zip(&reqs) {
        assert_eq!(d.fid, q.fid, "decisions in request order");
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A draining node triggers failover: the drained candidate answers
/// `Draining` (a `retry_elsewhere` status) and the cluster client
/// walks on to the next candidate instead of retrying the same
/// connection. With no fallback candidate the drain surfaces as the
/// terminal error — proof the node *answered* rather than timing out.
#[test]
fn draining_node_fails_over_to_next_candidate() {
    use geomancy_net::WireStatus;

    let addrs = reserve_loopback_addrs(2);
    let peers = vec![(1u64, addrs[0].clone()), (2u64, addrs[1].clone())];
    let hour = 3_600_000_000u64;
    let n1 = ClusterNode::start(node_config(1, &peers, 1, tmpdir("drain-1"), hour)).unwrap();
    let n2 = ClusterNode::start(node_config(2, &peers, 1, tmpdir("drain-2"), hour)).unwrap();
    n2.begin_drain();

    let honest = bootstrap_map(&peers, 1, 1);
    assert_eq!(honest.primary_of(0), Some(1));
    let fid = fid_in_shard(0, 1);

    // Route shard 0 to the drained node with NO fallback: the client
    // must surface the drain, not hang in a same-connection retry
    // ladder.
    let mut dead_end = honest.clone();
    dead_end.assignments = vec![ShardAssignment {
        shard: 0,
        primary: 2,
        replicas: vec![],
    }];
    let c = ClusterClient::from_map(dead_end, ClientConfig::default());
    match c.ingest(0, &[rec(0, fid)]) {
        Err(ClusterError::Exhausted(Some(NetError::Server(s)))) => {
            assert_eq!(s, WireStatus::Draining, "drain surfaced as {s:?}");
        }
        other => panic!("expected exhausted-on-draining, got {other:?}"),
    }

    // Same drained primary, but with the real owner as fallback: the
    // candidate walk lands there and the ingest succeeds.
    let mut detour = honest.clone();
    detour.assignments = vec![ShardAssignment {
        shard: 0,
        primary: 2,
        replicas: vec![1],
    }];
    let c = ClusterClient::from_map(detour, ClientConfig::default());
    c.ingest(0, &[rec(1, fid)])
        .expect("failover around the drain");

    n2.shutdown();
    n1.shutdown();
}
