//! Deterministic virtual-time cluster harness: N simulated nodes on one
//! single-worker reactor driven by a [`SharedSimClock`], talking through
//! an in-memory transport that round-trips every message through the
//! real wire codecs. Partitions, message drops, kills, restarts, and
//! crash-fault injection are scripted from the test thread between
//! clock quantums — no sleeps, no real sockets, no wall time.
//!
//! Each `SimNode` reuses the production library pieces verbatim — map
//! transitions, `RepairState::plan_demotion`, `catchup::build_chunk` /
//! `apply_cold_records` / `apply_segment_chunk`, `SegmentRetainer`, and
//! the `PagedStore` recovery path — wiring them together with the same
//! ~30-line tick loop the production prober runs, so the rejoin /
//! catch-up / demotion protocol itself is what these tests exercise.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use geomancy_cluster::catchup::{self, cold_pred};
use geomancy_cluster::{
    bootstrap_map, preferred_primary, promote, shard_for, DemotionStep, RepairState,
};
use geomancy_net::wire::{
    self, decode_catch_up_done, decode_catch_up_req, decode_heartbeat, decode_heartbeat_addr,
    decode_ship_segment, encode_catch_up_ack, encode_catch_up_chunk, encode_catch_up_done,
    encode_catch_up_req, encode_cluster_info_resp, encode_heartbeat, encode_heartbeat_addr,
    encode_ship_ack, encode_ship_segment, CatchUpData, CatchUpDone, CatchUpReq, SegmentShip,
    WireStatus,
};
use geomancy_net::{ClusterMap, FrameKind};
use geomancy_replaydb::{segment_path, shard_path, WalWriter};
use geomancy_runtime::{Actor, Ctx, Reactor, ReactorConfig};
use geomancy_serve::SegmentRetainer;
use geomancy_sim::clock::SharedSimClock;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_store::{FaultPoint, PagedStore, StoreConfig};

/// One tick per heartbeat cadence.
const QUANTUM: u64 = 50_000;
/// Failover / demotion liveness deadline: four silent ticks.
const DEADLINE: u64 = 4 * QUANTUM;

// ---------------------------------------------------------------------
// Node state
// ---------------------------------------------------------------------

struct NodeState {
    id: u64,
    addr: String,
    map: ClusterMap,
    repair: RepairState,
    origins: HashMap<u32, u64>,
    dirty: HashSet<u32>,
    /// Primary-side store (absorbed ingest) and its WAL dir.
    service_store: PagedStore,
    wal_dir: PathBuf,
    /// Follower-side store (ships + catch-up) and its WAL dir.
    replica_store: PagedStore,
    replica_dir: PathBuf,
    replica_wal: PathBuf,
    retainer: SegmentRetainer,
    promotions: u64,
    ship_rejects: u64,
    seq_chunks_served: u64,
    cold_chunks_served: u64,
    /// Crash-injection: kill this node at the apply of the Nth next
    /// catch-up chunk, with the given store fault point.
    fault_after_chunks: Option<(u32, FaultPoint)>,
    faults_fired: u64,
    /// Set once an injected fault fired: the node is "dead" (SIGKILLed
    /// mid-apply) and no-ops until the script kills and restarts it.
    poisoned: bool,
}

fn open_store(dir: &PathBuf) -> PagedStore {
    std::fs::create_dir_all(dir).expect("store dir");
    PagedStore::open(
        dir,
        StoreConfig {
            page_size: 4096,
            cache_pages: 8,
        },
    )
    .expect("open store")
    .0
}

impl NodeState {
    /// Opens (or re-opens, for restarts) node `id` rooted at `root`,
    /// running real store recovery on whatever the last incarnation
    /// left on disk.
    fn open(
        root: &PathBuf,
        id: u64,
        peers: &[(u64, String)],
        shards: u32,
        replicas: usize,
        rejoin: bool,
        now: u64,
    ) -> NodeState {
        let base = root.join(format!("n{id}"));
        let wal_dir = base.join("wal");
        let replica_dir = base.join("replica");
        let replica_wal = base.join("replica-wal");
        for d in [&wal_dir, &replica_wal] {
            std::fs::create_dir_all(d).expect("wal dir");
        }
        let service_store = open_store(&base.join("store"));
        let replica_store = open_store(&replica_dir);
        let mut map = bootstrap_map(peers, shards, replicas);
        if rejoin {
            // Mirror the production rejoin rule: demote self out of every
            // primaryship and start at epoch 0 so any live peer's real
            // map (epoch >= 1) wins on adoption.
            for a in &mut map.assignments {
                if a.primary == id {
                    if let Some(&succ) = a.replicas.first() {
                        a.primary = succ;
                        a.replicas.retain(|&r| r != succ);
                    }
                }
            }
            map.epoch = 0;
        }
        let mut repair = RepairState::default();
        for (peer, _) in peers {
            repair.mark_seen(*peer, now);
        }
        NodeState {
            id,
            addr: format!("sim:{id}"),
            map,
            repair,
            origins: catchup::load_origins(&replica_dir),
            dirty: HashSet::new(),
            service_store,
            wal_dir,
            replica_store,
            replica_dir,
            replica_wal,
            retainer: SegmentRetainer::new(1 << 20),
            promotions: 0,
            ship_rejects: 0,
            seq_chunks_served: 0,
            cold_chunks_served: 0,
            fault_after_chunks: None,
            faults_fired: 0,
            poisoned: false,
        }
    }

    fn adopt(&mut self, map: ClusterMap) {
        if map.epoch > self.map.epoch {
            self.map = map;
        }
    }

    fn replica_floor(&self, shard: u32) -> u64 {
        self.replica_store
            .absorbed()
            .get(shard as usize)
            .copied()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
enum NetFail {
    Cut,
    Dropped,
    Down,
}

struct SimNet {
    slots: HashMap<u64, Arc<Mutex<Option<NodeState>>>>,
    /// Directed severed links.
    cuts: Mutex<HashSet<(u64, u64)>>,
    /// Directed per-frame-kind drop rules, active while present.
    drop_rules: Mutex<HashSet<(u64, u64, FrameKind)>>,
    dropped: AtomicU64,
    shards: u32,
    replicas: usize,
}

impl SimNet {
    fn with<R>(&self, id: u64, f: impl FnOnce(&mut NodeState) -> R) -> Option<R> {
        let slot = self.slots.get(&id).expect("known node");
        let mut guard = slot.lock().expect("slot lock");
        guard.as_mut().map(f)
    }

    /// One request/response exchange. The request direction is subject
    /// to cuts and drop rules; the target must be alive (and not mid
    /// crash) to answer. Replies are delivered atomically with the
    /// handler — a dropped reply is equivalent to a dropped request from
    /// the state machine's point of view.
    fn request(
        &self,
        from: u64,
        to: u64,
        kind: FrameKind,
        payload: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, NetFail> {
        if self.cuts.lock().expect("cuts").contains(&(from, to)) {
            return Err(NetFail::Cut);
        }
        if self
            .drop_rules
            .lock()
            .expect("drop rules")
            .contains(&(from, to, kind))
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(NetFail::Dropped);
        }
        let slot = self.slots.get(&to).ok_or(NetFail::Down)?;
        let mut guard = slot.lock().expect("slot lock");
        let state = guard.as_mut().ok_or(NetFail::Down)?;
        if state.poisoned {
            return Err(NetFail::Down);
        }
        Ok(handle(state, kind, payload, now, self.shards))
    }
}

/// The server half: decode with the real codecs, run the protocol
/// logic, encode the reply with the real codecs.
fn handle(state: &mut NodeState, kind: FrameKind, payload: &[u8], now: u64, shards: u32) -> Vec<u8> {
    match kind {
        FrameKind::Heartbeat => {
            let (peer, _epoch, addr) = decode_heartbeat_addr(payload).expect("heartbeat");
            state.repair.mark_seen(peer, now);
            if let Some(addr) = addr {
                if !state.map.nodes.iter().any(|n| n.node_id == peer) {
                    if let Some(next) = geomancy_cluster::join(&state.map, peer, &addr) {
                        state.map = next;
                    }
                }
            }
            encode_heartbeat(state.id, state.map.epoch)
        }
        FrameKind::ClusterInfoReq => encode_cluster_info_resp(&state.map),
        FrameKind::CatchUpReq => {
            let req = decode_catch_up_req(payload).expect("catch-up req");
            if state.map.primary_of(req.shard) != Some(state.id) {
                return encode_catch_up_chunk(WireStatus::WrongEpoch, None, Some(&state.map));
            }
            state.repair.mark_seen(req.node_id, now);
            let chunk = catchup::build_chunk(
                &req,
                Some(&state.service_store),
                Some(&state.replica_store),
                Some(&state.retainer),
                shards,
            )
            .expect("build chunk");
            match chunk.data {
                CatchUpData::Segment { .. } => state.seq_chunks_served += 1,
                CatchUpData::Cold(_) => state.cold_chunks_served += 1,
            }
            encode_catch_up_chunk(WireStatus::Ok, Some(&chunk), None)
        }
        FrameKind::CatchUpDone => {
            let done = decode_catch_up_done(payload).expect("catch-up done");
            state.repair.mark_seen(done.node_id, now);
            state.repair.record_done(done.node_id, done.shard, done.floor_seq);
            encode_catch_up_ack(WireStatus::Ok, state.map.epoch, None)
        }
        FrameKind::ShipSegment => {
            let ship = decode_ship_segment(payload).expect("ship");
            handle_ship(state, &ship, now, shards)
        }
        other => panic!("harness does not speak {other:?}"),
    }
}

/// The follower-side ship gate: same rules as the production node —
/// ships are applied only in order, from the shard's recorded origin.
fn handle_ship(state: &mut NodeState, ship: &SegmentShip, now: u64, shards: u32) -> Vec<u8> {
    if ship.epoch < state.map.epoch {
        return encode_ship_ack(WireStatus::WrongEpoch, ship.shard, ship.seq, Some(&state.map));
    }
    state.repair.mark_seen(ship.from_node, now);
    let shard = ship.shard;
    let floor = state.replica_floor(shard);
    let accept = match state.origins.get(&shard) {
        Some(&o) if o == ship.from_node => {
            if ship.seq <= floor {
                // Re-delivery at or below the floor: the absorb path
                // orphan-deletes it, exactly-once holds.
                true
            } else if ship.seq == floor + 1 {
                true
            } else {
                state.dirty.insert(shard);
                false
            }
        }
        Some(_) => {
            state.dirty.insert(shard);
            false
        }
        None => {
            // Virgin shard: adopt the mapped primary's seq space from
            // segment 1 onward, but only if we truly hold nothing.
            let virgin = floor == 0
                && ship.seq == 1
                && state.map.primary_of(shard) == Some(ship.from_node)
                && state
                    .replica_store
                    .max_timestamp_matching(cold_pred(shards, shard))
                    .expect("scan")
                    .is_none();
            if !virgin {
                state.dirty.insert(shard);
            }
            virgin
        }
    };
    if !accept {
        state.ship_rejects += 1;
        return encode_ship_ack(WireStatus::Backpressure, shard, ship.seq, None);
    }
    let wal = state.replica_wal.clone();
    catchup::apply_segment_chunk(
        &mut state.replica_store,
        &wal,
        shards,
        shard,
        ship.seq,
        &ship.bytes,
        None,
    )
    .expect("apply ship");
    if state.origins.insert(shard, ship.from_node) != Some(ship.from_node) {
        catchup::save_origins(&state.replica_dir, &state.origins).expect("save origins");
    }
    encode_ship_ack(WireStatus::Ok, shard, ship.seq, None)
}

// ---------------------------------------------------------------------
// The per-node tick: the production prober loop, deterministically
// ---------------------------------------------------------------------

fn tick(net: &SimNet, id: u64, now: u64) {
    let Some((mut map, addr, poisoned)) =
        net.with(id, |s| (s.map.clone(), s.addr.clone(), s.poisoned))
    else {
        return;
    };
    if poisoned {
        return;
    }

    // 1. Heartbeat every peer; chase higher epochs with a map fetch.
    let peers: Vec<u64> = map
        .nodes
        .iter()
        .map(|n| n.node_id)
        .filter(|&p| p != id)
        .collect();
    for peer in &peers {
        let hb = encode_heartbeat_addr(id, map.epoch, &addr);
        let Ok(reply) = net.request(id, *peer, FrameKind::Heartbeat, &hb, now) else {
            continue;
        };
        let Ok((pid, pepoch)) = decode_heartbeat(&reply) else {
            continue;
        };
        net.with(id, |s| s.repair.mark_seen(pid, now));
        if pepoch > map.epoch {
            if let Ok(resp) = net.request(id, *peer, FrameKind::ClusterInfoReq, &[], now) {
                if let Ok(m) = wire::decode_cluster_info_resp(&resp) {
                    net.with(id, |s| s.adopt(m));
                }
            }
        }
    }
    map = net.with(id, |s| s.map.clone()).expect("alive");

    // 2. Failover: promote over a primary silent past the deadline when
    //    this node is its first replica.
    let silent: Vec<u64> = (0..map.shards)
        .filter_map(|shard| {
            let p = map.primary_of(shard)?;
            (p != id && map.replicas_of(shard).first() == Some(&id)).then_some(p)
        })
        .collect();
    for dead in silent {
        net.with(id, |s| {
            if !s.repair.live(dead, now, DEADLINE) {
                if let Some(next) = promote(&s.map, dead, s.id) {
                    s.map = next;
                    s.promotions += 1;
                }
            }
        });
    }
    map = net.with(id, |s| s.map.clone()).expect("alive");

    // 3. Catch-up pulls: one chunk per shard per tick, so catch-up spans
    //    ticks and kill windows fall between chunks.
    for shard in 0..map.shards {
        let Some(primary) = map.primary_of(shard) else {
            continue;
        };
        if primary == id {
            continue;
        }
        let preferred_here = preferred_primary(&map, shard) == Some(id);
        if !preferred_here && !map.replicas_of(shard).contains(&id) {
            continue;
        }
        let needs = net
            .with(id, |s| {
                preferred_here
                    || s.dirty.contains(&shard)
                    || s.origins.get(&shard) != Some(&primary)
            })
            .expect("alive");
        if !needs {
            continue;
        }
        match pull_chunks(net, id, shard, primary, now) {
            PullOutcome::Done(done) => {
                let _ = net.request(
                    id,
                    primary,
                    FrameKind::CatchUpDone,
                    &encode_catch_up_done(&done),
                    now,
                );
            }
            PullOutcome::Crashed => return,
            PullOutcome::Stalled => {}
        }
    }

    // 4. Demotion: the primary-side state machine. The harness primary
    //    has no un-absorbed hot tail (ingest seals and absorbs
    //    synchronously), so the checkpoint step reads current floors.
    for _ in 0..2 {
        let step = net
            .with(id, |s| {
                let map = s.map.clone();
                s.repair
                    .plan_demotion(&map, id, net.replicas, now, DEADLINE)
            })
            .expect("alive");
        match step {
            DemotionStep::NeedCheckpoint { candidate } => {
                net.with(id, |s| {
                    let floors = s.service_store.absorbed().to_vec();
                    let wants = RepairState::wanted_shards(&s.map, id, candidate);
                    s.repair.set_barrier(candidate, &wants, &floors);
                });
            }
            DemotionStep::Demote { map: next, .. } => {
                net.with(id, |s| s.adopt(next));
                return;
            }
            DemotionStep::Waiting { .. } | DemotionStep::Idle => return,
        }
    }
}

enum PullOutcome {
    Done(CatchUpDone),
    Stalled,
    Crashed,
}

/// One catch-up chunk for `shard` against `primary`: plan the request
/// from local floors and the union timestamp cursor, exchange it over
/// the in-memory wire, apply through the library path (with scripted
/// crash injection), and report `Done` when the round closed.
fn pull_chunks(net: &SimNet, id: u64, shard: u32, primary: u64, now: u64) -> PullOutcome {
    let shards = net.shards;
    let Some((after_seq, after_ts)) = net.with(id, |s| {
        let after_seq = if s.origins.get(&shard) == Some(&primary) {
            s.replica_floor(shard)
        } else {
            0
        };
        let after_ts = catchup::shard_cursor(
            &s.replica_store,
            Some(&s.service_store),
            shards,
            shard,
        )
        .expect("cursor");
        (after_seq, after_ts)
    }) else {
        return PullOutcome::Stalled;
    };
    let req = CatchUpReq {
        node_id: id,
        shard,
        after_seq,
        after_ts,
        include_ties: true,
        max_records: 16,
    };
    let Ok(reply) = net.request(
        id,
        primary,
        FrameKind::CatchUpReq,
        &encode_catch_up_req(&req),
        now,
    ) else {
        return PullOutcome::Stalled;
    };
    let (status, chunk, newer) = wire::decode_catch_up_chunk(&reply).expect("chunk");
    if status == WireStatus::WrongEpoch {
        if let Some(m) = newer {
            net.with(id, |s| s.adopt(m));
        }
        return PullOutcome::Stalled;
    }
    let Some(chunk) = chunk else {
        return PullOutcome::Stalled;
    };
    let done = chunk.done;
    let floor_seq = chunk.floor_seq;
    let crashed = net
        .with(id, |s| {
            let fault = match &mut s.fault_after_chunks {
                Some((0, f)) => {
                    let f = *f;
                    s.fault_after_chunks = None;
                    Some(f)
                }
                Some((n, _)) => {
                    *n -= 1;
                    None
                }
                None => None,
            };
            let NodeState {
                replica_store,
                service_store,
                replica_wal,
                ..
            } = s;
            match chunk.data {
                CatchUpData::Segment { seq, ref bytes } => catchup::apply_segment_chunk(
                    replica_store,
                    replica_wal,
                    shards,
                    shard,
                    seq,
                    bytes,
                    fault,
                )
                .expect("apply segment"),
                CatchUpData::Cold(ref records) => catchup::apply_cold_records(
                    replica_store,
                    Some(service_store),
                    shards,
                    shard,
                    records,
                    done.then_some(floor_seq),
                    fault,
                )
                .expect("apply cold"),
            };
            if fault.is_some() {
                // The store layer stopped at the fault boundary; from
                // here the node is SIGKILLed until the script restarts it.
                s.poisoned = true;
                s.faults_fired += 1;
                return true;
            }
            false
        })
        .unwrap_or(true);
    if crashed {
        return PullOutcome::Crashed;
    }
    if !done {
        return PullOutcome::Stalled;
    }
    net.with(id, |s| {
        s.dirty.remove(&shard);
        if s.origins.insert(shard, primary) != Some(primary) {
            catchup::save_origins(&s.replica_dir, &s.origins).expect("save origins");
        }
        let max_ts = s
            .replica_store
            .max_timestamp_matching(cold_pred(shards, shard))
            .expect("scan")
            .unwrap_or(0);
        PullOutcome::Done(CatchUpDone {
            node_id: id,
            shard,
            floor_seq: s.replica_floor(shard),
            max_ts,
        })
    })
    .unwrap_or(PullOutcome::Stalled)
}

// ---------------------------------------------------------------------
// Reactor plumbing: one TickActor per node on simulated time
// ---------------------------------------------------------------------

struct TickActor {
    net: Arc<SimNet>,
    clock: SharedSimClock,
    id: u64,
    done_tx: mpsc::Sender<u64>,
}

impl Actor for TickActor {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(QUANTUM, 1);
    }
    // Startup barrier: messages are delivered only after `on_start`, so
    // acking one proves this actor's first timer is armed at virtual
    // time zero — the script must not publish time before then.
    fn on_msg(&mut self, _msg: (), _ctx: &mut Ctx<'_>) {
        let _ = self.done_tx.send(self.id);
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        tick(&self.net, self.id, self.clock.now_micros());
        ctx.set_timer(QUANTUM, 1);
        let _ = self.done_tx.send(self.id);
    }
}

// ---------------------------------------------------------------------
// The scripted cluster
// ---------------------------------------------------------------------

struct Cluster {
    net: Arc<SimNet>,
    clock: SharedSimClock,
    reactor: Option<Reactor>,
    done_rx: mpsc::Receiver<u64>,
    peers: Vec<(u64, String)>,
    root: PathBuf,
    now: u64,
    next_ts: u64,
    next_n: u64,
    /// Every ingested record, per shard: the exact multiset the final
    /// owner must hold.
    ingested: HashMap<u32, Vec<(u64, AccessRecord)>>,
    /// Records in segments acknowledged by every replica: the ones that
    /// must survive any scripted failure.
    acked: HashMap<u32, Vec<(u64, AccessRecord)>>,
}

impl Cluster {
    fn start(tag: &str, nodes: u64, shards: u32, replicas: usize) -> Cluster {
        let root = std::env::temp_dir()
            .join("geomancy-harness")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("harness root");
        let peers: Vec<(u64, String)> = (1..=nodes).map(|id| (id, format!("sim:{id}"))).collect();
        let mut slots = HashMap::new();
        for &(id, _) in &peers {
            let state = NodeState::open(&root, id, &peers, shards, replicas, false, 0);
            slots.insert(id, Arc::new(Mutex::new(Some(state))));
        }
        let net = Arc::new(SimNet {
            slots,
            cuts: Mutex::new(HashSet::new()),
            drop_rules: Mutex::new(HashSet::new()),
            dropped: AtomicU64::new(0),
            shards,
            replicas,
        });
        let clock = SharedSimClock::new();
        let reactor = Reactor::new(ReactorConfig {
            workers: 1,
            time: Arc::new(clock.clone()),
            ..ReactorConfig::default()
        });
        let (done_tx, done_rx) = mpsc::channel();
        let mut addrs = Vec::new();
        for &(id, _) in &peers {
            let (addr, _handle) = reactor.spawn(
                &format!("tick-{id}"),
                4,
                TickActor {
                    net: Arc::clone(&net),
                    clock: clock.clone(),
                    id,
                    done_tx: done_tx.clone(),
                },
            );
            addrs.push(addr);
        }
        // Startup barrier: every actor must have run `on_start` (arming
        // its tick timer at virtual time zero) before the script is
        // allowed to publish the first quantum.
        for addr in &addrs {
            addr.send(()).expect("ping actor");
        }
        for _ in &addrs {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("startup ack");
        }
        Cluster {
            net,
            clock,
            reactor: Some(reactor),
            done_rx,
            peers,
            root,
            now: 0,
            next_ts: 1,
            next_n: 0,
            ingested: HashMap::new(),
            acked: HashMap::new(),
        }
    }

    /// Advances virtual time by `ticks` quantums, waiting for every
    /// node's tick to complete before publishing the next step — the
    /// script never races the actors.
    fn advance(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.now += QUANTUM;
            self.clock.publish_micros(self.now);
            for _ in 0..self.peers.len() {
                self.done_rx
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .expect("tick completion");
            }
        }
    }

    fn advance_until(&mut self, max_ticks: u64, mut pred: impl FnMut(&mut Cluster) -> bool) {
        for _ in 0..max_ticks {
            if pred(self) {
                return;
            }
            self.advance(1);
        }
        assert!(pred(self), "predicate not met within {max_ticks} ticks");
    }

    fn with<R>(&self, id: u64, f: impl FnOnce(&mut NodeState) -> R) -> Option<R> {
        self.net.with(id, f)
    }

    /// SIGKILL: drop the node's in-memory state; its directories stay.
    fn kill(&self, id: u64) {
        let slot = self.net.slots.get(&id).expect("known node");
        *slot.lock().expect("slot lock") = None;
    }

    /// Restart a killed node in rejoin mode, running store recovery.
    fn restart(&self, id: u64) {
        let slot = self.net.slots.get(&id).expect("known node");
        let mut guard = slot.lock().expect("slot lock");
        assert!(guard.is_none(), "restart of a live node");
        *guard = Some(NodeState::open(
            &self.root,
            id,
            &self.peers,
            self.net.shards,
            self.net.replicas,
            true,
            self.now,
        ));
    }

    fn cut(&self, a: u64, b: u64) {
        let mut cuts = self.net.cuts.lock().expect("cuts");
        cuts.insert((a, b));
        cuts.insert((b, a));
    }

    fn heal(&self, a: u64, b: u64) {
        let mut cuts = self.net.cuts.lock().expect("cuts");
        cuts.remove(&(a, b));
        cuts.remove(&(b, a));
    }

    fn drop_frames(&self, from: u64, to: u64, kind: FrameKind) {
        self.net
            .drop_rules
            .lock()
            .expect("drop rules")
            .insert((from, to, kind));
    }

    fn clear_drops(&self) {
        self.net.drop_rules.lock().expect("drop rules").clear();
    }

    /// Ingests `count` records for `shard` on whatever node currently
    /// owns it (per that node's own map): seal a real WAL segment,
    /// retain it, absorb it, ship it to every replica over the wire.
    /// Returns whether every replica acked (cluster-durable).
    fn ingest(&mut self, shard: u32, count: usize) -> bool {
        let shards = self.net.shards;
        let owner = self
            .peers
            .iter()
            .map(|&(id, _)| id)
            .find(|&id| {
                self.with(id, |s| s.map.primary_of(shard) == Some(s.id))
                    .unwrap_or(false)
            })
            .expect("some live owner");
        // Distinct fids routed to the shard; pairs share a timestamp so
        // every batch carries tie runs across chunk boundaries.
        let base_ts = self.next_ts.max(self.now);
        let fids: Vec<u64> = (0..)
            .filter(|&f| shard_for(FileId(f), shards) == shard)
            .take(count)
            .collect();
        let records: Vec<(u64, AccessRecord)> = fids
            .iter()
            .enumerate()
            .map(|(i, &fid)| {
                let n = self.next_n;
                self.next_n += 1;
                let ts = base_ts + (i as u64 / 2);
                (
                    ts,
                    AccessRecord {
                        access_number: n,
                        fid: FileId(fid),
                        fsid: DeviceId((n % 2) as u32),
                        rb: 1,
                        wb: 0,
                        ots: ts / 1_000_000,
                        otms: ((ts / 1000) % 1000) as u16,
                        cts: ts / 1_000_000,
                        ctms: ((ts / 1000) % 1000) as u16,
                    },
                )
            })
            .collect();
        self.next_ts = base_ts + count as u64 / 2 + 1;
        let (epoch, seq, bytes, replicas) = self
            .with(owner, |s| {
                let seq = s
                    .service_store
                    .absorbed()
                    .get(shard as usize)
                    .copied()
                    .unwrap_or(0)
                    + 1;
                let mut wal =
                    WalWriter::open(shard_path(&s.wal_dir, shard as usize)).expect("wal open");
                for &(ts, r) in &records {
                    wal.append(ts, r).expect("wal append");
                }
                wal.seal_to(segment_path(&s.wal_dir, shard as usize, seq))
                    .expect("seal");
                let bytes =
                    std::fs::read(segment_path(&s.wal_dir, shard as usize, seq)).expect("read seg");
                s.retainer.insert(shard, seq, bytes.clone());
                s.service_store
                    .absorb_segments(&s.wal_dir, shards as usize, None)
                    .expect("absorb");
                (
                    s.map.epoch,
                    seq,
                    bytes,
                    s.map.replicas_of(shard).to_vec(),
                )
            })
            .expect("owner alive");
        let mut all_acked = true;
        for replica in replicas {
            let ship = SegmentShip {
                from_node: owner,
                epoch,
                shard,
                seq,
                bytes: bytes.clone(),
            };
            let acked = match self.net.request(
                owner,
                replica,
                FrameKind::ShipSegment,
                &encode_ship_segment(&ship),
                self.now,
            ) {
                Ok(reply) => {
                    let (status, _, _, _) = wire::decode_ship_ack(&reply).expect("ship ack");
                    status == WireStatus::Ok
                }
                Err(_) => false,
            };
            all_acked &= acked;
        }
        self.ingested
            .entry(shard)
            .or_default()
            .extend(records.iter().copied());
        if all_acked {
            self.acked
                .entry(shard)
                .or_default()
                .extend(records.iter().copied());
        }
        all_acked
    }

    /// The `(ts, access_number, fid)` multiset node `id` holds for
    /// `shard`, across both of its stores.
    fn held(&self, id: u64, shard: u32) -> Vec<(u64, u64, u64)> {
        let shards = self.net.shards;
        self.with(id, |s| {
            let pred = cold_pred(shards, shard);
            let mut out: Vec<(u64, u64, u64)> = Vec::new();
            for store in [&s.service_store, &s.replica_store] {
                let (records, more) = store.export_matching(0, true, 0, &pred).expect("export");
                assert!(!more, "limit 0 export is unbounded");
                out.extend(
                    records
                        .iter()
                        .map(|r| (r.timestamp_micros, r.record.access_number, r.record.fid.0)),
                );
            }
            out.sort_unstable();
            out
        })
        .expect("node alive")
    }

    /// True when every live node agrees on one map and that map gives
    /// every shard to its preferred owner.
    fn converged_to_preferred(&mut self) -> bool {
        let mut epochs = HashSet::new();
        for &(id, _) in &self.peers {
            let Some((epoch, preferred)) = self.with(id, |s| {
                let preferred = (0..s.map.shards)
                    .all(|sh| s.map.primary_of(sh) == preferred_primary(&s.map, sh));
                (s.map.epoch, preferred)
            }) else {
                continue;
            };
            if !preferred {
                return false;
            }
            epochs.insert(epoch);
        }
        epochs.len() == 1
    }

    /// Asserts the current owner of every shard holds the exact
    /// ingested multiset — nothing lost, nothing duplicated — and that
    /// every ship-acked record in particular survived.
    fn assert_no_lost_or_duplicated(&mut self) {
        let shards = self.net.shards;
        for shard in 0..shards {
            let owner = self
                .peers
                .iter()
                .map(|&(id, _)| id)
                .find(|&id| {
                    self.with(id, |s| s.map.primary_of(shard) == Some(s.id))
                        .unwrap_or(false)
                })
                .expect("live owner");
            let held = self.held(owner, shard);
            let mut expected: Vec<(u64, u64, u64)> = self
                .ingested
                .get(&shard)
                .map(|v| {
                    v.iter()
                        .map(|(ts, r)| (*ts, r.access_number, r.fid.0))
                        .collect()
                })
                .unwrap_or_default();
            expected.sort_unstable();
            assert_eq!(
                held, expected,
                "shard {shard} owner {owner}: held records diverge from ingested multiset"
            );
            for (ts, r) in self.acked.get(&shard).cloned().unwrap_or_default() {
                let key = (ts, r.access_number, r.fid.0);
                assert_eq!(
                    held.iter().filter(|&&k| k == key).count(),
                    1,
                    "acked record {key:?} must survive exactly once on shard {shard}"
                );
            }
        }
    }

    fn shutdown(mut self) {
        if let Some(reactor) = self.reactor.take() {
            // Wake any actor parked on a pending timer so shutdown's
            // drain does not wait on wall time.
            self.clock.publish_micros(self.now + 10 * QUANTUM);
            let _ = reactor.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Common opening act: 3 nodes / 3 shards / 1 replica, records on every
/// shard, then SIGKILL node 1 and let its first replica promote.
fn kill_primary_scenario(tag: &str) -> Cluster {
    let mut c = Cluster::start(tag, 3, 3, 1);
    c.advance(2);
    for shard in 0..3 {
        assert!(c.ingest(shard, 20), "fresh-cluster ships must all ack");
    }
    c.kill(1);
    c.advance_until(20, |c| {
        c.with(2, |s| s.map.epoch >= 2 && s.map.primary_of(0) == Some(2))
            .unwrap_or(false)
    });
    // Interregnum traffic lands on the emergency primary.
    for shard in 0..3 {
        c.ingest(shard, 30);
    }
    c
}

#[test]
fn rejoin_catches_up_and_demotion_restores_preferred_ownership() {
    let mut c = kill_primary_scenario("rejoin");
    let promoted = c.with(2, |s| s.promotions).unwrap();
    assert!(promoted >= 1, "first replica must have promoted");

    c.restart(1);
    c.advance_until(60, Cluster::converged_to_preferred);
    c.assert_no_lost_or_duplicated();

    // The emergency primary demoted through the barrier protocol, and
    // the rejoiner earned its shards back.
    assert!(c.with(2, |s| s.repair.demotions).unwrap() >= 1);
    assert_eq!(c.with(1, |s| s.map.primary_of(0)).unwrap(), Some(1));

    // Post-heal traffic flows again: the first ship after the origin
    // switch may bounce (Backpressure) while replicas re-pull, but the
    // pipeline must settle back to fully-acked ships.
    c.ingest(0, 10);
    c.advance(3);
    assert!(c.ingest(0, 10), "ships must ack after origin switch");
    c.advance(2);
    c.assert_no_lost_or_duplicated();
    c.shutdown();
}

#[test]
fn partition_blocks_demotion_until_healed() {
    let mut c = kill_primary_scenario("partition");
    // The rejoiner comes back partitioned from the emergency primary.
    c.cut(1, 2);
    c.restart(1);
    c.advance(12);
    // Node 2 cannot see node 1 (and node 1 cannot catch up), so shard 0
    // must still belong to the emergency primary everywhere.
    assert_eq!(c.with(2, |s| s.map.primary_of(0)).unwrap(), Some(2));
    assert_eq!(c.with(2, |s| s.repair.demotions).unwrap(), 0);
    // Node 1 still talks to node 3, so it adopts the promoted map.
    assert!(c.with(1, |s| s.map.epoch).unwrap() >= 2);
    c.heal(1, 2);
    c.advance_until(60, Cluster::converged_to_preferred);
    c.assert_no_lost_or_duplicated();
    c.shutdown();
}

#[test]
fn message_drops_delay_but_do_not_corrupt_catch_up() {
    let mut c = kill_primary_scenario("drops");
    c.restart(1);
    // Every catch-up request from the rejoiner to the emergency primary
    // is dropped for a while: progress stalls, nothing corrupts.
    c.drop_frames(1, 2, FrameKind::CatchUpReq);
    c.advance(10);
    assert_eq!(c.with(2, |s| s.repair.demotions).unwrap(), 0);
    assert!(c.net.dropped.load(Ordering::Relaxed) > 0);
    c.clear_drops();
    c.advance_until(60, Cluster::converged_to_preferred);
    c.assert_no_lost_or_duplicated();
    c.shutdown();
}

#[test]
fn restart_mid_catch_up_resumes_without_duplicates() {
    let mut c = kill_primary_scenario("midway");
    // Enough interregnum data that catch-up spans several ticks at one
    // 16-record chunk per shard per tick.
    for shard in 0..3 {
        c.ingest(shard, 60);
    }
    c.restart(1);
    c.advance(2);
    assert!(
        !c.converged_to_preferred(),
        "catch-up must still be in flight for the mid-flight kill to mean anything"
    );
    // SIGKILL the rejoiner mid-catch-up; some chunks are applied and
    // durable, the floor is not yet committed.
    c.kill(1);
    c.advance(2);
    c.restart(1);
    c.advance_until(80, Cluster::converged_to_preferred);
    c.assert_no_lost_or_duplicated();
    c.shutdown();
}

#[test]
fn ship_gap_heals_through_seq_mode_catch_up() {
    let mut c = Cluster::start("shipgap", 3, 3, 1);
    c.advance(2);
    assert!(c.ingest(0, 10));
    // Drop ships from the owner of shard 0 to its replica: the replica
    // misses segments, so the next delivered ship has a seq gap.
    let owner = c.with(1, |s| s.map.primary_of(0)).unwrap().unwrap();
    let replica = c.with(1, |s| s.map.replicas_of(0).to_vec()).unwrap()[0];
    c.drop_frames(owner, replica, FrameKind::ShipSegment);
    assert!(!c.ingest(0, 10), "dropped ship cannot ack");
    assert!(!c.ingest(0, 10), "dropped ship cannot ack");
    c.clear_drops();
    assert!(!c.ingest(0, 10), "gapped ship must be rejected, not applied");
    assert!(c.with(replica, |s| s.ship_rejects).unwrap() >= 1);
    // The replica flagged the shard dirty; its next pull rounds walk the
    // retained segments (seq mode) back to the primary's floor.
    c.advance_until(20, |c| {
        c.with(replica, |s| !s.dirty.contains(&0)).unwrap_or(false)
    });
    assert!(
        c.with(owner, |s| s.seq_chunks_served).unwrap() >= 1,
        "gap healing must use retained segments, not a cold rescan"
    );
    let held = c.held(replica, 0);
    assert_eq!(held.len(), 40, "replica must hold all four segments");
    c.advance(2);
    c.assert_no_lost_or_duplicated();
    c.shutdown();
}

/// Satellite: SIGKILL the rejoining node at every catch-up chunk
/// boundary, at every store fault point. Every next rejoin must
/// converge with zero lost or duplicated records.
#[test]
fn kill_at_every_chunk_boundary_still_converges() {
    for fault in [
        FaultPoint::AfterPageWrite,
        FaultPoint::AfterIndexWrite,
        FaultPoint::AfterManifestCommit,
    ] {
        let mut c = kill_primary_scenario(&format!("fault-{fault:?}"));
        for shard in 0..3 {
            c.ingest(shard, 40);
        }
        c.restart(1);
        let mut boundary = 0u32;
        let mut kills = 0u64;
        loop {
            c.with(1, |s| s.fault_after_chunks = Some((boundary, fault)));
            let fired_before = c.with(1, |s| s.faults_fired).unwrap();
            let mut converged = false;
            for _ in 0..80 {
                c.advance(1);
                let fired = c
                    .with(1, |s| s.faults_fired > fired_before)
                    .unwrap_or(false);
                if fired {
                    break;
                }
                if c.converged_to_preferred() {
                    converged = true;
                    break;
                }
            }
            if converged {
                // The whole catch-up ran without reaching this chunk
                // boundary: every boundary has been killed at least once.
                break;
            }
            assert!(
                c.with(1, |s| s.faults_fired).unwrap() > fired_before,
                "rejoin neither converged nor hit the injected fault (boundary {boundary})"
            );
            c.kill(1);
            kills += 1;
            c.advance(1);
            c.restart(1);
            boundary += 1;
        }
        assert!(kills >= 2, "scenario must actually kill across boundaries");
        c.with(1, |s| s.fault_after_chunks = None);
        c.advance_until(80, Cluster::converged_to_preferred);
        c.assert_no_lost_or_duplicated();
        c.shutdown();
    }
}
