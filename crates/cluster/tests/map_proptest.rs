//! Property tests over the cluster-map transition algebra: random
//! sequences of {promote, demote, join, leave} applied to a bootstrap
//! map must preserve the invariants the repair protocol leans on —
//! exactly one primary per shard in every map, strictly monotonic
//! epochs across applied transitions, and wire round-tripping.

use std::collections::HashSet;

use geomancy_cluster::{bootstrap_map, demote, join, leave, promote};
use geomancy_net::wire::{decode_cluster_map, encode_cluster_map};
use geomancy_net::ClusterMap;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Transition {
    Promote { dead: u64, successor: u64 },
    Demote { from: u64, to: u64 },
    Join { node_id: u64, addr_salt: u8 },
    Leave { node_id: u64 },
}

fn transition_strategy() -> impl Strategy<Value = Transition> {
    (0u8..4, 1u64..13, 1u64..13, 0u8..255).prop_map(|(kind, a, b, salt)| match kind {
        0 => Transition::Promote {
            dead: a,
            successor: b,
        },
        1 => Transition::Demote { from: a, to: b },
        2 => Transition::Join {
            node_id: a,
            addr_salt: salt,
        },
        _ => Transition::Leave { node_id: a },
    })
}

/// Exactly one primary per shard, the primary is a member node, and no
/// shard lists its primary as its own replica.
fn assert_single_ownership(map: &ClusterMap) {
    let members: HashSet<u64> = map.nodes.iter().map(|n| n.node_id).collect();
    let mut seen_shards = HashSet::new();
    assert_eq!(map.assignments.len(), map.shards as usize);
    for a in &map.assignments {
        assert!(
            seen_shards.insert(a.shard),
            "shard {} assigned twice in epoch {}",
            a.shard,
            map.epoch
        );
        assert!(
            members.contains(&a.primary),
            "shard {} owned by non-member {} in epoch {}",
            a.shard,
            a.primary,
            map.epoch
        );
        assert!(
            !a.replicas.contains(&a.primary),
            "shard {} lists its primary {} as a replica in epoch {}",
            a.shard,
            a.primary,
            map.epoch
        );
        let unique: HashSet<u64> = a.replicas.iter().copied().collect();
        assert_eq!(
            unique.len(),
            a.replicas.len(),
            "shard {} has duplicate replicas in epoch {}",
            a.shard,
            map.epoch
        );
    }
}

proptest! {
    #[test]
    fn random_transitions_preserve_ownership_and_epoch_monotonicity(
        nodes in 2u64..6,
        shards in 1u32..12,
        replicas in 0usize..3,
        steps in proptest::collection::vec(transition_strategy(), 0..24),
    ) {
        let peers: Vec<(u64, String)> =
            (1..=nodes).map(|id| (id, format!("sim:{id}"))).collect();
        let mut map = bootstrap_map(&peers, shards, replicas);
        assert_single_ownership(&map);
        for step in steps {
            let next = match step {
                Transition::Promote { dead, successor } => promote(&map, dead, successor),
                Transition::Demote { from, to } => demote(&map, from, to, replicas),
                Transition::Join { node_id, addr_salt } => {
                    join(&map, node_id, &format!("sim:{node_id}/{addr_salt}"))
                }
                Transition::Leave { node_id } => leave(&map, node_id),
            };
            if let Some(next) = next {
                // Every applied transition bumps the epoch by exactly
                // one — strict monotonicity, no reuse of an epoch for a
                // different topology.
                prop_assert_eq!(next.epoch, map.epoch + 1);
                assert_single_ownership(&next);
                map = next;
            }
            // Refused transitions leave the map untouched by contract
            // (all four builders return None without mutating).
            assert_single_ownership(&map);
        }
        // Whatever the walk produced must survive the wire.
        let bytes = encode_cluster_map(&map);
        let decoded = decode_cluster_map(&bytes).expect("round-trip decode");
        prop_assert_eq!(decoded, map);
    }

    #[test]
    fn leave_never_orphans_a_shard(
        nodes in 2u64..6,
        shards in 1u32..12,
        node_id in 1u64..8,
    ) {
        let peers: Vec<(u64, String)> =
            (1..=nodes).map(|id| (id, format!("sim:{id}"))).collect();
        let map = bootstrap_map(&peers, shards, 1);
        if let Some(next) = leave(&map, node_id) {
            // A node still owning shards must be refused, so any applied
            // leave removed a non-primary — and scrubbed its replica
            // slots everywhere.
            prop_assert!(next.nodes.iter().all(|n| n.node_id != node_id));
            for a in &next.assignments {
                prop_assert!(a.primary != node_id);
                prop_assert!(!a.replicas.contains(&node_id));
            }
            assert_single_ownership(&next);
        }
    }
}
