//! Routing parity: the cluster layer's [`shard_for`] must agree
//! bit-for-bit with the placement service's own [`shard_of`] — a
//! divergence would route records to a node whose service files them
//! under a different internal shard, silently splitting WAL history.
//!
//! The end-to-end companion: a client pumping ingest batches straight
//! through a kill → failover → rejoin → demotion sequence must land
//! every record exactly once, with the epoch bumps propagating to it
//! purely through `WrongEpoch` rejections.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use geomancy_cluster::{
    reserve_loopback_addrs, shard_for, ClusterClient, ClusterError, ClusterNode, ClusterNodeConfig,
};
use geomancy_core::drl::DrlConfig;
use geomancy_net::ClientConfig;
use geomancy_serve::{shard_of, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use proptest::prelude::*;

proptest! {
    /// Cluster routing and service sharding agree across the whole
    /// `FileId` range and every practical shard count.
    #[test]
    fn cluster_routing_matches_service_sharding(fid in 0u64..u64::MAX, shards in 1u32..=64) {
        let cluster = shard_for(FileId(fid), shards);
        let service = shard_of(FileId(fid), shards as usize);
        prop_assert_eq!(cluster as usize, service);
        prop_assert!(cluster < shards);
    }

    /// The mapping is a pure function of (fid, shards): repeated calls
    /// agree, and neighbouring fids spread (splitmix64 is not the
    /// identity).
    #[test]
    fn routing_is_stable(fid in 0u64..u64::MAX, shards in 1u32..=64) {
        prop_assert_eq!(shard_for(FileId(fid), shards), shard_for(FileId(fid), shards));
    }
}

/// The boundary fids route in range too (plain test: no shrinking
/// needed for three constants).
#[test]
fn boundary_fids_route_in_range() {
    for shards in [1u32, 2, 3, 7, 64] {
        for fid in [0u64, 1, u64::MAX] {
            assert_eq!(
                shard_for(FileId(fid), shards) as usize,
                shard_of(FileId(fid), shards as usize)
            );
        }
    }
}

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// A fid that routes to `shard` under `shards`.
fn fid_in_shard(shard: u32, shards: u32) -> u64 {
    (0..)
        .find(|&f| shard_for(FileId(f), shards) == shard)
        .expect("some fid per shard")
}

fn node_config(
    node_id: u64,
    peers: &[(u64, String)],
    shards: u32,
    dir: PathBuf,
    rejoin: bool,
) -> ClusterNodeConfig {
    let listen = peers
        .iter()
        .find(|(id, _)| *id == node_id)
        .map(|(_, a)| a.clone())
        .expect("self in peers");
    ClusterNodeConfig {
        node_id,
        listen,
        peers: peers.to_vec(),
        replicas: 1,
        shards,
        dir,
        heartbeat_micros: 50_000,
        failover_after_micros: 300_000,
        serve: ServeConfig {
            candidates: vec![DeviceId(0), DeviceId(1)],
            drl: DrlConfig {
                train_window: 100,
                epochs: 5,
                smoothing_window: 4,
                ..DrlConfig::default()
            },
            ..ServeConfig::default()
        },
        net: geomancy_net::NetConfig::default(),
        rejoin,
        retain_bytes: 64 << 20,
        catch_up_max_records: 4096,
    }
}

/// Ingests one batch, absorbing the transient `Exhausted` rounds a
/// routing change produces (every candidate answered `WrongEpoch` or
/// refused the connect — nothing was applied, so the resend is safe).
/// Panics if the batch does not land within `deadline`.
fn ingest_until_landed(
    client: &ClusterClient,
    ts: u64,
    records: &[AccessRecord],
    deadline: Instant,
) {
    loop {
        match client.ingest(ts, records) {
            Ok(()) => return,
            Err(ClusterError::Exhausted(_) | ClusterError::Net(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("ingest never landed: {e}"),
        }
    }
}

/// A client that is mid-pipeline when failover, rejoin, and the
/// demotion epoch bump land must deliver every batch exactly once.
///
/// The ledger: `ingested_records` counts records *accepted into shard
/// queues*, and every refusal the client retries on (`WrongEpoch`,
/// refused connect, `Draining`) happens before any record is applied.
/// So across all node incarnations — node 1 counts twice, once per
/// life, with the first life's counter snapshotted just before the
/// kill — the counters must sum to exactly the records the client sent.
#[test]
fn pipeline_across_demotion_epoch_bump_lands_exactly_once() {
    let shards = 3u32;
    let addrs = reserve_loopback_addrs(3);
    let peers: Vec<(u64, String)> = (0..3).map(|i| (i as u64 + 1, addrs[i].clone())).collect();
    let dir = std::env::temp_dir().join(format!("geomancy-demotion-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");

    let start = |id: u64, rejoin: bool| {
        ClusterNode::start(node_config(
            id,
            &peers,
            shards,
            dir.join(format!("n{id}")),
            rejoin,
        ))
        .expect("start node")
    };
    let mut n1 = Some(start(1, false));
    let n2 = start(2, false);
    let n3 = start(3, false);

    // Seed the client off node 3, which stays alive throughout.
    let client = ClusterClient::connect(&[addrs[2].clone()], ClientConfig::default())
        .expect("bootstrap from live seed");
    assert_eq!(client.map().epoch, 1);
    assert_eq!(client.map().primary_of(0), Some(1), "ring [1,2,3]");

    let f0 = fid_in_shard(0, shards);
    let mut sent: u64 = 0;
    let mut next_n: u64 = 0;
    let mut batch = |n: u64| -> Vec<AccessRecord> {
        let b: Vec<AccessRecord> = (0..n).map(|i| rec(next_n + i, f0)).collect();
        next_n += n;
        sent += n;
        b
    };
    let deadline = Instant::now() + Duration::from_secs(30);

    // Phase 1: steady state, shard 0 lands on node 1. Checkpoint so the
    // replica holds a sealed floor — the rejoin later has real history
    // to catch up through, not an empty store.
    for i in 0..10u64 {
        let b = batch(10);
        ingest_until_landed(&client, i * 1_000_000, &b, deadline);
    }
    n1.as_ref().unwrap().service().checkpoint_now().expect("checkpoint");
    while n1.as_ref().unwrap().shipped().is_empty() {
        assert!(Instant::now() < deadline, "shard 0 segment never ship-acked");
        std::thread::sleep(Duration::from_millis(20));
    }
    let n1_first_life = n1.as_ref().unwrap().service().metrics().ingested_records;
    assert_eq!(n1_first_life, 100, "phase 1 all landed on node 1");

    // Kill the primary mid-pipeline and keep pumping: the next batches
    // ride through refused connects and same-epoch WrongEpochs until
    // node 2 promotes, then land there.
    n1.take().unwrap().kill();
    for i in 0..10u64 {
        let b = batch(10);
        ingest_until_landed(&client, (100 + i) * 1_000_000, &b, deadline);
    }
    assert!(n2.epoch() >= 2, "batches landed, so node 2 promoted");
    assert_eq!(n2.map().primary_of(0), Some(2));

    // Restart node 1 as a rejoiner and keep the pipeline running while
    // catch-up and the demotion flip happen underneath it.
    let n1 = start(1, true);
    let mut mid_flip_batches = 0u64;
    loop {
        let b = batch(10);
        ingest_until_landed(&client, (200 + mid_flip_batches) * 1_000_000, &b, deadline);
        mid_flip_batches += 1;
        let flipped = n2.demotions() >= 1
            && n1.map().primary_of(0) == Some(1)
            && n1.epoch() == n2.epoch();
        if flipped {
            break;
        }
        assert!(Instant::now() < deadline, "demotion never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(mid_flip_batches >= 1);

    // Post-flip batches land on the restored preferred owner.
    for i in 0..5u64 {
        let b = batch(10);
        ingest_until_landed(&client, (300 + i) * 1_000_000, &b, deadline);
    }
    let n1_second_life = n1.service().metrics().ingested_records;
    assert!(
        n1_second_life >= 50,
        "post-flip batches land on node 1, got {n1_second_life}"
    );
    // The client followed the flip by adoption, not reconnection.
    assert_eq!(client.map().primary_of(0), Some(1));
    assert!(client.map().epoch >= 3, "promote + demote each bumped");

    // Exactly once: counters across all incarnations sum to the records
    // sent — nothing lost to the kill or the flip, nothing double-landed
    // by a retried batch.
    let landed = n1_first_life
        + n1_second_life
        + n2.service().metrics().ingested_records
        + n3.service().metrics().ingested_records;
    assert_eq!(landed, sent, "every record exactly once");
    assert_eq!(n3.service().metrics().ingested_records, 0, "node 3 never owned shard 0");

    n1.shutdown();
    n2.shutdown();
    n3.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
