//! Routing parity: the cluster layer's [`shard_for`] must agree
//! bit-for-bit with the placement service's own [`shard_of`] — a
//! divergence would route records to a node whose service files them
//! under a different internal shard, silently splitting WAL history.

use geomancy_cluster::shard_for;
use geomancy_serve::shard_of;
use geomancy_sim::record::FileId;
use proptest::prelude::*;

proptest! {
    /// Cluster routing and service sharding agree across the whole
    /// `FileId` range and every practical shard count.
    #[test]
    fn cluster_routing_matches_service_sharding(fid in 0u64..u64::MAX, shards in 1u32..=64) {
        let cluster = shard_for(FileId(fid), shards);
        let service = shard_of(FileId(fid), shards as usize);
        prop_assert_eq!(cluster as usize, service);
        prop_assert!(cluster < shards);
    }

    /// The mapping is a pure function of (fid, shards): repeated calls
    /// agree, and neighbouring fids spread (splitmix64 is not the
    /// identity).
    #[test]
    fn routing_is_stable(fid in 0u64..u64::MAX, shards in 1u32..=64) {
        prop_assert_eq!(shard_for(FileId(fid), shards), shard_for(FileId(fid), shards));
    }
}

/// The boundary fids route in range too (plain test: no shrinking
/// needed for three constants).
#[test]
fn boundary_fids_route_in_range() {
    for shards in [1u32, 2, 3, 7, 64] {
        for fid in [0u64, 1, u64::MAX] {
            assert_eq!(
                shard_for(FileId(fid), shards) as usize,
                shard_of(FileId(fid), shards as usize)
            );
        }
    }
}
