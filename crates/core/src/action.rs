//! The Action Checker (§V-H): the last sanity check before a movement.
//!
//! "The Action Checker removes any invalid storage devices. … In case all
//! storage devices are invalid, a random movement is performed. … Overall
//! random decision are used by Geomancy 10 % of the runs to keep an updated
//! list of storage availability."

use geomancy_sim::record::DeviceId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why the checker selected the device it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// The highest-predicted valid device was chosen.
    Predicted,
    /// An ε-exploration random choice was made among valid devices.
    Exploration,
    /// Every candidate was invalid, so a random device was chosen to keep
    /// discovering the system.
    RandomFallback,
}

/// The checked decision for one file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckedAction {
    /// Destination device.
    pub device: DeviceId,
    /// Predicted throughput at the destination (`None` for random picks of
    /// devices that had no prediction).
    pub predicted_throughput: Option<f64>,
    /// How the decision was made.
    pub kind: ActionKind,
}

/// Validates and finalizes per-file placement decisions.
///
/// # Examples
///
/// ```
/// use geomancy_core::action::{ActionChecker, ActionKind};
/// use geomancy_sim::record::DeviceId;
///
/// let mut checker = ActionChecker::with_exploration(0, 0.0);
/// let ranked = vec![(DeviceId(0), 1.0e9), (DeviceId(1), 2.0e9)];
/// // Device 1 predicts faster and is valid: it wins.
/// let action = checker.check(&ranked, |_| true);
/// assert_eq!(action.device, DeviceId(1));
/// assert_eq!(action.kind, ActionKind::Predicted);
/// ```
#[derive(Debug)]
pub struct ActionChecker {
    exploration_rate: f64,
    rng: StdRng,
    decisions: u64,
    explorations: u64,
}

impl ActionChecker {
    /// Creates a checker with the paper's 10 % exploration rate.
    pub fn new(seed: u64) -> Self {
        Self::with_exploration(seed, 0.1)
    }

    /// Creates a checker with a custom exploration rate (ablation knob).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_exploration(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "exploration rate must be in [0, 1]"
        );
        ActionChecker {
            exploration_rate: rate,
            rng: StdRng::seed_from_u64(seed),
            decisions: 0,
            explorations: 0,
        }
    }

    /// The configured exploration rate.
    pub fn exploration_rate(&self) -> f64 {
        self.exploration_rate
    }

    /// Total decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that were random (exploration or fallback).
    pub fn explorations(&self) -> u64 {
        self.explorations
    }

    /// Checks one file's ranked predictions.
    ///
    /// `ranked` is the DRL engine's `(device, predicted throughput)` list;
    /// `is_valid` reports whether the device can currently accept the file
    /// (online, capacity, permissions).
    ///
    /// # Panics
    ///
    /// Panics if `ranked` is empty.
    pub fn check(
        &mut self,
        ranked: &[(DeviceId, f64)],
        mut is_valid: impl FnMut(DeviceId) -> bool,
    ) -> CheckedAction {
        assert!(!ranked.is_empty(), "no candidates to check");
        self.decisions += 1;
        let valid: Vec<(DeviceId, f64)> = ranked
            .iter()
            .copied()
            .filter(|(d, _)| is_valid(*d))
            .collect();
        if valid.is_empty() {
            // All invalid: random movement to keep learning the system.
            self.explorations += 1;
            let pick = ranked[self.rng.gen_range(0..ranked.len())].0;
            return CheckedAction {
                device: pick,
                predicted_throughput: None,
                kind: ActionKind::RandomFallback,
            };
        }
        if self.rng.gen_bool(self.exploration_rate) {
            self.explorations += 1;
            let (device, tp) = valid[self.rng.gen_range(0..valid.len())];
            return CheckedAction {
                device,
                predicted_throughput: Some(tp),
                kind: ActionKind::Exploration,
            };
        }
        let (device, tp) = valid
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty valid set");
        CheckedAction {
            device,
            predicted_throughput: Some(tp),
            kind: ActionKind::Predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked() -> Vec<(DeviceId, f64)> {
        vec![
            (DeviceId(0), 100.0),
            (DeviceId(1), 500.0),
            (DeviceId(2), 300.0),
        ]
    }

    #[test]
    fn picks_highest_valid_prediction() {
        let mut checker = ActionChecker::with_exploration(0, 0.0);
        let action = checker.check(&ranked(), |_| true);
        assert_eq!(action.device, DeviceId(1));
        assert_eq!(action.kind, ActionKind::Predicted);
        assert_eq!(action.predicted_throughput, Some(500.0));
    }

    #[test]
    fn invalid_devices_are_filtered() {
        let mut checker = ActionChecker::with_exploration(0, 0.0);
        let action = checker.check(&ranked(), |d| d != DeviceId(1));
        assert_eq!(action.device, DeviceId(2));
    }

    #[test]
    fn all_invalid_falls_back_to_random() {
        let mut checker = ActionChecker::with_exploration(0, 0.0);
        let action = checker.check(&ranked(), |_| false);
        assert_eq!(action.kind, ActionKind::RandomFallback);
        assert!(action.predicted_throughput.is_none());
        assert!(ranked().iter().any(|(d, _)| *d == action.device));
    }

    #[test]
    fn exploration_rate_is_roughly_honored() {
        let mut checker = ActionChecker::new(42); // 10 %
        for _ in 0..2000 {
            let _ = checker.check(&ranked(), |_| true);
        }
        let rate = checker.explorations() as f64 / checker.decisions() as f64;
        assert!(
            (0.06..=0.14).contains(&rate),
            "observed exploration rate {rate}"
        );
    }

    #[test]
    fn full_exploration_never_picks_deterministically() {
        let mut checker = ActionChecker::with_exploration(7, 1.0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(checker.check(&ranked(), |_| true).device);
        }
        assert!(seen.len() > 1, "exploration never varied");
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        let mut checker = ActionChecker::new(0);
        let _ = checker.check(&[], |_| true);
    }

    #[test]
    #[should_panic(expected = "exploration rate")]
    fn invalid_rate_panics() {
        let _ = ActionChecker::with_exploration(0, 1.5);
    }
}
