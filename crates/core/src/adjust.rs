//! Prediction adjustment (§V-G).
//!
//! "The low standard deviation of model 1 means that we will be able to
//! readjust the prediction using the mean absolute error. To determine if we
//! have to add or subtract `MAE × prediction` to `prediction`, we can take
//! the sign of the average relative error to indicate if most of our current
//! predictions are under or over the target values."

use geomancy_nn::metrics::RelativeError;
use serde::{Deserialize, Serialize};

/// Applies the paper's `AdjustedPrediction = prediction ± MAE × prediction`
/// correction, calibrated from validation-set error statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionAdjuster {
    /// Mean absolute relative error as a fraction (e.g. `0.19` for 19 %).
    mae_fraction: f64,
    /// `true` when the model under-predicts on average (positive signed
    /// relative error), so the correction is added.
    under_predicting: bool,
}

impl PredictionAdjuster {
    /// An identity adjuster (no correction).
    pub fn identity() -> Self {
        PredictionAdjuster {
            mae_fraction: 0.0,
            under_predicting: true,
        }
    }

    /// Calibrates from validation error statistics. Non-finite statistics
    /// (a degenerate validation pass) yield the identity adjuster.
    pub fn from_error(error: &RelativeError) -> Self {
        if !error.mean.is_finite() || !error.signed_mean.is_finite() {
            return PredictionAdjuster::identity();
        }
        PredictionAdjuster {
            // The correction is multiplicative and §V-G assumes a *small*
            // MAE (~2 % in the paper). Cap it at 25 % so a noisy validation
            // pass yields a mild correction rather than crushing (or
            // flipping) every prediction; ordering is unaffected either way.
            mae_fraction: (error.mean / 100.0).clamp(0.0, 0.25),
            under_predicting: error.signed_mean >= 0.0,
        }
    }

    /// The correction magnitude as a fraction of the prediction.
    pub fn mae_fraction(&self) -> f64 {
        self.mae_fraction
    }

    /// Whether the correction is added (model under-predicts).
    pub fn is_under_predicting(&self) -> bool {
        self.under_predicting
    }

    /// Adjusts one prediction.
    pub fn adjust(&self, prediction: f64) -> f64 {
        if self.under_predicting {
            prediction + self.mae_fraction * prediction
        } else {
            prediction - self.mae_fraction * prediction
        }
    }
}

impl Default for PredictionAdjuster {
    fn default() -> Self {
        PredictionAdjuster::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let a = PredictionAdjuster::identity();
        assert_eq!(a.adjust(5.0), 5.0);
    }

    #[test]
    fn under_prediction_scales_up() {
        let a = PredictionAdjuster::from_error(&RelativeError {
            mean: 10.0,
            std_dev: 1.0,
            signed_mean: 2.0,
        });
        assert!((a.adjust(100.0) - 110.0).abs() < 1e-9);
        assert!(a.is_under_predicting());
    }

    #[test]
    fn over_prediction_scales_down() {
        let a = PredictionAdjuster::from_error(&RelativeError {
            mean: 10.0,
            std_dev: 1.0,
            signed_mean: -3.0,
        });
        assert!((a.adjust(100.0) - 90.0).abs() < 1e-9);
        assert!(!a.is_under_predicting());
    }

    #[test]
    fn adjustment_preserves_ordering() {
        // A multiplicative correction cannot reorder candidates.
        let a = PredictionAdjuster::from_error(&RelativeError {
            mean: 25.0,
            std_dev: 5.0,
            signed_mean: 1.0,
        });
        assert!(a.adjust(10.0) < a.adjust(20.0));
    }
}
