//! Whole-system configuration: everything an operator tunes, serializable
//! to a single JSON file.

use serde::{Deserialize, Serialize};

use crate::drl::DrlConfig;

/// Top-level Geomancy configuration (engine + policy knobs).
///
/// # Examples
///
/// ```
/// use geomancy_core::config::GeomancyConfig;
///
/// let mut config = GeomancyConfig::default();
/// config.policy.exploration = 0.2;
/// config.validate()?;
/// let _policy = config.build_policy()?;
/// # Ok::<(), geomancy_core::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeomancyConfig {
    /// DRL engine settings.
    pub engine: EngineSection,
    /// Placement-policy settings.
    pub policy: PolicySection,
}

/// Engine subsection (mirrors [`DrlConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSection {
    /// Table I model number (1–11; the live engine needs a dense model).
    pub model: u8,
    /// Most recent accesses pulled per device for a retrain.
    pub train_window: usize,
    /// Epochs per retrain.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Moving-average smoothing window for targets.
    pub smoothing_window: usize,
    /// Apply the §V-G prediction adjustment.
    pub adjust_predictions: bool,
    /// Model throughput in log space.
    pub log_targets: bool,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// Policy subsection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySection {
    /// Probability a decision round performs a random movement.
    pub exploration: f64,
    /// Most files moved per decision.
    pub max_moves: usize,
    /// Minimum predicted relative gain before a move is worthwhile.
    pub min_gain: f64,
    /// Decision rounds a file rests after being moved.
    pub cooldown_rounds: u64,
    /// Recompute the layout every this many workload runs.
    pub move_every_runs: usize,
}

impl Default for GeomancyConfig {
    fn default() -> Self {
        let drl = DrlConfig::default();
        GeomancyConfig {
            engine: EngineSection {
                model: drl.model,
                train_window: drl.train_window,
                epochs: drl.epochs,
                learning_rate: drl.learning_rate,
                batch_size: drl.batch_size,
                smoothing_window: drl.smoothing_window,
                adjust_predictions: drl.adjust_predictions,
                log_targets: drl.log_targets,
                seed: drl.seed,
            },
            policy: PolicySection {
                exploration: 0.1,
                max_moves: 14,
                min_gain: 0.02,
                cooldown_rounds: 2,
                move_every_runs: 5,
            },
        }
    }
}

/// A configuration problem found by [`GeomancyConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl GeomancyConfig {
    /// Converts the engine section to a [`DrlConfig`].
    pub fn drl_config(&self) -> DrlConfig {
        DrlConfig {
            model: self.engine.model,
            train_window: self.engine.train_window,
            epochs: self.engine.epochs,
            learning_rate: self.engine.learning_rate,
            batch_size: self.engine.batch_size,
            smoothing_window: self.engine.smoothing_window,
            timesteps: 8,
            adjust_predictions: self.engine.adjust_predictions,
            log_targets: self.engine.log_targets,
            seed: self.engine.seed,
        }
    }

    /// Builds the configured dynamic policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if validation fails.
    pub fn build_policy(&self) -> Result<crate::policy::GeomancyDynamic, ConfigError> {
        self.validate()?;
        Ok(
            crate::policy::GeomancyDynamic::with_config(self.drl_config(), self.policy.exploration)
                .with_move_cap(self.policy.max_moves)
                .with_min_gain(self.policy.min_gain)
                .with_cooldown(self.policy.cooldown_rounds),
        )
    }

    /// Checks every field for sanity.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let e = &self.engine;
        let p = &self.policy;
        if !(1..=11).contains(&e.model) {
            return Err(ConfigError(format!(
                "engine.model must be a dense Table I model (1-11), got {}",
                e.model
            )));
        }
        if e.train_window == 0 || e.epochs == 0 || e.batch_size == 0 || e.smoothing_window == 0 {
            return Err(ConfigError(
                "engine windows, epochs, and batch size must be non-zero".into(),
            ));
        }
        if !(e.learning_rate > 0.0 && e.learning_rate.is_finite()) {
            return Err(ConfigError(format!(
                "engine.learning_rate must be positive, got {}",
                e.learning_rate
            )));
        }
        if !(0.0..=1.0).contains(&p.exploration) {
            return Err(ConfigError(format!(
                "policy.exploration must be in [0, 1], got {}",
                p.exploration
            )));
        }
        if p.max_moves == 0 || p.move_every_runs == 0 {
            return Err(ConfigError(
                "policy.max_moves and move_every_runs must be non-zero".into(),
            ));
        }
        if p.min_gain < 0.0 {
            return Err(ConfigError(format!(
                "policy.min_gain must be non-negative, got {}",
                p.min_gain
            )));
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Wraps read and parse failures as I/O errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if writing fails.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().expect("config is always serializable"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_buildable() {
        let config = GeomancyConfig::default();
        config.validate().unwrap();
        let _policy = config.build_policy().unwrap();
    }

    #[test]
    fn json_round_trip() {
        let config = GeomancyConfig::default();
        let restored = GeomancyConfig::from_json(&config.to_json().unwrap()).unwrap();
        assert_eq!(restored, config);
    }

    #[test]
    fn recurrent_model_rejected() {
        let mut config = GeomancyConfig::default();
        config.engine.model = 12;
        let err = config.validate().unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn bad_exploration_rejected() {
        let mut config = GeomancyConfig::default();
        config.policy.exploration = 1.5;
        assert!(config.validate().is_err());
        assert!(config.build_policy().is_err());
    }

    #[test]
    fn zero_learning_rate_rejected() {
        let mut config = GeomancyConfig::default();
        config.engine.learning_rate = 0.0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn file_round_trip() {
        let config = GeomancyConfig::default();
        let dir = std::env::temp_dir().join("geomancy_config_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("geomancy.json");
        config.save(&path).unwrap();
        assert_eq!(GeomancyConfig::load(&path).unwrap(), config);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drl_config_mirrors_engine_section() {
        let config = GeomancyConfig::default();
        let drl = config.drl_config();
        assert_eq!(drl.model, config.engine.model);
        assert_eq!(drl.train_window, config.engine.train_window);
        assert_eq!(drl.epochs, config.engine.epochs);
    }
}
