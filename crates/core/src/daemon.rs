//! The Interface Daemon (§V-A): "a networking middleware that allows
//! parallel requests to be sent between the target system, Geomancy, and
//! internally within Geomancy."
//!
//! The daemon owns the ReplayDB behind a message mailbox: monitoring agents
//! push record batches, the DRL engine pulls training batches, and both can
//! do so concurrently from different threads. In the paper the hops are
//! network sockets; here they are messages to a [`geomancy_runtime`] actor
//! with the same ordered request/response contract.
//!
//! The daemon is a state machine on the reactor, not a thread of its own:
//! [`InterfaceDaemon::spawn`] gives it a private single-worker reactor for
//! drop-in use, while [`InterfaceDaemon::spawn_on`] places it on a shared
//! pool next to other control-plane actors (see
//! [`crate::scheduler::MovePlanner`]).

use std::collections::BTreeMap;

use crossbeam::channel::{bounded, Sender};
use geomancy_replaydb::db::LayoutEvent;
use geomancy_replaydb::ReplayDb;
use geomancy_runtime::{Actor, ActorHandle, Addr, Ctx, Reactor, ReactorConfig, StoppedReactor};
use geomancy_sim::record::{AccessRecord, DeviceId};

/// Mailbox depth before producers feel backpressure (blocking sends).
const DAEMON_MAILBOX: usize = 1024;

/// Requests the daemon accepts.
enum Request {
    StoreBatch {
        timestamp_micros: u64,
        records: Vec<AccessRecord>,
    },
    RecordLayoutEvent(LayoutEvent),
    QueryRecentPerDevice {
        x: usize,
        reply: Sender<BTreeMap<DeviceId, Vec<AccessRecord>>>,
    },
    QueryLen {
        reply: Sender<usize>,
    },
    Snapshot {
        reply: Sender<ReplayDb>,
    },
}

/// The actor owning the database. If it panics (e.g. an out-of-order
/// insert violating the ReplayDb contract), the reactor isolates it and
/// purges its mailbox, so queued reply senders drop and every waiting
/// client observes [`DaemonGone`] instead of hanging.
struct DaemonActor {
    db: ReplayDb,
}

impl Actor for DaemonActor {
    type Msg = Request;

    fn on_msg(&mut self, msg: Request, _ctx: &mut Ctx<'_>) {
        match msg {
            Request::StoreBatch {
                timestamp_micros,
                records,
            } => self.db.insert_batch(timestamp_micros, &records),
            Request::RecordLayoutEvent(event) => self.db.record_layout_event(event),
            Request::QueryRecentPerDevice { x, reply } => {
                let _ = reply.send(self.db.recent_per_device(x));
            }
            Request::QueryLen { reply } => {
                let _ = reply.send(self.db.len());
            }
            Request::Snapshot { reply } => {
                let _ = reply.send(self.db.clone());
            }
        }
    }
}

/// Errors returned by [`DaemonClient`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonGone;

impl std::fmt::Display for DaemonGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("interface daemon has shut down")
    }
}

impl std::error::Error for DaemonGone {}

/// A cloneable handle for talking to the daemon.
#[derive(Debug, Clone)]
pub struct DaemonClient {
    addr: Addr<Request>,
}

impl DaemonClient {
    /// Stores a batch of records ingested at one timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn store_batch(
        &self,
        timestamp_micros: u64,
        records: Vec<AccessRecord>,
    ) -> Result<(), DaemonGone> {
        self.addr
            .send(Request::StoreBatch {
                timestamp_micros,
                records,
            })
            .map_err(|_| DaemonGone)
    }

    /// Records a layout event.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn record_layout_event(&self, event: LayoutEvent) -> Result<(), DaemonGone> {
        self.addr
            .send(Request::RecordLayoutEvent(event))
            .map_err(|_| DaemonGone)
    }

    /// The §V-E training-batch query, answered by the daemon actor.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn recent_per_device(
        &self,
        x: usize,
    ) -> Result<BTreeMap<DeviceId, Vec<AccessRecord>>, DaemonGone> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(Request::QueryRecentPerDevice { x, reply })
            .map_err(|_| DaemonGone)?;
        rx.recv().map_err(|_| DaemonGone)
    }

    /// Number of stored records.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn len(&self) -> Result<usize, DaemonGone> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(Request::QueryLen { reply })
            .map_err(|_| DaemonGone)?;
        rx.recv().map_err(|_| DaemonGone)
    }

    /// Whether the database is empty.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn is_empty(&self) -> Result<bool, DaemonGone> {
        Ok(self.len()? == 0)
    }

    /// Full copy of the database (used by the DRL engine for a retrain).
    ///
    /// # Errors
    ///
    /// Returns [`DaemonGone`] if the daemon has shut down.
    pub fn snapshot(&self) -> Result<ReplayDb, DaemonGone> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(Request::Snapshot { reply })
            .map_err(|_| DaemonGone)?;
        rx.recv().map_err(|_| DaemonGone)
    }
}

/// The daemon: a reactor actor owning the ReplayDB.
#[derive(Debug)]
pub struct InterfaceDaemon {
    /// Present only for standalone daemons from [`InterfaceDaemon::spawn`].
    own_reactor: Option<Reactor>,
    handle: Option<ActorHandle<DaemonActor>>,
    addr: Addr<Request>,
}

impl InterfaceDaemon {
    /// Spawns the daemon on a private single-worker reactor around an
    /// (optionally pre-seeded) database.
    pub fn spawn(db: ReplayDb) -> Self {
        let reactor = Reactor::new(ReactorConfig {
            workers: 1,
            name: "geomancy-daemon".to_string(),
            ..ReactorConfig::default()
        });
        let mut daemon = InterfaceDaemon::spawn_on(&reactor, db);
        daemon.own_reactor = Some(reactor);
        daemon
    }

    /// Spawns the daemon as one actor on a shared reactor. Use
    /// [`InterfaceDaemon::take_db`] after draining that reactor to recover
    /// the database; [`InterfaceDaemon::shutdown`] is for standalone
    /// daemons only.
    pub fn spawn_on(reactor: &Reactor, db: ReplayDb) -> Self {
        let (addr, handle) = reactor.spawn("daemon", DAEMON_MAILBOX, DaemonActor { db });
        InterfaceDaemon {
            own_reactor: None,
            handle: Some(handle),
            addr,
        }
    }

    /// Creates a client handle.
    pub fn client(&self) -> DaemonClient {
        DaemonClient {
            addr: self.addr.clone(),
        }
    }

    /// Stops a standalone daemon and returns the final database. Queued
    /// store requests are drained before the actor stops.
    ///
    /// # Panics
    ///
    /// Panics if the daemon actor itself panicked, or if the daemon was
    /// spawned on a shared reactor (drain that reactor and call
    /// [`InterfaceDaemon::take_db`] instead).
    pub fn shutdown(mut self) -> ReplayDb {
        let reactor = self
            .own_reactor
            .take()
            .expect("shutdown() is only for standalone daemons");
        let stopped = reactor.shutdown();
        self.take_db(&stopped)
    }

    /// Reclaims the database from a drained shared reactor.
    ///
    /// # Panics
    ///
    /// Panics if the daemon actor panicked (the database was destroyed).
    pub fn take_db(mut self, stopped: &StoppedReactor) -> ReplayDb {
        stopped
            .take(self.handle.take().expect("daemon already taken"))
            .expect("daemon actor panicked")
            .db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::FileId;

    fn rec(n: u64, dev: u32) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(n),
            fsid: DeviceId(dev),
            rb: 10,
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    #[test]
    fn store_and_query_round_trip() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let client = daemon.client();
        client.store_batch(0, vec![rec(0, 0), rec(1, 1)]).unwrap();
        assert_eq!(client.len().unwrap(), 2);
        let per_device = client.recent_per_device(10).unwrap();
        assert_eq!(per_device.len(), 2);
        let db = daemon.shutdown();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn parallel_writers_all_land() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let client = daemon.client();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    client
                        // All threads share timestamp 0 so ordering is valid.
                        .store_batch(0, vec![rec(t * 1000 + i, (t % 2) as u32)])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let client = daemon.client();
        assert_eq!(client.len().unwrap(), 200);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let client = daemon.client();
        client.store_batch(0, vec![rec(0, 0)]).unwrap();
        let snap = client.snapshot().unwrap();
        client.store_batch(1, vec![rec(1, 0)]).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(client.len().unwrap(), 2);
    }

    #[test]
    fn client_errors_after_shutdown() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let client = daemon.client();
        let _ = daemon.shutdown();
        assert_eq!(client.len(), Err(DaemonGone));
        assert!(!DaemonGone.to_string().is_empty());
    }

    #[test]
    fn panicked_daemon_reports_gone_instead_of_hanging() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let client = daemon.client();
        client.store_batch(10, vec![rec(0, 0)]).unwrap();
        // Out-of-order timestamps violate the ReplayDb insert contract and
        // panic the daemon actor mid-request. Every subsequent query must
        // come back `DaemonGone` — the reply channel's sender is destroyed
        // when the dead actor's mailbox is purged, not parked forever.
        let _ = client.store_batch(5, vec![rec(1, 0)]);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match client.len() {
                Err(DaemonGone) => break,
                // The panic may still be unwinding; queries sent before the
                // daemon died can even succeed. Retry until disconnect.
                Ok(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "daemon never reported gone"
                    );
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(client.recent_per_device(4), Err(DaemonGone));
        assert_eq!(client.snapshot().map(|db| db.len()), Err(DaemonGone));
        // Dropping the daemon handle drains its reactor harmlessly.
        drop(daemon);
    }

    #[test]
    fn layout_events_flow_through() {
        let daemon = InterfaceDaemon::spawn(ReplayDb::new());
        let client = daemon.client();
        client
            .record_layout_event(LayoutEvent {
                timestamp_micros: 1,
                at_access: 7,
                movements: vec![],
            })
            .unwrap();
        let db = daemon.shutdown();
        assert_eq!(db.layout_events().len(), 1);
    }
}
