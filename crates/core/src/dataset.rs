//! Dataset assembly: turning ReplayDB records into training matrices.
//!
//! Two dataset shapes are used in the paper:
//!
//! 1. **Forecasting** (Tables II/III): from a per-device time series, the
//!    six §V-D features of recent accesses predict the throughput of the
//!    *next* access. Dense models see one feature row; recurrent models see
//!    a flattened window of rows.
//! 2. **Placement** (live tuning): features that are known *before* an
//!    access happens — intended bytes, current time, file id, and candidate
//!    location — predict the throughput that access would see. Varying only
//!    the location column across rows yields the per-device counterfactuals
//!    of §V-F.

use geomancy_nn::matrix::Matrix;
use geomancy_sim::record::AccessRecord;
use geomancy_trace::features::{raw_features, MinMaxNormalizer, ScalarNormalizer, Z};
use geomancy_trace::stats::moving_average;

/// A ready-to-train dataset with its fitted normalizers.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Normalized inputs, one row per sample.
    pub inputs: Matrix,
    /// Normalized targets (single column).
    pub targets: Matrix,
    /// Input normalizer (needed to normalize candidate rows at inference).
    pub feature_norm: MinMaxNormalizer,
    /// Target normalizer (needed to read predictions in bytes/second).
    pub target_norm: ScalarNormalizer,
    /// Whether targets were trained in `ln(1 + tp)` space (heavy-tailed
    /// throughput distributions condition MSE much better there).
    pub log_targets: bool,
}

impl Dataset {
    /// Converts a raw network output back to bytes/second, inverting both
    /// the normalization and (if used) the log transform.
    pub fn denormalize_target(&self, value: f64) -> f64 {
        let v = self.target_norm.denormalize(value);
        if self.log_targets {
            v.exp_m1().max(0.0)
        } else {
            v.max(0.0)
        }
    }
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the modeling/forecasting dataset of §V-C/§V-E from one device's
/// record series: the six features of a window of accesses ending at `i`
/// predict the smoothed throughput of access `i + horizon`.
///
/// `horizon = 0` is the paper's modeling task (the row describes the access
/// whose throughput is predicted — its features include the close
/// timestamps); `horizon = 1` is true next-access forecasting.
///
/// `window` is `1` for dense models and the timestep count for recurrent
/// ones. `smoothing` is the moving-average window applied to the throughput
/// series (the paper smooths before training; `1` disables).
///
/// # Panics
///
/// Panics if `window` or `smoothing` is zero, or there are too few records
/// to form a single sample.
pub fn forecasting_dataset(
    records: &[AccessRecord],
    window: usize,
    smoothing: usize,
    horizon: usize,
) -> Dataset {
    assert!(
        window > 0 && smoothing > 0,
        "window and smoothing must be non-zero"
    );
    assert!(
        records.len() + 1 > window + horizon,
        "need more than {} records, got {}",
        window + horizon - 1,
        records.len()
    );
    let throughput: Vec<f64> = records.iter().map(|r| r.throughput()).collect();
    let smoothed = moving_average(&throughput, smoothing);
    let raw_rows: Vec<[f64; Z]> = records.iter().map(raw_features).collect();
    let feature_norm = MinMaxNormalizer::fit(raw_rows.iter().map(|r| r.as_slice()));
    let target_norm = ScalarNormalizer::fit_scale_only(&smoothed);

    let n_samples = records.len() + 1 - window - horizon;
    let mut inputs = Matrix::zeros(n_samples, window * Z);
    let mut targets = Matrix::zeros(n_samples, 1);
    for s in 0..n_samples {
        for t in 0..window {
            let mut row = raw_rows[s + t];
            feature_norm.normalize(&mut row);
            for (j, &v) in row.iter().enumerate() {
                inputs[(s, t * Z + j)] = v;
            }
        }
        targets[(s, 0)] = target_norm.normalize(smoothed[s + window - 1 + horizon]);
    }
    Dataset {
        inputs,
        targets,
        feature_norm,
        target_norm,
        log_targets: false,
    }
}

/// Width of a placement feature row: `[rb, wb, ots, otms, fid, location]` —
/// the paper's `Z = 6` for the live experiment, with the two *pre-access*
/// timestamp parts and identifiers (close timestamps are not known before an
/// access happens, so unlike the offline study they cannot be inputs here).
pub const PLACEMENT_Z: usize = 6;

/// Raw placement features of a record.
pub fn placement_features(record: &AccessRecord) -> [f64; PLACEMENT_Z] {
    [
        record.rb as f64,
        record.wb as f64,
        record.ots as f64,
        record.otms as f64,
        record.fid.0 as f64,
        record.fsid.0 as f64,
    ]
}

/// Builds the placement dataset over an arbitrary record mix (all devices):
/// pre-access features → observed throughput (smoothed per the paper).
///
/// # Panics
///
/// Panics if fewer than 2 records are given or `smoothing` is zero.
pub fn placement_dataset(records: &[AccessRecord], smoothing: usize) -> Dataset {
    placement_dataset_with(records, smoothing, false)
}

/// [`placement_dataset`] with an optional `ln(1 + tp)` target transform.
/// Log-space targets condition MSE far better on heavy-tailed throughput
/// distributions (bursty mounts span two orders of magnitude).
///
/// # Panics
///
/// Panics if fewer than 2 records are given or `smoothing` is zero.
pub fn placement_dataset_with(
    records: &[AccessRecord],
    smoothing: usize,
    log_targets: bool,
) -> Dataset {
    assert!(smoothing > 0, "smoothing must be non-zero");
    assert!(records.len() >= 2, "need at least 2 records");
    let throughput: Vec<f64> = records.iter().map(|r| r.throughput()).collect();
    let smoothed = smooth_per_device(records, &throughput, smoothing);
    let transformed: Vec<f64> = if log_targets {
        smoothed.iter().map(|&v| v.max(0.0).ln_1p()).collect()
    } else {
        smoothed
    };
    let raw_rows: Vec<[f64; PLACEMENT_Z]> = records.iter().map(placement_features).collect();
    let feature_norm = MinMaxNormalizer::fit(raw_rows.iter().map(|r| r.as_slice()));
    let target_norm = ScalarNormalizer::fit_scale_only(&transformed);
    let mut inputs = Matrix::zeros(records.len(), PLACEMENT_Z);
    let mut targets = Matrix::zeros(records.len(), 1);
    for (i, row) in raw_rows.iter().enumerate() {
        let mut r = *row;
        feature_norm.normalize(&mut r);
        inputs.set_row(i, &r);
        targets[(i, 0)] = target_norm.normalize(transformed[i]);
    }
    Dataset {
        inputs,
        targets,
        feature_norm,
        target_norm,
        log_targets,
    }
}

/// Applies the §V-E moving average within each device's subsequence of the
/// merged record stream, scattering the smoothed values back into access
/// order.
///
/// Smoothing the merged stream directly would average *across* devices:
/// with interleaved fast/slow devices every target collapses toward the
/// global mean and the location column carries no signal — the network can
/// then do no better than predicting that mean for every candidate. The
/// paper smooths each ReplayDB time series (one per device), which this
/// reproduces; single-device streams are unchanged.
fn smooth_per_device(records: &[AccessRecord], throughput: &[f64], smoothing: usize) -> Vec<f64> {
    let mut by_device: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, r) in records.iter().enumerate() {
        by_device.entry(r.fsid.0).or_default().push(i);
    }
    let mut smoothed = vec![0.0; throughput.len()];
    for indices in by_device.values() {
        let series: Vec<f64> = indices.iter().map(|&i| throughput[i]).collect();
        for (&i, v) in indices.iter().zip(moving_average(&series, smoothing)) {
            smoothed[i] = v;
        }
    }
    smoothed
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{DeviceId, FileId};

    fn series(n: u64) -> Vec<AccessRecord> {
        (0..n)
            .map(|i| AccessRecord {
                access_number: i,
                fid: FileId(i % 3),
                fsid: DeviceId((i % 2) as u32),
                rb: 1000 + i * 10,
                wb: 0,
                ots: i * 2,
                otms: (i % 1000) as u16,
                cts: i * 2 + 1,
                ctms: 0,
            })
            .collect()
    }

    #[test]
    fn forecasting_dense_shapes() {
        let ds = forecasting_dataset(&series(50), 1, 4, 1);
        assert_eq!(ds.inputs.shape(), (49, Z));
        assert_eq!(ds.targets.shape(), (49, 1));
        assert_eq!(ds.len(), 49);
    }

    #[test]
    fn forecasting_windowed_shapes() {
        let ds = forecasting_dataset(&series(50), 8, 1, 1);
        assert_eq!(ds.inputs.shape(), (42, 8 * Z));
    }

    #[test]
    fn inputs_and_targets_normalized() {
        let ds = forecasting_dataset(&series(100), 1, 1, 1);
        for &v in ds.inputs.as_slice() {
            assert!((0.0..=1.0).contains(&v), "input {v} outside [0,1]");
        }
        for &v in ds.targets.as_slice() {
            assert!((0.0..=1.0).contains(&v), "target {v} outside [0,1]");
        }
    }

    #[test]
    fn target_is_next_access_throughput() {
        // With smoothing 1 the target of sample 0 (window 1) is the raw
        // throughput of record 1.
        let recs = series(10);
        let ds = forecasting_dataset(&recs, 1, 1, 1);
        let expected = ds.target_norm.normalize(recs[1].throughput());
        assert!((ds.targets[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn too_few_records_panics() {
        let _ = forecasting_dataset(&series(5), 5, 1, 1);
    }

    #[test]
    fn placement_features_include_location() {
        let recs = series(4);
        let row = placement_features(&recs[1]);
        assert_eq!(row[4], (recs[1].fid.0) as f64);
        assert_eq!(row[5], (recs[1].fsid.0) as f64);
        assert_eq!(row.len(), PLACEMENT_Z);
    }

    #[test]
    fn placement_dataset_shapes_and_normalization() {
        let ds = placement_dataset(&series(30), 4);
        assert_eq!(ds.inputs.shape(), (30, PLACEMENT_Z));
        assert_eq!(ds.targets.shape(), (30, 1));
        for &v in ds.inputs.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn smoothing_reduces_target_variance() {
        // Compare in physical units: normalization rescales by the (also
        // shrunken) smoothed range, so the comparison must be denormalized.
        let recs = series(200);
        let raw = forecasting_dataset(&recs, 1, 1, 0);
        let smooth = forecasting_dataset(&recs, 1, 16, 0);
        let var = |ds: &Dataset| {
            let vals: Vec<f64> = ds
                .targets
                .as_slice()
                .iter()
                .map(|&v| ds.target_norm.denormalize(v))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64
        };
        assert!(var(&smooth) <= var(&raw) + 1e-12);
    }
}
