//! Performance-drift detection.
//!
//! Geomancy's premise is that it "reacts to drops in performance"; the
//! paper retrains on a fixed cadence. This extension watches per-device
//! throughput for departures from a reference window so a deployment can
//! trigger an early retrain when a mount's behaviour shifts (a storm
//! starts, hardware degrades) instead of waiting out the cadence.

use std::collections::BTreeMap;

use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::DeviceId;
use geomancy_trace::stats::mean_std;

/// Drift verdict for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDrift {
    /// Mean throughput over the reference window, bytes/second.
    pub reference_mean: f64,
    /// Mean throughput over the recent window, bytes/second.
    pub recent_mean: f64,
    /// `(recent - reference) / reference`; negative = slowdown.
    pub relative_change: f64,
    /// Whether the change exceeds the detector's threshold.
    pub drifted: bool,
}

/// Watches per-device throughput for regime changes.
///
/// # Examples
///
/// ```
/// use geomancy_core::drift::DriftDetector;
/// use geomancy_replaydb::ReplayDb;
/// use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
///
/// // 200 fast accesses, then 50 much slower ones: drift.
/// let mut db = ReplayDb::new();
/// for i in 0..250u64 {
///     let dur_ms = if i < 200 { 200 } else { 500 };
///     db.insert(i, AccessRecord {
///         access_number: i, fid: FileId(0), fsid: DeviceId(0),
///         rb: 1_000_000, wb: 0,
///         ots: i * 2, otms: 0,
///         cts: i * 2, ctms: dur_ms,
///     });
/// }
/// let detector = DriftDetector { reference_window: 200, recent_window: 50, threshold: 0.4 };
/// assert!(detector.any_drift(&db));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DriftDetector {
    /// Accesses in the (older) reference window, per device.
    pub reference_window: usize,
    /// Accesses in the (newest) comparison window, per device.
    pub recent_window: usize,
    /// Relative change magnitude that counts as drift (e.g. `0.4` = ±40 %).
    pub threshold: f64,
}

impl Default for DriftDetector {
    fn default() -> Self {
        DriftDetector {
            reference_window: 600,
            recent_window: 150,
            threshold: 0.4,
        }
    }
}

impl DriftDetector {
    /// Evaluates every device with enough history. Devices with fewer than
    /// `reference_window / 2` reference accesses are skipped (verdicts on
    /// thin history are noise).
    pub fn evaluate(&self, db: &ReplayDb) -> BTreeMap<DeviceId, DeviceDrift> {
        let mut verdicts = BTreeMap::new();
        for device in db.devices_seen() {
            let all = db.recent_for_device(device, self.reference_window + self.recent_window);
            if all.len() < self.recent_window + self.reference_window / 2 {
                continue;
            }
            let split = all.len() - self.recent_window;
            let reference: Vec<f64> = all[..split].iter().map(|r| r.throughput()).collect();
            let recent: Vec<f64> = all[split..].iter().map(|r| r.throughput()).collect();
            let (ref_mean, _) = mean_std(&reference);
            let (rec_mean, _) = mean_std(&recent);
            if ref_mean <= 0.0 {
                continue;
            }
            let relative_change = (rec_mean - ref_mean) / ref_mean;
            verdicts.insert(
                device,
                DeviceDrift {
                    reference_mean: ref_mean,
                    recent_mean: rec_mean,
                    relative_change,
                    drifted: relative_change.abs() >= self.threshold,
                },
            );
        }
        verdicts
    }

    /// Whether any device has drifted — the "retrain now" signal.
    pub fn any_drift(&self, db: &ReplayDb) -> bool {
        self.evaluate(db).values().any(|v| v.drifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{AccessRecord, FileId};

    /// `n` accesses on one device at `before` B/s, then `m` at `after` B/s.
    fn shifting_db(n: u64, before_ms: u64, m: u64, after_ms: u64) -> ReplayDb {
        let mut db = ReplayDb::new();
        for i in 0..(n + m) {
            let dur = if i < n { before_ms } else { after_ms };
            db.insert(
                i,
                AccessRecord {
                    access_number: i,
                    fid: FileId(0),
                    fsid: DeviceId(0),
                    rb: 1_000_000,
                    wb: 0,
                    ots: i * 2,
                    otms: 0,
                    cts: i * 2 + dur / 1000,
                    ctms: (dur % 1000) as u16,
                },
            );
        }
        db
    }

    fn detector() -> DriftDetector {
        DriftDetector {
            reference_window: 200,
            recent_window: 50,
            threshold: 0.4,
        }
    }

    #[test]
    fn stable_throughput_is_not_drift() {
        let db = shifting_db(250, 200, 0, 0);
        let verdicts = detector().evaluate(&db);
        let v = verdicts[&DeviceId(0)];
        assert!(!v.drifted, "{v:?}");
        assert!(v.relative_change.abs() < 0.01);
    }

    #[test]
    fn halved_throughput_is_drift() {
        // 200 ms accesses, then 50 recent at 500 ms (2.5x slower).
        let db = shifting_db(200, 200, 50, 500);
        let verdicts = detector().evaluate(&db);
        let v = verdicts[&DeviceId(0)];
        assert!(v.drifted, "{v:?}");
        assert!(v.relative_change < -0.4);
        assert!(detector().any_drift(&db));
    }

    #[test]
    fn speedup_is_also_drift() {
        let db = shifting_db(200, 500, 50, 200);
        let v = detector().evaluate(&db)[&DeviceId(0)];
        assert!(v.drifted);
        assert!(v.relative_change > 0.4);
    }

    #[test]
    fn thin_history_is_skipped() {
        let db = shifting_db(30, 200, 10, 500);
        assert!(detector().evaluate(&db).is_empty());
        assert!(!detector().any_drift(&db));
    }

    #[test]
    fn devices_are_evaluated_independently() {
        let mut db = shifting_db(200, 200, 50, 500); // device 0 drifts
                                                     // Device 1: stable throughput throughout.
        for i in 0..250u64 {
            db.insert(
                1_000_000 + i,
                AccessRecord {
                    access_number: 10_000 + i,
                    fid: FileId(1),
                    fsid: DeviceId(1),
                    rb: 1_000_000,
                    wb: 0,
                    ots: 100_000 + i * 2,
                    otms: 0,
                    cts: 100_000 + i * 2,
                    ctms: 300,
                },
            );
        }
        let verdicts = detector().evaluate(&db);
        assert!(verdicts[&DeviceId(0)].drifted);
        assert!(!verdicts[&DeviceId(1)].drifted);
    }
}
