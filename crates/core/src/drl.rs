//! The Deep Reinforcement Learning engine (§V).
//!
//! The engine re-trains a neural network on the most recent ReplayDB
//! records, then predicts "the throughput of accessing a piece of data at
//! every potential location it can exist" by building a batch of rows where
//! "every row only \[has\] the location varying" (§V-C). The increase in
//! observed workload throughput after applying a layout is the reward that
//! flows back in as fresh training data on the next retrain cycle.

use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::{Matrix, MatrixView};
use geomancy_nn::metrics::RelativeError;
use geomancy_nn::network::Sequential;
use geomancy_nn::optimizer::Sgd;
use geomancy_nn::training::{train, DataSplit, TrainConfig};
use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_trace::features::{MinMaxNormalizer, ScalarNormalizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adjust::PredictionAdjuster;
use crate::dataset::{placement_dataset_with, Dataset, PLACEMENT_Z};
use crate::models::{build_model, ModelId};

/// Configuration of the DRL engine.
#[derive(Debug, Clone)]
pub struct DrlConfig {
    /// Table I model number (paper's choice: 1).
    pub model: u8,
    /// Most recent accesses pulled per device for a retrain (the paper's
    /// "X"; 12 000 total entries in the offline study).
    pub train_window: usize,
    /// Epochs per retrain. The offline study uses 200; online retrains use
    /// fewer because they happen every few workload runs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Moving-average window applied to throughput targets (§V-E).
    pub smoothing_window: usize,
    /// Window length for recurrent models (unused by dense models).
    pub timesteps: usize,
    /// Apply the §V-G MAE-based prediction adjustment.
    pub adjust_predictions: bool,
    /// Model throughput in `ln(1 + tp)` space. Off by default: linear MSE
    /// concentrates capacity on the high-throughput tail, which is exactly
    /// where placement gains live; the log option exists for ablation.
    pub log_targets: bool,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for DrlConfig {
    fn default() -> Self {
        DrlConfig {
            model: 1,
            train_window: 2_000,
            epochs: 40,
            learning_rate: 0.05,
            batch_size: 64,
            smoothing_window: 16,
            timesteps: 8,
            adjust_predictions: true,
            log_targets: false,
            seed: 0,
        }
    }
}

/// Summary of one retrain cycle.
#[derive(Debug, Clone)]
pub struct RetrainOutcome {
    /// Samples the network was trained on.
    pub samples: usize,
    /// Validation relative-error statistics.
    pub validation_error: RelativeError,
    /// Whether the model hit the divergence condition.
    pub diverged: bool,
    /// Wall-clock training time.
    pub training_time: std::time::Duration,
}

/// A "what would the throughput be" query for one file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementQuery {
    /// File being placed.
    pub fid: FileId,
    /// Bytes the next access is expected to read.
    pub read_bytes: u64,
    /// Bytes the next access is expected to write.
    pub write_bytes: u64,
    /// Current time, seconds part.
    pub now_secs: u64,
    /// Current time, millisecond part.
    pub now_ms: u16,
}

/// The DRL engine: network, normalizers, and prediction adjustment.
pub struct DrlEngine {
    config: DrlConfig,
    net: Sequential,
    feature_norm: Option<MinMaxNormalizer>,
    target_norm: Option<ScalarNormalizer>,
    log_targets: bool,
    adjuster: PredictionAdjuster,
    retrains: u64,
    /// Reusable candidate-feature batch for [`DrlEngine::rank_locations`]
    /// (resized in place, so steady-state ranking allocates nothing).
    query_buf: Matrix,
    /// Reusable prediction buffer for the fused multi-query path
    /// ([`DrlEngine::rank_locations_batch_into`]).
    batch_pred: Matrix,
}

impl std::fmt::Debug for DrlEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrlEngine")
            .field("model", &self.config.model)
            .field("architecture", &self.net.describe())
            .field("retrains", &self.retrains)
            .field("trained", &self.is_trained())
            .finish()
    }
}

impl DrlEngine {
    /// Creates an engine with freshly initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if the configured model number is outside 1–23 or is a
    /// recurrent model (the live engine predicts per-candidate rows, which
    /// requires a row-shaped dense model; the paper likewise deploys the
    /// dense model 1).
    pub fn new(config: DrlConfig) -> Self {
        let id = ModelId::new(config.model);
        assert!(
            !id.is_recurrent(),
            "the live placement engine requires a dense model (1-11)"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let net = build_model(id, PLACEMENT_Z, config.timesteps, &mut rng);
        DrlEngine {
            config,
            net,
            feature_norm: None,
            target_norm: None,
            log_targets: false,
            adjuster: PredictionAdjuster::identity(),
            retrains: 0,
            query_buf: Matrix::default(),
            batch_pred: Matrix::default(),
        }
    }

    /// Whether at least one retrain has completed.
    pub fn is_trained(&self) -> bool {
        self.retrains > 0
    }

    /// Number of retrain cycles run.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DrlConfig {
        &self.config
    }

    /// The current prediction adjuster (for inspection/ablation).
    pub fn adjuster(&self) -> PredictionAdjuster {
        self.adjuster
    }

    /// Pulls the training window from the ReplayDB: the most recent
    /// `train_window` accesses for each device, merged back into access
    /// order.
    fn training_records(&self, db: &ReplayDb) -> Vec<AccessRecord> {
        let mut records: Vec<AccessRecord> = db
            .recent_per_device(self.config.train_window)
            .into_values()
            .flatten()
            .collect();
        records.sort_by_key(|r| r.access_number);
        records
    }

    /// Re-trains the network on the most recent ReplayDB contents (§V-A:
    /// "the DRL engine re-trains a neural network using the most recent
    /// values stored in the ReplayDB").
    ///
    /// # Errors
    ///
    /// Returns `None` when the database holds too few records to form a
    /// 60/20/20 split (fewer than 5).
    pub fn retrain(&mut self, db: &ReplayDb) -> Option<RetrainOutcome> {
        let records = self.training_records(db);
        self.fit(&records)
    }

    /// Warm-start incremental fit: continues training the *current*
    /// weights on `fresh` delta records mixed with `replay` records
    /// sampled from older history (the anti-catastrophic-forgetting mix;
    /// see `TrainerConfig::replay_ratio` in the serve layer). Unlike
    /// [`DrlEngine::retrain`] there is no re-initialization, so the cost
    /// scales with the delta, not the history. Normalizers and the §V-G
    /// adjuster are refit on the mixed batch — the replay records anchor
    /// the feature ranges so a small delta cannot collapse them.
    ///
    /// Returns `None` (engine untouched) when the mix holds too few
    /// records to form a 60/20/20 split (fewer than 5).
    pub fn retrain_incremental(
        &mut self,
        fresh: &[AccessRecord],
        replay: &[AccessRecord],
    ) -> Option<RetrainOutcome> {
        let mut records: Vec<AccessRecord> = Vec::with_capacity(fresh.len() + replay.len());
        records.extend_from_slice(replay);
        records.extend_from_slice(fresh);
        records.sort_by_key(|r| r.access_number);
        self.fit(&records)
    }

    /// One warm gradient step on a pre-built normalized batch — the
    /// inner unit of an incremental fit, exposed so steady-state
    /// behaviour is testable: with warmed scratch arenas (one prior fit)
    /// a step performs no heap allocation. Returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes do not match the network.
    pub fn incremental_step(
        &mut self,
        inputs: MatrixView<'_>,
        targets: MatrixView<'_>,
        optimizer: &mut Sgd,
    ) -> f64 {
        self.net
            .train_batch_view(inputs, targets, Loss::MeanSquaredError, optimizer)
    }

    /// The model architecture in the paper's Table I notation — the
    /// trainer's spec-change detector: a published model whose spec
    /// differs from the configured one forces a full retrain.
    pub fn spec(&self) -> String {
        self.net.describe()
    }

    /// Deep copy of the trained state: a new engine with the same
    /// weights, normalizers, and adjuster, but cold (empty) scratch
    /// buffers. The trainer keeps the master engine for the next warm
    /// start and publishes forks to the model slot, since publication
    /// moves the engine out to the serving thread.
    pub fn fork(&self) -> DrlEngine {
        let mut copy = DrlEngine::new(self.config.clone());
        copy.net.import_weights(&self.net.export_weights());
        copy.feature_norm = self.feature_norm.clone();
        copy.target_norm = self.target_norm.clone();
        copy.log_targets = self.log_targets;
        copy.adjuster = self.adjuster;
        copy.retrains = self.retrains;
        copy
    }

    /// Shared training core: builds the §V-C dataset from `records`,
    /// trains the current weights (fresh weights after
    /// [`DrlEngine::new`], warm weights on an incremental fit), and
    /// recalibrates normalizers and the adjuster.
    fn fit(&mut self, records: &[AccessRecord]) -> Option<RetrainOutcome> {
        if records.len() < 5 {
            return None;
        }
        let ds = placement_dataset_with(
            records,
            self.config.smoothing_window,
            self.config.log_targets,
        );
        // Destructure so the input/target matrices move into the split
        // instead of being cloned (the dataset is the retrain's largest
        // allocation).
        let Dataset {
            inputs,
            targets,
            feature_norm,
            target_norm,
            log_targets,
        } = ds;
        let denormalize = |v: f64| {
            let v = target_norm.denormalize(v);
            if log_targets {
                v.exp_m1().max(0.0)
            } else {
                v.max(0.0)
            }
        };
        let split = DataSplit::split_60_20_20(inputs, targets);
        let mut opt = Sgd::new(self.config.learning_rate);
        let report = train(
            &mut self.net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs: self.config.epochs,
                batch_size: self.config.batch_size,
                loss: Loss::MeanSquaredError,
                patience: None,
            },
        );
        // Calibrate the §V-G adjustment on the validation partition, in
        // *linear* (bytes/second) space regardless of the target transform.
        let val_pred_raw = self.net.predict(&split.validation.0);
        let to_linear = |m: &Matrix| m.map(denormalize);
        let val_error =
            RelativeError::compute(&to_linear(&val_pred_raw), &to_linear(&split.validation.1));
        self.adjuster = if self.config.adjust_predictions {
            PredictionAdjuster::from_error(&val_error)
        } else {
            PredictionAdjuster::identity()
        };
        self.feature_norm = Some(feature_norm);
        self.target_norm = Some(target_norm);
        self.log_targets = log_targets;
        self.retrains += 1;
        Some(RetrainOutcome {
            samples: split.train.0.rows(),
            validation_error: val_error,
            diverged: report.diverged,
            training_time: report.training_time,
        })
    }

    /// Predicts the throughput (bytes/second, adjusted) `query`'s next
    /// access would see at each of `candidates` — §V-F's per-location
    /// prediction structure, including the file's current location among
    /// the rows. Returns `(device, predicted throughput)` in input order.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`DrlEngine::retrain`].
    pub fn rank_locations(
        &mut self,
        query: &PlacementQuery,
        candidates: &[DeviceId],
    ) -> Vec<(DeviceId, f64)> {
        let mut out = Vec::new();
        self.rank_locations_into(query, candidates, &mut out);
        out
    }

    /// Allocation-free variant of [`DrlEngine::rank_locations`]: clears
    /// `out` and fills it with `(device, predicted throughput)` in input
    /// order. With a warm `out` (capacity ≥ `candidates.len()`) the whole
    /// query — feature rows, forward pass, ranking — reuses the engine's
    /// internal buffers and performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`DrlEngine::retrain`].
    pub fn rank_locations_into(
        &mut self,
        query: &PlacementQuery,
        candidates: &[DeviceId],
        out: &mut Vec<(DeviceId, f64)>,
    ) {
        let feature_norm = self
            .feature_norm
            .as_ref()
            .expect("rank_locations called before retrain");
        let target_norm = self.target_norm.as_ref().expect("normalizer missing");
        assert!(!candidates.is_empty(), "no candidate locations");
        self.query_buf.resize(candidates.len(), PLACEMENT_Z);
        for (i, &dev) in candidates.iter().enumerate() {
            let row = query_row(feature_norm, query, dev);
            self.query_buf.set_row(i, &row);
        }
        let pred = self.net.predict_ref(self.query_buf.view());
        out.clear();
        out.reserve(candidates.len());
        for (i, &dev) in candidates.iter().enumerate() {
            let tp = finish_prediction(pred[(i, 0)], target_norm, self.log_targets, self.adjuster);
            out.push((dev, tp));
        }
    }

    /// Fused multi-query ranking: one forward pass over
    /// `queries.len() x candidates.len()` rows — the serving layer's batched
    /// entry point, amortizing per-call dispatch across every placement
    /// decision coalesced into the batch (and crossing the network's
    /// parallel threshold far sooner than per-query passes would).
    ///
    /// Results land flat in `out`, chunked per query: entries
    /// `[q * candidates.len() .. (q + 1) * candidates.len()]` are query
    /// `q`'s `(device, predicted throughput)` pairs in candidate order.
    /// Like [`DrlEngine::rank_locations_into`], warm buffers make the
    /// steady state allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`DrlEngine::retrain`] or with
    /// no candidates.
    pub fn rank_locations_batch_into(
        &mut self,
        queries: &[PlacementQuery],
        candidates: &[DeviceId],
        out: &mut Vec<(DeviceId, f64)>,
    ) {
        let feature_norm = self
            .feature_norm
            .as_ref()
            .expect("rank_locations called before retrain");
        assert!(!candidates.is_empty(), "no candidate locations");
        let per = candidates.len();
        out.clear();
        if queries.is_empty() {
            return;
        }
        self.query_buf.resize(queries.len() * per, PLACEMENT_Z);
        for (qi, query) in queries.iter().enumerate() {
            for (ci, &dev) in candidates.iter().enumerate() {
                let row = query_row(feature_norm, query, dev);
                self.query_buf.set_row(qi * per + ci, &row);
            }
        }
        self.net
            .predict_into(self.query_buf.view(), &mut self.batch_pred);
        let target_norm = self.target_norm.as_ref().expect("normalizer missing");
        out.reserve(queries.len() * per);
        for qi in 0..queries.len() {
            for (ci, &dev) in candidates.iter().enumerate() {
                let normalized = self.batch_pred[(qi * per + ci, 0)];
                let tp =
                    finish_prediction(normalized, target_norm, self.log_targets, self.adjuster);
                out.push((dev, tp));
            }
        }
    }

    /// Convenience: the candidate with the highest adjusted prediction.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful retrain or with no candidates.
    pub fn best_location(
        &mut self,
        query: &PlacementQuery,
        candidates: &[DeviceId],
    ) -> (DeviceId, f64) {
        self.rank_locations(query, candidates)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("no candidates")
    }
}

/// Builds one normalized §V-C feature row for `(query, dev)`.
fn query_row(
    feature_norm: &MinMaxNormalizer,
    query: &PlacementQuery,
    dev: DeviceId,
) -> [f64; PLACEMENT_Z] {
    let mut row = [
        query.read_bytes as f64,
        query.write_bytes as f64,
        query.now_secs as f64,
        query.now_ms as f64,
        query.fid.0 as f64,
        dev.0 as f64,
    ];
    feature_norm.normalize(&mut row);
    // Queries are asked at "now", which lies just past the training window;
    // clamp into the trained range so the ReLU tower interpolates instead of
    // extrapolating the time trend.
    for v in &mut row {
        *v = v.clamp(0.0, 1.0);
    }
    row
}

/// Maps one raw network output to an adjusted throughput in bytes/second.
fn finish_prediction(
    normalized: f64,
    target_norm: &ScalarNormalizer,
    log_targets: bool,
    adjuster: PredictionAdjuster,
) -> f64 {
    // A non-finite output (a degenerate retrain) carries no information:
    // treat it as zero expected throughput so the Action Checker can still
    // rank the finite candidates.
    let tp = if normalized.is_finite() {
        let v = target_norm.denormalize(normalized);
        if log_targets {
            v.exp_m1().max(0.0)
        } else {
            v.max(0.0)
        }
    } else {
        0.0
    };
    adjuster.adjust(tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::DeviceId;

    /// Builds a ReplayDB where device 1 is consistently ~4x faster than
    /// device 0.
    fn biased_db(n: u64) -> ReplayDb {
        let mut db = ReplayDb::new();
        for i in 0..n {
            let dev = (i % 2) as u32;
            let dt_ms: u64 = if dev == 0 { 400 } else { 100 };
            let open_ms = i * 1000;
            let close_ms = open_ms + dt_ms;
            db.insert(
                i,
                AccessRecord {
                    access_number: i,
                    fid: FileId(i % 4),
                    fsid: DeviceId(dev),
                    rb: 1_000_000,
                    wb: 0,
                    ots: open_ms / 1000,
                    otms: (open_ms % 1000) as u16,
                    cts: close_ms / 1000,
                    ctms: (close_ms % 1000) as u16,
                },
            );
        }
        db
    }

    fn engine() -> DrlEngine {
        DrlEngine::new(DrlConfig {
            epochs: 80,
            smoothing_window: 4,
            ..DrlConfig::default()
        })
    }

    #[test]
    fn retrain_on_empty_db_returns_none() {
        let mut e = engine();
        assert!(e.retrain(&ReplayDb::new()).is_none());
        assert!(!e.is_trained());
    }

    #[test]
    fn retrain_learns_and_reports() {
        let db = biased_db(600);
        let mut e = engine();
        let outcome = e.retrain(&db).expect("enough data");
        assert!(e.is_trained());
        assert_eq!(e.retrains(), 1);
        assert!(outcome.samples > 100);
        assert!(
            !outcome.diverged,
            "model diverged: {:?}",
            outcome.validation_error
        );
    }

    #[test]
    fn engine_prefers_the_faster_device() {
        let db = biased_db(600);
        let mut e = engine();
        e.retrain(&db).unwrap();
        let query = PlacementQuery {
            fid: FileId(1),
            read_bytes: 1_000_000,
            write_bytes: 0,
            now_secs: 700,
            now_ms: 0,
        };
        let (best, tp) = e.best_location(&query, &[DeviceId(0), DeviceId(1)]);
        assert_eq!(best, DeviceId(1), "picked slower device (tp={tp})");
        assert!(tp > 0.0);
    }

    #[test]
    fn rank_includes_every_candidate_in_order() {
        let db = biased_db(400);
        let mut e = engine();
        e.retrain(&db).unwrap();
        let query = PlacementQuery {
            fid: FileId(0),
            read_bytes: 500_000,
            write_bytes: 0,
            now_secs: 500,
            now_ms: 0,
        };
        let ranked = e.rank_locations(&query, &[DeviceId(1), DeviceId(0)]);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, DeviceId(1));
        assert_eq!(ranked[1].0, DeviceId(0));
    }

    #[test]
    fn batch_rank_matches_per_query_rank() {
        let db = biased_db(400);
        let mut e = engine();
        e.retrain(&db).unwrap();
        let candidates = [DeviceId(0), DeviceId(1)];
        let queries: Vec<PlacementQuery> = (0..5)
            .map(|i| PlacementQuery {
                fid: FileId(i % 4),
                read_bytes: 100_000 * (i + 1),
                write_bytes: 0,
                now_secs: 500 + i,
                now_ms: 0,
            })
            .collect();
        let mut batched = Vec::new();
        e.rank_locations_batch_into(&queries, &candidates, &mut batched);
        assert_eq!(batched.len(), queries.len() * candidates.len());
        for (qi, query) in queries.iter().enumerate() {
            let solo = e.rank_locations(query, &candidates);
            let chunk = &batched[qi * candidates.len()..(qi + 1) * candidates.len()];
            for (s, b) in solo.iter().zip(chunk) {
                assert_eq!(s.0, b.0);
                assert!(
                    (s.1 - b.1).abs() <= 1e-9 * s.1.abs().max(1.0),
                    "query {qi}: solo {} vs batched {}",
                    s.1,
                    b.1
                );
            }
        }
        // Empty batch clears the output and predicts nothing.
        e.rank_locations_batch_into(&[], &candidates, &mut batched);
        assert!(batched.is_empty());
    }

    #[test]
    #[should_panic(expected = "before retrain")]
    fn rank_before_retrain_panics() {
        let mut e = engine();
        let query = PlacementQuery {
            fid: FileId(0),
            read_bytes: 1,
            write_bytes: 0,
            now_secs: 0,
            now_ms: 0,
        };
        let _ = e.rank_locations(&query, &[DeviceId(0)]);
    }

    #[test]
    #[should_panic(expected = "dense model")]
    fn recurrent_model_rejected_for_live_engine() {
        let _ = DrlEngine::new(DrlConfig {
            model: 12,
            ..DrlConfig::default()
        });
    }

    #[test]
    fn incremental_fit_learns_from_the_delta() {
        let db = biased_db(600);
        let mut e = engine();
        e.retrain(&db).unwrap();
        // Delta: 200 more records of the same bias, replayed with a slice
        // of the original history.
        let delta: Vec<AccessRecord> = biased_db(800)
            .records()
            .skip(600)
            .map(|s| s.record)
            .collect();
        let replay = db.recent(100);
        let outcome = e.retrain_incremental(&delta, &replay).expect("enough data");
        assert_eq!(e.retrains(), 2);
        assert!(!outcome.diverged);
        let query = PlacementQuery {
            fid: FileId(1),
            read_bytes: 1_000_000,
            write_bytes: 0,
            now_secs: 900,
            now_ms: 0,
        };
        let (best, _) = e.best_location(&query, &[DeviceId(0), DeviceId(1)]);
        assert_eq!(best, DeviceId(1), "warm-started model lost the bias");
    }

    #[test]
    fn incremental_fit_with_too_little_data_returns_none() {
        let mut e = engine();
        e.retrain(&biased_db(400)).unwrap();
        let tiny = biased_db(3).recent(3);
        assert!(e.retrain_incremental(&tiny, &[]).is_none());
        assert_eq!(e.retrains(), 1, "a refused fit must not count");
    }

    #[test]
    fn fork_predicts_identically_to_the_master() {
        let db = biased_db(400);
        let mut e = engine();
        e.retrain(&db).unwrap();
        let mut forked = e.fork();
        assert_eq!(forked.retrains(), e.retrains());
        assert_eq!(forked.spec(), e.spec());
        let query = PlacementQuery {
            fid: FileId(2),
            read_bytes: 750_000,
            write_bytes: 0,
            now_secs: 500,
            now_ms: 0,
        };
        let candidates = [DeviceId(0), DeviceId(1)];
        let master = e.rank_locations(&query, &candidates);
        let copy = forked.rank_locations(&query, &candidates);
        assert_eq!(master.len(), copy.len());
        for (m, c) in master.iter().zip(&copy) {
            assert_eq!(m.0, c.0);
            assert!(
                (m.1 - c.1).abs() <= 1e-12 * m.1.abs().max(1.0),
                "fork diverged: {} vs {}",
                m.1,
                c.1
            );
        }
    }

    #[test]
    fn adjustment_can_be_disabled() {
        let db = biased_db(400);
        let mut e = DrlEngine::new(DrlConfig {
            adjust_predictions: false,
            epochs: 20,
            smoothing_window: 4,
            ..DrlConfig::default()
        });
        e.retrain(&db).unwrap();
        assert_eq!(e.adjuster().mae_fraction(), 0.0);
    }
}
