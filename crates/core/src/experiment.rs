//! Experiment drivers reproducing §VI's three experiments.
//!
//! - [`run_policy_experiment`] — Experiments 1 & 2: one policy steering the
//!   BELLE II workload on the simulated Bluesky node (Figures 5a/5b).
//! - [`PinAll`] — the all-files-on-one-mount runs of Experiment 2/Table IV.
//! - [`run_dual_workload_experiment`] — Experiment 3: a second, untuned
//!   workload appears mid-run and Geomancy must adapt (Figure 6).

use std::collections::BTreeMap;

use geomancy_replaydb::db::LayoutEvent;
use geomancy_replaydb::ReplayDb;
use geomancy_sim::agents::ControlAgent;
use geomancy_sim::bluesky::{bluesky_system, Mount};
use geomancy_sim::cluster::{FileMeta, Layout, StorageSystem};
use geomancy_sim::record::{DeviceId, FileId};
use geomancy_trace::belle2::{Belle2Workload, WorkloadOp};
use geomancy_trace::stats::{mean_std, moving_average};

use crate::policy::{PlacementPolicy, PolicyContext};

/// Configuration shared by the experiment drivers.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Simulator and workload seed.
    pub seed: u64,
    /// Telemetry gathered before the measured phase ("BELLE 2 is run until
    /// Geomancy's monitoring agents can capture 10 000 accesses").
    pub warmup_accesses: usize,
    /// Workload runs in the measured phase.
    pub runs: usize,
    /// Policy cadence: recompute the layout every this many runs (paper: 5).
    pub move_every_runs: usize,
    /// Recent records the baselines consult.
    pub lookback: usize,
    /// Per-round transfer budget for the control agent (`None` = unlimited).
    pub transfer_budget: Option<u64>,
    /// Number of workload files (paper: 24).
    pub file_count: usize,
    /// Idle seconds between workload runs.
    pub inter_run_gap_secs: f64,
    /// Also recompute the layout between cadence points when the drift
    /// detector flags a per-device regime change (extension; off by
    /// default — the paper uses a fixed cadence). Only meaningful with
    /// dynamic policies: a static policy would spend its one placement on
    /// the first drift.
    pub early_retrain_on_drift: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0,
            warmup_accesses: 10_000,
            runs: 45,
            move_every_runs: 5,
            lookback: 4_000,
            transfer_budget: None,
            file_count: 24,
            inter_run_gap_secs: 5.0,
            early_retrain_on_drift: false,
        }
    }
}

/// One point of a throughput series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Access number (the paper's x-axis).
    pub access_number: u64,
    /// Observed throughput of this access, bytes/second.
    pub throughput: f64,
}

/// A cluster of file movements applied at one decision point (the bars under
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementCluster {
    /// Access number at which the layout was applied.
    pub at_access: u64,
    /// Files moved.
    pub files_moved: usize,
}

/// Outcome of one policy experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Policy name.
    pub policy: String,
    /// Per-access throughput during the measured phase.
    pub series: Vec<ThroughputPoint>,
    /// Movement clusters at each decision point.
    pub movements: Vec<MovementCluster>,
    /// Mean throughput over the measured phase, bytes/second.
    pub avg_throughput: f64,
    /// Population standard deviation of the series.
    pub std_throughput: f64,
    /// Fraction of measured accesses served by each mount (Table IV usage).
    pub usage_fraction: BTreeMap<String, f64>,
    /// Mean observed throughput per mount during the measured phase.
    pub per_mount_throughput: BTreeMap<String, (f64, f64)>,
    /// The telemetry gathered during the whole run (warm-up + measured),
    /// for post-hoc analysis and reporting.
    pub db: ReplayDb,
}

impl ExperimentResult {
    /// Buckets the series into averages of `bucket` consecutive accesses
    /// (for plotting / figure regeneration).
    pub fn bucketed_series(&self, bucket: usize) -> Vec<ThroughputPoint> {
        assert!(bucket > 0, "bucket must be non-zero");
        self.series
            .chunks(bucket)
            .map(|chunk| ThroughputPoint {
                access_number: chunk[chunk.len() / 2].access_number,
                throughput: chunk.iter().map(|p| p.throughput).sum::<f64>() / chunk.len() as f64,
            })
            .collect()
    }

    /// Moving-average-smoothed copy of the series.
    pub fn smoothed_series(&self, window: usize) -> Vec<ThroughputPoint> {
        let tps: Vec<f64> = self.series.iter().map(|p| p.throughput).collect();
        let smooth = moving_average(&tps, window);
        self.series
            .iter()
            .zip(smooth)
            .map(|(p, s)| ThroughputPoint {
                access_number: p.access_number,
                throughput: s,
            })
            .collect()
    }
}

/// Places every file on one mount and never moves it — the Experiment 2 /
/// Table IV "all data on a single storage point" baseline.
#[derive(Debug)]
pub struct PinAll {
    device: DeviceId,
    name: String,
    placed: bool,
}

impl PinAll {
    /// Pins all files to `mount`.
    pub fn new(mount: Mount) -> Self {
        PinAll {
            device: mount.device_id(),
            name: mount.name().to_string(),
            placed: false,
        }
    }
}

impl PlacementPolicy for PinAll {
    fn name(&self) -> String {
        format!("All on {}", self.name)
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        if self.placed {
            return None;
        }
        self.placed = true;
        Some(ctx.files.keys().map(|&fid| (fid, self.device)).collect())
    }
}

/// Shared driver state for a workload attached to a system.
struct Bench {
    system: StorageSystem,
    db: ReplayDb,
    control: ControlAgent,
}

impl Bench {
    fn new(config: &ExperimentConfig) -> (Self, Belle2Workload) {
        let mut system = bluesky_system(config.seed);
        let workload =
            Belle2Workload::with_params(config.seed.wrapping_add(1), config.file_count, 0);
        place_files_spread(&mut system, &workload);
        (
            Bench {
                system,
                db: ReplayDb::new(),
                control: ControlAgent::new(config.transfer_budget),
            },
            workload,
        )
    }

    /// Executes one workload op, logging telemetry; returns the throughput.
    fn execute(&mut self, op: &WorkloadOp) -> f64 {
        let record = if op.write {
            self.system.write_file(op.fid, op.bytes)
        } else {
            self.system.read_file(op.fid, op.bytes)
        }
        .expect("workload references a registered file");
        self.db.insert(self.system.clock().now_micros(), record);
        record.throughput()
    }

    fn context<'a>(
        &'a self,
        files: &'a BTreeMap<FileId, FileMeta>,
        devices: &'a [DeviceId],
        layout: &'a Layout,
        lookback: usize,
    ) -> PolicyContext<'a> {
        let free_bytes = self
            .system
            .devices()
            .iter()
            .map(|d| (d.id(), d.spec().capacity.saturating_sub(d.used_bytes())))
            .collect();
        PolicyContext {
            db: &self.db,
            files,
            devices,
            current_layout: layout,
            lookback,
            now: self.system.clock().now_secs_ms(),
            free_bytes,
        }
    }
}

/// Warm-up phase: run the workload while shuffling the layout between runs
/// (the paper's *dynamic random* telemetry, which Geomancy static trains
/// on). Shuffling breaks the file↔device confound so location effects are
/// identifiable, and it exercises every mount. Afterwards the layout is
/// reset to the even spread so every policy starts identically.
fn warmup(bench: &mut Bench, workload: &mut Belle2Workload, config: &ExperimentConfig) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed ^ 0x57A2_4D00);
    while bench.db.len() < config.warmup_accesses {
        for op in workload.next_run() {
            bench.execute(&op);
            if bench.db.len() >= config.warmup_accesses {
                break;
            }
        }
        bench.system.idle(config.inter_run_gap_secs);
        let devices = bench.system.online_devices();
        let shuffled: Layout = bench
            .system
            .files()
            .keys()
            .map(|&fid| (fid, devices[rng.gen_range(0..devices.len())]))
            .collect();
        let _ = bench.system.apply_layout(&shuffled);
    }
    let device_count = bench.system.devices().len();
    let spread: Layout = bench
        .system
        .files()
        .keys()
        .enumerate()
        .map(|(i, &fid)| (fid, DeviceId((i % device_count) as u32)))
        .collect();
    let _ = bench.system.apply_layout(&spread);
}

/// Registers the workload's files spread evenly across all mounts — the
/// common starting layout of every experiment (and of the serving layer's
/// load driver).
pub fn place_files_spread(system: &mut StorageSystem, workload: &Belle2Workload) {
    let device_count = system.devices().len();
    for (i, file) in workload.files().iter().enumerate() {
        let device = DeviceId((i % device_count) as u32);
        system
            .add_file(
                file.fid,
                FileMeta {
                    size: file.size,
                    path: file.path.clone(),
                },
                device,
            )
            .expect("initial spread placement fits");
    }
}

/// Runs one placement policy through warm-up plus the measured phase and
/// collects its throughput series (Experiments 1 and 2).
pub fn run_policy_experiment(
    policy: &mut dyn PlacementPolicy,
    config: &ExperimentConfig,
) -> ExperimentResult {
    let (mut bench, mut workload) = Bench::new(config);
    let files: BTreeMap<FileId, FileMeta> = bench.system.files().clone();

    // Warm-up: gather dynamic-random telemetry so every policy starts with
    // location-diverse history.
    warmup(&mut bench, &mut workload, config);

    // Measured phase.
    let mut series = Vec::new();
    let mut movements = Vec::new();
    let mut usage: BTreeMap<DeviceId, u64> = BTreeMap::new();
    let mut per_mount_tp: BTreeMap<DeviceId, Vec<f64>> = BTreeMap::new();
    let measured_start = bench.system.access_count();
    for run in 0..config.runs {
        for op in workload.next_run() {
            let location = bench.system.location_of(op.fid).expect("file registered");
            let tp = bench.execute(&op);
            let access_number = bench.system.access_count() - 1;
            series.push(ThroughputPoint {
                access_number: access_number - measured_start,
                throughput: tp,
            });
            *usage.entry(location).or_insert(0) += 1;
            per_mount_tp.entry(location).or_default().push(tp);
        }
        bench.system.idle(config.inter_run_gap_secs);

        let cadence_due = (run + 1) % config.move_every_runs == 0;
        let drift_due = !cadence_due
            && config.early_retrain_on_drift
            && crate::drift::DriftDetector::default().any_drift(&bench.db);
        if cadence_due || drift_due {
            let online = bench.system.online_devices();
            let layout = bench.system.layout();
            let new_layout = {
                let ctx = bench.context(&files, &online, &layout, config.lookback);
                policy.update(&ctx)
            };
            if let Some(new_layout) = new_layout {
                let (moved, _errors) = bench.control.apply(&mut bench.system, &new_layout);
                let at_access = bench.system.access_count() - measured_start;
                bench.db.record_layout_event(LayoutEvent {
                    timestamp_micros: bench.system.clock().now_micros(),
                    at_access,
                    movements: moved.clone(),
                });
                movements.push(MovementCluster {
                    at_access,
                    files_moved: moved.len(),
                });
            }
        }
    }

    let tps: Vec<f64> = series.iter().map(|p| p.throughput).collect();
    let (avg, std) = mean_std(&tps);
    let total = tps.len() as f64;
    let mount_name = |d: DeviceId| {
        bench
            .system
            .device(d)
            .map(|dev| dev.name().to_string())
            .unwrap_or_else(|_| d.to_string())
    };
    ExperimentResult {
        policy: policy.name(),
        series,
        movements,
        avg_throughput: avg,
        std_throughput: std,
        usage_fraction: usage
            .iter()
            .map(|(&d, &n)| (mount_name(d), n as f64 / total))
            .collect(),
        per_mount_throughput: per_mount_tp
            .iter()
            .map(|(&d, tps)| (mount_name(d), mean_std(tps)))
            .collect(),
        db: bench.db,
    }
}

/// Outcome of Experiment 3: throughput series of the tuned workload and of
/// the untuned duplicate that joins mid-run.
#[derive(Debug, Clone)]
pub struct DualWorkloadResult {
    /// Series of the Geomancy-tuned workload.
    pub tuned: Vec<ThroughputPoint>,
    /// Series of the untuned duplicate (starts at `onset_access`).
    pub untuned: Vec<ThroughputPoint>,
    /// Access number at which the duplicate workload started.
    pub onset_access: u64,
    /// Movement clusters of the tuned workload.
    pub movements: Vec<MovementCluster>,
    /// Final placement of the tuned workload's files.
    pub final_tuned_layout: Layout,
}

/// Runs Experiment 3: the tuned BELLE II workload runs alone, then an
/// untuned duplicate on a disjoint file set joins, changing the contention
/// picture; Geomancy keeps retuning the first workload (Figure 6).
pub fn run_dual_workload_experiment(
    policy: &mut dyn PlacementPolicy,
    config: &ExperimentConfig,
    solo_runs: usize,
) -> DualWorkloadResult {
    let (mut bench, mut workload_a) = Bench::new(config);
    let mut workload_b =
        Belle2Workload::with_params(config.seed.wrapping_add(2), config.file_count, 1000);
    // The duplicate workload parks its data on three of the six mounts
    // (var, tmp, pic) and never moves it — so its arrival changes the
    // contention picture in a way a layout change can route around.
    const DUPLICATE_MOUNTS: [u32; 3] = [1, 2, 4];
    for (i, file) in workload_b.files().iter().enumerate() {
        bench
            .system
            .add_file(
                file.fid,
                FileMeta {
                    size: file.size,
                    path: file.path.clone(),
                },
                DeviceId(DUPLICATE_MOUNTS[i % DUPLICATE_MOUNTS.len()]),
            )
            .expect("duplicate workload placement fits");
    }
    let tuned_files: BTreeMap<FileId, FileMeta> = workload_a
        .files()
        .iter()
        .map(|f| {
            (
                f.fid,
                FileMeta {
                    size: f.size,
                    path: f.path.clone(),
                },
            )
        })
        .collect();

    // Warm-up on the tuned workload alone (dynamic-random shuffling).
    warmup(&mut bench, &mut workload_a, config);

    let measured_start = bench.system.access_count();
    let mut tuned = Vec::new();
    let mut untuned = Vec::new();
    let mut movements = Vec::new();
    let mut onset_access = 0;
    for run in 0..config.runs {
        let ops_a = workload_a.next_run();
        let dual = run >= solo_runs;
        if dual && onset_access == 0 {
            onset_access = bench.system.access_count() - measured_start;
        }
        if dual {
            // Interleave the two workloads op-by-op. The simulator
            // serializes accesses, so true concurrency is modeled as ambient
            // load: while one stream accesses a device, the other stream's
            // current device carries the concurrent-stream load.
            const CONCURRENT_LOAD: f64 = 4.0;
            let ops_b = workload_b.next_run();
            let mut ia = ops_a.iter();
            let mut ib = ops_b.iter();
            loop {
                let mut progressed = false;
                let next_a = ia.next();
                let next_b = ib.next();
                if let Some(op) = next_a {
                    // Workload B is concurrently hammering its next target.
                    if let Some(b_op) = next_b {
                        if let Ok(dev) = bench.system.location_of(b_op.fid) {
                            bench.system.set_ambient_load(dev, CONCURRENT_LOAD);
                        }
                    }
                    let tp = bench.execute(op);
                    bench.system.clear_ambient_load();
                    tuned.push(ThroughputPoint {
                        access_number: bench.system.access_count() - 1 - measured_start,
                        throughput: tp,
                    });
                    progressed = true;
                }
                if let Some(op) = next_b {
                    if let Some(a_op) = next_a {
                        if let Ok(dev) = bench.system.location_of(a_op.fid) {
                            bench.system.set_ambient_load(dev, CONCURRENT_LOAD);
                        }
                    }
                    let tp = bench.execute(op);
                    bench.system.clear_ambient_load();
                    untuned.push(ThroughputPoint {
                        access_number: bench.system.access_count() - 1 - measured_start,
                        throughput: tp,
                    });
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        } else {
            for op in &ops_a {
                let tp = bench.execute(op);
                tuned.push(ThroughputPoint {
                    access_number: bench.system.access_count() - 1 - measured_start,
                    throughput: tp,
                });
            }
        }
        bench.system.idle(config.inter_run_gap_secs);

        if (run + 1) % config.move_every_runs == 0 {
            let online = bench.system.online_devices();
            let layout = bench.system.layout();
            let new_layout = {
                let ctx = bench.context(&tuned_files, &online, &layout, config.lookback);
                policy.update(&ctx)
            };
            if let Some(new_layout) = new_layout {
                let (moved, _errors) = bench.control.apply(&mut bench.system, &new_layout);
                movements.push(MovementCluster {
                    at_access: bench.system.access_count() - measured_start,
                    files_moved: moved.len(),
                });
            }
        }
    }

    let final_tuned_layout: Layout = bench
        .system
        .layout()
        .into_iter()
        .filter(|(fid, _)| tuned_files.contains_key(fid))
        .collect();
    DualWorkloadResult {
        tuned,
        untuned,
        onset_access,
        movements,
        final_tuned_layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RandomDynamic, SpreadStatic};

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            seed: 11,
            warmup_accesses: 300,
            runs: 6,
            move_every_runs: 2,
            lookback: 500,
            transfer_budget: None,
            file_count: 6,
            inter_run_gap_secs: 1.0,
            early_retrain_on_drift: false,
        }
    }

    #[test]
    fn spread_static_experiment_produces_series() {
        let mut policy = SpreadStatic::new();
        let result = run_policy_experiment(&mut policy, &tiny_config());
        assert!(!result.series.is_empty());
        assert!(result.avg_throughput > 0.0);
        assert_eq!(result.policy, "Spread static");
        // Usage fractions sum to 1.
        let total: f64 = result.usage_fraction.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_policy_triggers_movement_clusters() {
        let mut policy = RandomDynamic::new(3);
        let result = run_policy_experiment(&mut policy, &tiny_config());
        // 6 runs, cadence 2 → 3 decision points.
        assert_eq!(result.movements.len(), 3);
    }

    #[test]
    fn pin_all_runs_only_on_one_mount() {
        let mut policy = PinAll::new(Mount::UsbTmp);
        let result = run_policy_experiment(&mut policy, &tiny_config());
        // After the first decision point every access goes to USBtmp; the
        // overall usage there must dominate.
        let usb = result.usage_fraction.get("USBtmp").copied().unwrap_or(0.0);
        assert!(usb > 0.5, "USBtmp usage {usb}");
    }

    #[test]
    fn bucketed_series_shrinks() {
        let mut policy = SpreadStatic::new();
        let result = run_policy_experiment(&mut policy, &tiny_config());
        let bucketed = result.bucketed_series(50);
        assert!(bucketed.len() < result.series.len());
        assert!(bucketed.iter().all(|p| p.throughput > 0.0));
    }

    #[test]
    fn dual_workload_untuned_starts_at_onset() {
        let mut policy = RandomDynamic::new(9);
        let cfg = tiny_config();
        let result = run_dual_workload_experiment(&mut policy, &cfg, 3);
        assert!(!result.tuned.is_empty());
        assert!(!result.untuned.is_empty());
        assert!(result.onset_access > 0);
        let first_untuned = result.untuned.first().unwrap().access_number;
        assert!(first_untuned >= result.onset_access);
    }

    #[test]
    fn drift_trigger_adds_decision_points() {
        // The same run with drift-triggered retraining can only have at
        // least as many layout decisions as the cadence-only run.
        let base = tiny_config();
        let cadence_only = {
            let mut policy = RandomDynamic::new(3);
            run_policy_experiment(&mut policy, &base).movements.len()
        };
        let with_drift = {
            let mut config = tiny_config();
            config.early_retrain_on_drift = true;
            let mut policy = RandomDynamic::new(3);
            run_policy_experiment(&mut policy, &config).movements.len()
        };
        assert!(with_drift >= cadence_only, "{with_drift} < {cadence_only}");
    }

    #[test]
    fn same_seed_reproduces_static_experiment() {
        let run = || {
            let mut policy = SpreadStatic::new();
            run_policy_experiment(&mut policy, &tiny_config()).avg_throughput
        };
        assert_eq!(run(), run());
    }
}
