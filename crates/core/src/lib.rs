//! # geomancy-core
//!
//! The core of the Geomancy reproduction (ISPASS 2020): the DRL engine that
//! learns where data should live, the Action Checker that sanity-checks its
//! movements, the Interface Daemon that brokers telemetry, the 23 Table I
//! model architectures, the baseline placement policies of §VI, and the
//! experiment drivers that regenerate the paper's figures.
//!
//! ## Architecture (paper §V-A)
//!
//! ```text
//! target system (geomancy-sim)           Geomancy (this crate)
//!  ├─ monitoring agents ──batches──▶ Interface Daemon ──▶ ReplayDB
//!  └─ control agents   ◀──layouts── Action Checker ◀── DRL engine
//! ```
//!
//! # Examples
//!
//! Train the engine on gathered telemetry and ask where a file should go:
//!
//! ```
//! use geomancy_core::drl::{DrlConfig, DrlEngine, PlacementQuery};
//! use geomancy_replaydb::ReplayDb;
//! use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
//!
//! let mut db = ReplayDb::new();
//! for i in 0..600u64 {
//!     // Accesses arrive in per-device streaks, like real workload scans.
//!     let dev = ((i / 10) % 2) as u32;
//!     let ms = if dev == 0 { 400 } else { 100 };
//!     db.insert(i, AccessRecord {
//!         access_number: i,
//!         fid: FileId(i % 4),
//!         fsid: DeviceId(dev),
//!         rb: 1_000_000, wb: 0,
//!         ots: i, otms: 0,
//!         cts: i + ms / 1000, ctms: (ms % 1000) as u16,
//!     });
//! }
//! let mut engine = DrlEngine::new(DrlConfig {
//!     epochs: 80,
//!     smoothing_window: 4,
//!     ..DrlConfig::default()
//! });
//! engine.retrain(&db).expect("enough telemetry");
//! let query = PlacementQuery {
//!     fid: FileId(0),
//!     read_bytes: 1_000_000,
//!     write_bytes: 0,
//!     now_secs: 200,
//!     now_ms: 0,
//! };
//! let (best, _tp) = engine.best_location(&query, &[DeviceId(0), DeviceId(1)]);
//! assert_eq!(best, DeviceId(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod adjust;
pub mod config;
pub mod daemon;
pub mod dataset;
pub mod drift;
pub mod drl;
pub mod experiment;
pub mod models;
pub mod policy;
pub mod registry;
pub mod report;
pub mod scheduler;

pub use action::{ActionChecker, ActionKind, CheckedAction};
pub use adjust::PredictionAdjuster;
pub use config::{ConfigError, GeomancyConfig};
pub use daemon::{DaemonClient, DaemonGone, InterfaceDaemon};
pub use drift::{DeviceDrift, DriftDetector};
pub use drl::{DrlConfig, DrlEngine, PlacementQuery, RetrainOutcome};
pub use experiment::{
    run_dual_workload_experiment, run_policy_experiment, DualWorkloadResult, ExperimentConfig,
    ExperimentResult, MovementCluster, PinAll, ThroughputPoint,
};
pub use models::{build_model, ModelId};
pub use policy::{
    GeomancyDynamic, GeomancyStatic, Lfu, Lru, Mru, PlacementPolicy, PolicyContext, RandomDynamic,
    RandomStatic, SpreadStatic,
};
pub use registry::{LocationRegistry, StoragePoint};
pub use report::PerformanceReport;
pub use scheduler::{
    GapPrediction, GapScheduler, MovePlanner, PlannerConfig, PlannerGone, ScheduledMove,
};
