//! The 23 candidate architectures of Table I.
//!
//! Each model is expressed exactly as the paper lists it, parameterized on
//! `Z` (the number of performance metrics; 6 for the BELLE II experiment)
//! and, for recurrent models, the input window length in timesteps.
//!
//! Two rows of the published table are ambiguous in the original typesetting
//! (models 9 and 10 render with duplicated/blank cells); the assumptions
//! made here are noted on their constructors and produce the published
//! qualitative behaviour (both diverge on the people mount).

use geomancy_nn::activation::Activation;
use geomancy_nn::layers::{Dense, Gru, Lstm, SimpleRnn};
use geomancy_nn::network::Sequential;
use rand::rngs::StdRng;

/// Identifier of a Table I model (1–23).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(u8);

impl ModelId {
    /// Creates a model id.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 23`.
    pub fn new(n: u8) -> Self {
        assert!((1..=23).contains(&n), "Table I has models 1..=23, got {n}");
        ModelId(n)
    }

    /// The model number as printed in Table I.
    pub fn number(self) -> u8 {
        self.0
    }

    /// All 23 ids in table order.
    pub fn all() -> Vec<ModelId> {
        (1..=23).map(ModelId).collect()
    }

    /// Whether the model's first layer is recurrent (consumes a window).
    pub fn is_recurrent(self) -> bool {
        self.0 >= 12
    }

    /// The layer-structure cell of Table I for this model.
    pub fn components(self) -> &'static str {
        match self.0 {
            1 => "16Z (Dense) ReLU, 8Z (Dense) ReLU, 4Z (Dense) ReLU, 1 (Dense) Linear",
            2 => "16Z (Dense) ReLU, 8Z (Dense) ReLU, 1 (Dense) ReLU",
            3 => "16Z (Dense) ReLU, 8Z (Dense) ReLU, 4Z (Dense) ReLU, 1 (Dense) ReLU",
            4 => "16Z (Dense) ReLU, 8Z (Dense) ReLU, 1 (Dense) Linear",
            5 => "16Z (Dense) Linear, 8Z (Dense) Linear, 4Z (Dense) Linear, Z (Dense) Linear, 1 (Dense) ReLU",
            6 => "16Z (Dense) ReLU, 16Z (Dense) ReLU, 16Z (Dense) ReLU, 16Z (Dense) ReLU, 1 (Dense) ReLU",
            7 => "16Z (Dense) ReLU, 16Z (Dense) ReLU, 16Z (Dense) ReLU, 16Z (Dense) ReLU, 16Z (Dense) ReLU, 1 (Dense) ReLU",
            8 => "Z (Dense) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) ReLU",
            9 => "Z (Dense) ReLU x6, 1 (Dense) ReLU",
            10 => "Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            11 => "Z (Dense) ReLU, 1 (Dense) Linear",
            12 => "Z (LSTM) ReLU, 1 (Dense) Linear",
            13 => "Z (GRU) ReLU, 1 (Dense) Linear",
            14 => "Z (SimpleRNN) ReLU, 1 (Dense) Linear",
            15 => "Z (GRU) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            16 => "Z (GRU) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            17 => "Z (GRU) ReLU, 4Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            18 => "Z (SimpleRNN) ReLU, 4Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            19 => "Z (SimpleRNN) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            20 => "Z (SimpleRNN) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            21 => "Z (LSTM) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            22 => "Z (LSTM) ReLU, Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            23 => "Z (LSTM) ReLU, 4Z (Dense) ReLU, Z (Dense) ReLU, 1 (Dense) Linear",
            _ => unreachable!(),
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Model {}", self.0)
    }
}

/// Builds a dense tower: hidden widths (as multiples of `z`) with the given
/// hidden activation, topped by a 1-unit head.
fn dense_tower(
    input: usize,
    z: usize,
    hidden_mults: &[usize],
    hidden_act: Activation,
    head_act: Activation,
    rng: &mut StdRng,
) -> Sequential {
    let mut net = Sequential::new();
    let mut width = input;
    for &m in hidden_mults {
        let out = (m * z).max(1);
        net.push(Dense::new(width, out, hidden_act, rng));
        width = out;
    }
    net.push(Dense::new(width, 1, head_act, rng));
    net
}

/// Appends a dense tower on top of an existing (recurrent) stem.
fn extend_dense(
    net: &mut Sequential,
    z: usize,
    hidden_mults: &[usize],
    head_act: Activation,
    rng: &mut StdRng,
) {
    let mut width = net.output_size().expect("stem must have layers");
    for &m in hidden_mults {
        let out = (m * z).max(1);
        net.push(Dense::new(width, out, Activation::ReLU, rng));
        width = out;
    }
    net.push(Dense::new(width, 1, head_act, rng));
}

/// Constructs Table I model `id` for `z` input features.
///
/// Dense models (1–11) consume one `z`-wide feature row. Recurrent models
/// (12–23) consume a flattened window of `timesteps` rows of `z` features
/// (the paper trains them on the same time series; the window length is an
/// implementation parameter, 8 by default in the experiment harness).
///
/// # Panics
///
/// Panics if `z` or (for recurrent models) `timesteps` is zero.
pub fn build_model(id: ModelId, z: usize, timesteps: usize, rng: &mut StdRng) -> Sequential {
    assert!(z > 0, "z must be non-zero");
    use Activation::{Linear, ReLU};
    let n = id.number();
    if id.is_recurrent() {
        assert!(timesteps > 0, "recurrent models need a non-zero window");
    }
    match n {
        1 => dense_tower(z, z, &[16, 8, 4], ReLU, Linear, rng),
        2 => dense_tower(z, z, &[16, 8], ReLU, ReLU, rng),
        3 => dense_tower(z, z, &[16, 8, 4], ReLU, ReLU, rng),
        4 => dense_tower(z, z, &[16, 8], ReLU, Linear, rng),
        5 => dense_tower(z, z, &[16, 8, 4, 1], Linear, ReLU, rng),
        6 => dense_tower(z, z, &[16, 16, 16, 16], ReLU, ReLU, rng),
        7 => dense_tower(z, z, &[16, 16, 16, 16, 16], ReLU, ReLU, rng),
        8 => dense_tower(z, z, &[1, 1, 1, 1, 1], ReLU, ReLU, rng),
        // Table I's row 9 typesets identically to row 8 but reports very
        // different accuracy; we read it as one layer deeper.
        9 => dense_tower(z, z, &[1, 1, 1, 1, 1, 1], ReLU, ReLU, rng),
        // Row 10 typesets with a run of blank cells; read as two hidden
        // layers (it trains ~40 % longer than the one-layer model 11).
        10 => dense_tower(z, z, &[1, 1], ReLU, Linear, rng),
        11 => dense_tower(z, z, &[1], ReLU, Linear, rng),
        12..=14 => {
            let mut net = Sequential::new();
            push_recurrent(&mut net, n, z, timesteps, rng);
            extend_dense(&mut net, z, &[], Linear, rng);
            net
        }
        15 => recurrent_with_dense(13, z, timesteps, &[1], rng),
        16 => recurrent_with_dense(13, z, timesteps, &[1, 1], rng),
        17 => recurrent_with_dense(13, z, timesteps, &[4, 1], rng),
        18 => recurrent_with_dense(14, z, timesteps, &[4, 1], rng),
        19 => recurrent_with_dense(14, z, timesteps, &[1, 1, 1], rng),
        20 => recurrent_with_dense(14, z, timesteps, &[1], rng),
        21 => recurrent_with_dense(12, z, timesteps, &[1], rng),
        22 => recurrent_with_dense(12, z, timesteps, &[1, 1], rng),
        23 => recurrent_with_dense(12, z, timesteps, &[4, 1], rng),
        _ => unreachable!(),
    }
}

/// Pushes the recurrent stem for base model `base` (12 = LSTM, 13 = GRU,
/// 14 = SimpleRNN) with `z` units and ReLU activation, as Table I specifies.
fn push_recurrent(net: &mut Sequential, base: u8, z: usize, timesteps: usize, rng: &mut StdRng) {
    match base {
        12 => net.push(Lstm::new(z, z, timesteps, Activation::ReLU, rng)),
        13 => net.push(Gru::new(z, z, timesteps, Activation::ReLU, rng)),
        14 => net.push(SimpleRnn::new(z, z, timesteps, Activation::ReLU, rng)),
        _ => unreachable!("base {base} is not a recurrent family"),
    }
}

fn recurrent_with_dense(
    base: u8,
    z: usize,
    timesteps: usize,
    hidden_mults: &[usize],
    rng: &mut StdRng,
) -> Sequential {
    let mut net = Sequential::new();
    push_recurrent(&mut net, base, z, timesteps, rng);
    extend_dense(&mut net, z, hidden_mults, Activation::Linear, rng);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_nn::init::seeded_rng;
    use geomancy_nn::matrix::Matrix;

    #[test]
    fn all_returns_23_models() {
        let all = ModelId::all();
        assert_eq!(all.len(), 23);
        assert_eq!(all[0].number(), 1);
        assert_eq!(all[22].number(), 23);
    }

    #[test]
    #[should_panic(expected = "models 1..=23")]
    fn out_of_range_id_panics() {
        let _ = ModelId::new(24);
    }

    #[test]
    fn recurrent_split_matches_table() {
        for id in ModelId::all() {
            assert_eq!(id.is_recurrent(), id.number() >= 12, "{id}");
        }
    }

    #[test]
    fn model_1_structure_matches_paper() {
        let mut rng = seeded_rng(0);
        let net = build_model(ModelId::new(1), 6, 8, &mut rng);
        assert_eq!(
            net.describe(),
            "96 (Dense) ReLU, 48 (Dense) ReLU, 24 (Dense) ReLU, 1 (Dense) Linear"
        );
        assert_eq!(net.input_size(), Some(6));
        assert_eq!(net.output_size(), Some(1));
    }

    #[test]
    fn model_18_structure_matches_paper() {
        let mut rng = seeded_rng(0);
        let net = build_model(ModelId::new(18), 6, 8, &mut rng);
        assert_eq!(
            net.describe(),
            "6 (SimpleRNN) ReLU, 24 (Dense) ReLU, 6 (Dense) ReLU, 1 (Dense) Linear"
        );
        // Windowed input: 8 timesteps of 6 features.
        assert_eq!(net.input_size(), Some(48));
    }

    #[test]
    fn every_model_builds_and_predicts() {
        for id in ModelId::all() {
            let mut rng = seeded_rng(id.number() as u64);
            let mut net = build_model(id, 6, 4, &mut rng);
            let input_width = net.input_size().unwrap();
            let expected = if id.is_recurrent() { 24 } else { 6 };
            assert_eq!(input_width, expected, "{id} input width");
            let out = net.predict(&Matrix::zeros(2, input_width));
            assert_eq!(out.shape(), (2, 1), "{id} output shape");
            assert!(!out.has_non_finite(), "{id} produced non-finite output");
        }
    }

    #[test]
    fn model_families_use_expected_stems() {
        let mut rng = seeded_rng(1);
        assert!(build_model(ModelId::new(12), 6, 4, &mut rng)
            .describe()
            .contains("LSTM"));
        assert!(build_model(ModelId::new(13), 6, 4, &mut rng)
            .describe()
            .contains("GRU"));
        assert!(build_model(ModelId::new(14), 6, 4, &mut rng)
            .describe()
            .contains("SimpleRNN"));
    }

    #[test]
    fn deeper_models_have_more_parameters() {
        let mut rng = seeded_rng(2);
        let m11 = build_model(ModelId::new(11), 6, 4, &mut rng).param_count();
        let m10 = build_model(ModelId::new(10), 6, 4, &mut rng).param_count();
        let m7 = build_model(ModelId::new(7), 6, 4, &mut rng).param_count();
        assert!(m10 > m11);
        assert!(m7 > m10);
    }

    #[test]
    fn components_text_present_for_all() {
        for id in ModelId::all() {
            assert!(!id.components().is_empty());
        }
    }
}
