//! The baseline placement policies of §VI: LRU, MRU, LFU, random
//! (static and dynamic), and the even-spread static baseline.

use geomancy_sim::cluster::Layout;
use geomancy_sim::record::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{group_assign, rank_devices_by_throughput, PlacementPolicy, PolicyContext};

/// Splits managed files into `(ordered, unused)` given a priority map; files
/// absent from the map are "unused" and end up on the slowest device.
fn order_files_by<K: Ord + Copy>(
    ctx: &PolicyContext<'_>,
    priority: &std::collections::BTreeMap<FileId, K>,
    descending: bool,
) -> (Vec<FileId>, Vec<FileId>) {
    let mut used: Vec<(FileId, K)> = Vec::new();
    let mut unused = Vec::new();
    for &fid in ctx.files.keys() {
        match priority.get(&fid) {
            Some(&k) => used.push((fid, k)),
            None => unused.push(fid),
        }
    }
    used.sort_by(|a, b| {
        if descending {
            b.1.cmp(&a.1)
        } else {
            a.1.cmp(&b.1)
        }
    });
    (used.into_iter().map(|(f, _)| f).collect(), unused)
}

/// LRU: "the least recently used files move to the slowest storage device,
/// and the most recently used files move to the fastest storage devices".
#[derive(Debug, Default)]
pub struct Lru;

impl PlacementPolicy for Lru {
    fn name(&self) -> String {
        "LRU".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        let devices = rank_devices_by_throughput(ctx.db, ctx.devices, ctx.lookback);
        let recency = ctx.db.last_access_numbers(ctx.lookback);
        let (ordered, unused) = order_files_by(ctx, &recency, true);
        Some(group_assign(&ordered, &unused, &devices))
    }
}

/// MRU (Chou *et al.*): "places the most recently used files on the slowest
/// storage devices" — beneficial for looping sequential scans.
#[derive(Debug, Default)]
pub struct Mru;

impl PlacementPolicy for Mru {
    fn name(&self) -> String {
        "MRU".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        let mut devices = rank_devices_by_throughput(ctx.db, ctx.devices, ctx.lookback);
        devices.reverse(); // most recently used → slowest
        let recency = ctx.db.last_access_numbers(ctx.lookback);
        let (ordered, unused) = order_files_by(ctx, &recency, true);
        // Unused files still belong on the slowest device, which is now the
        // *first* entry of the reversed ranking — group_assign puts unused on
        // the last entry, so pass the fastest-last ordering for them via the
        // ordered path and handle unused explicitly.
        let mut layout = group_assign(&ordered, &[], &devices);
        if let Some(&slowest) = devices.first() {
            for fid in unused {
                layout.insert(fid, slowest);
            }
        }
        Some(layout)
    }
}

/// LFU (Gupta *et al.*): "places heavily accessed files on fast nodes and
/// lower accessed files on slower nodes".
#[derive(Debug, Default)]
pub struct Lfu;

impl PlacementPolicy for Lfu {
    fn name(&self) -> String {
        "LFU".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        let devices = rank_devices_by_throughput(ctx.db, ctx.devices, ctx.lookback);
        let counts = ctx.db.access_counts(ctx.lookback);
        let (ordered, unused) = order_files_by(ctx, &counts, true);
        Some(group_assign(&ordered, &unused, &devices))
    }
}

/// Random static: "we randomly shuffle the locations of every file …
/// the files are never moved again once they are moved the first time."
#[derive(Debug)]
pub struct RandomStatic {
    rng: StdRng,
    placed: bool,
}

impl RandomStatic {
    /// Creates the policy with a shuffle seed.
    pub fn new(seed: u64) -> Self {
        RandomStatic {
            rng: StdRng::seed_from_u64(seed),
            placed: false,
        }
    }
}

impl PlacementPolicy for RandomStatic {
    fn name(&self) -> String {
        "Random static".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        if self.placed {
            return None;
        }
        self.placed = true;
        let mut layout = Layout::new();
        for &fid in ctx.files.keys() {
            let device = ctx.devices[self.rng.gen_range(0..ctx.devices.len())];
            layout.insert(fid, device);
        }
        Some(layout)
    }
}

/// Random dynamic: "shuffles the locations of the data between several runs
/// of the workload".
#[derive(Debug)]
pub struct RandomDynamic {
    rng: StdRng,
}

impl RandomDynamic {
    /// Creates the policy with a shuffle seed.
    pub fn new(seed: u64) -> Self {
        RandomDynamic {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PlacementPolicy for RandomDynamic {
    fn name(&self) -> String {
        "Random dynamic".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        let mut layout = Layout::new();
        for &fid in ctx.files.keys() {
            let device = ctx.devices[self.rng.gen_range(0..ctx.devices.len())];
            layout.insert(fid, device);
        }
        Some(layout)
    }
}

/// The "basic spread policy (evenly across all available mounts)" used as
/// the common starting point; round-robin by file order, applied once.
#[derive(Debug, Default)]
pub struct SpreadStatic {
    placed: bool,
}

impl SpreadStatic {
    /// Creates the spread policy.
    pub fn new() -> Self {
        SpreadStatic::default()
    }
}

impl PlacementPolicy for SpreadStatic {
    fn name(&self) -> String {
        "Spread static".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        if self.placed {
            return None;
        }
        self.placed = true;
        let mut layout = Layout::new();
        for (i, &fid) in ctx.files.keys().enumerate() {
            layout.insert(fid, ctx.devices[i % ctx.devices.len()]);
        }
        Some(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_replaydb::ReplayDb;
    use geomancy_sim::cluster::FileMeta;
    use geomancy_sim::record::{AccessRecord, DeviceId};
    use std::collections::BTreeMap;

    /// Two devices (0 slow, 1 fast), four files; files 0,1 recently/heavily
    /// used, file 2 older/lighter, file 3 never accessed.
    fn fixture() -> (ReplayDb, BTreeMap<FileId, FileMeta>) {
        let mut db = ReplayDb::new();
        let mut n = 0u64;
        let push = |db: &mut ReplayDb, fid: u64, dev: u32, n: &mut u64| {
            let rb = if dev == 0 { 100 } else { 1000 };
            db.insert(
                *n,
                AccessRecord {
                    access_number: *n,
                    fid: FileId(fid),
                    fsid: DeviceId(dev),
                    rb,
                    wb: 0,
                    ots: *n,
                    otms: 0,
                    cts: *n + 1,
                    ctms: 0,
                },
            );
            *n += 1;
        };
        push(&mut db, 2, 0, &mut n); // file 2: oldest
        for _ in 0..3 {
            push(&mut db, 0, 1, &mut n);
        }
        for _ in 0..2 {
            push(&mut db, 1, 0, &mut n);
        }
        let mut files = BTreeMap::new();
        for i in 0..4 {
            files.insert(
                FileId(i),
                FileMeta {
                    size: 100,
                    path: format!("f{i}"),
                },
            );
        }
        (db, files)
    }

    fn ctx<'a>(
        db: &'a ReplayDb,
        files: &'a BTreeMap<FileId, FileMeta>,
        devices: &'a [DeviceId],
        layout: &'a Layout,
    ) -> PolicyContext<'a> {
        PolicyContext {
            db,
            files,
            devices,
            current_layout: layout,
            lookback: 100,
            now: (10, 0),
            free_bytes: devices.iter().map(|&d| (d, u64::MAX)).collect(),
        }
    }

    const DEVICES: [DeviceId; 2] = [DeviceId(0), DeviceId(1)];

    #[test]
    fn lru_puts_most_recent_on_fastest() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let out = Lru.update(&c).unwrap();
        // Most recent file is 1 (accessed last), fastest device is 1.
        assert_eq!(out[&FileId(1)], DeviceId(1));
        // Never-used file 3 goes to the slowest device (0).
        assert_eq!(out[&FileId(3)], DeviceId(0));
    }

    #[test]
    fn mru_puts_most_recent_on_slowest() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let out = Mru.update(&c).unwrap();
        assert_eq!(out[&FileId(1)], DeviceId(0));
        // Unused file still on the slowest device.
        assert_eq!(out[&FileId(3)], DeviceId(0));
    }

    #[test]
    fn lfu_puts_most_accessed_on_fastest() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let out = Lfu.update(&c).unwrap();
        // File 0 has 3 accesses — the most.
        assert_eq!(out[&FileId(0)], DeviceId(1));
        assert_eq!(out[&FileId(3)], DeviceId(0));
    }

    #[test]
    fn random_static_places_once() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let mut p = RandomStatic::new(1);
        assert!(p.update(&c).is_some());
        assert!(p.update(&c).is_none());
    }

    #[test]
    fn random_dynamic_keeps_placing_and_varies() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let mut p = RandomDynamic::new(5);
        let layouts: Vec<Layout> = (0..10).map(|_| p.update(&c).unwrap()).collect();
        assert!(layouts.windows(2).any(|w| w[0] != w[1]), "never reshuffled");
    }

    #[test]
    fn spread_covers_all_devices_evenly() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let mut p = SpreadStatic::new();
        let out = p.update(&c).unwrap();
        let on0 = out.values().filter(|&&d| d == DeviceId(0)).count();
        let on1 = out.values().filter(|&&d| d == DeviceId(1)).count();
        assert_eq!(on0, 2);
        assert_eq!(on1, 2);
        assert!(p.update(&c).is_none());
    }

    #[test]
    fn all_policies_cover_every_file() {
        let (db, files) = fixture();
        let layout = Layout::new();
        let c = ctx(&db, &files, &DEVICES, &layout);
        let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(Lru),
            Box::new(Mru),
            Box::new(Lfu),
            Box::new(RandomStatic::new(0)),
            Box::new(RandomDynamic::new(0)),
            Box::new(SpreadStatic::new()),
        ];
        for p in &mut policies {
            let out = p.update(&c).unwrap();
            for fid in files.keys() {
                assert!(out.contains_key(fid), "{} missed {fid}", p.name());
            }
        }
    }
}
