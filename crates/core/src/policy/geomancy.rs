//! The Geomancy placement policies: dynamic (the paper's system) and static
//! (its one-shot ablation baseline).

use geomancy_sim::cluster::Layout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::ActionChecker;
use crate::drl::{DrlConfig, DrlEngine, PlacementQuery};

use super::{PlacementPolicy, PolicyContext};

/// Geomancy dynamic: retrain on the freshest ReplayDB contents, predict the
/// throughput of every file at every candidate location, and move each file
/// to its best checked location (§V, §VI "Geomancy dynamic placement").
pub struct GeomancyDynamic {
    engine: DrlEngine,
    checker: ActionChecker,
    /// Probability that a decision round includes a random movement
    /// ("random decision are used by Geomancy 10 % of the runs").
    exploration: f64,
    rng: StdRng,
    /// Most files moved per decision. The paper observes Geomancy moving
    /// 1–14 files per layout change and argues wholesale rearrangement
    /// "cannot happen immediately"; the cap enforces gradual convergence.
    max_moves: usize,
    /// Minimum predicted relative throughput gain before a move is worth
    /// its transfer cost ("it only applies layouts that the NN predicts
    /// will increase throughput performance").
    min_gain: f64,
    /// Decision rounds a file must rest after being moved ("adding a cool
    /// down period after file movement increased performance benefits",
    /// §VI). Prevents retrain-noise-driven thrash.
    cooldown_rounds: u64,
    /// Round counter and per-file last-moved round backing the cooldown.
    round: u64,
    last_moved: std::collections::BTreeMap<geomancy_sim::record::FileId, u64>,
    /// Reusable `(device, throughput)` ranking buffer — the per-file query
    /// loop refills it in place instead of collecting a fresh `Vec`.
    rank_buf: Vec<(geomancy_sim::record::DeviceId, f64)>,
}

impl std::fmt::Debug for GeomancyDynamic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeomancyDynamic")
            .field("engine", &self.engine)
            .finish()
    }
}

impl GeomancyDynamic {
    /// Creates the policy with the paper's defaults (model 1, 10 %
    /// exploration).
    pub fn new(seed: u64) -> Self {
        Self::with_config(
            DrlConfig {
                seed,
                ..DrlConfig::default()
            },
            0.1,
        )
    }

    /// Creates the policy with a custom engine configuration and exploration
    /// rate (ablation knobs). `exploration` is the probability that a
    /// decision round performs an additional random movement; validity
    /// checking and the all-invalid random fallback stay per-file in the
    /// Action Checker.
    ///
    /// # Panics
    ///
    /// Panics if `exploration` is outside `[0, 1]`.
    pub fn with_config(config: DrlConfig, exploration: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&exploration),
            "exploration must be in [0, 1]"
        );
        let seed = config.seed;
        GeomancyDynamic {
            engine: DrlEngine::new(config),
            checker: ActionChecker::with_exploration(seed.wrapping_add(1), 0.0),
            exploration,
            rng: StdRng::seed_from_u64(seed.wrapping_add(2)),
            max_moves: 14,
            min_gain: 0.02,
            cooldown_rounds: 2,
            round: 0,
            last_moved: std::collections::BTreeMap::new(),
            rank_buf: Vec::new(),
        }
    }

    /// Overrides the per-decision move cap (default 14).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_move_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "move cap must be non-zero");
        self.max_moves = cap;
        self
    }

    /// Overrides the minimum predicted relative gain required to move a
    /// file (default 0.02).
    ///
    /// # Panics
    ///
    /// Panics if `gain` is negative.
    pub fn with_min_gain(mut self, gain: f64) -> Self {
        assert!(gain >= 0.0, "minimum gain must be non-negative");
        self.min_gain = gain;
        self
    }

    /// Overrides the per-file move cooldown in decision rounds (default 2;
    /// 0 disables it).
    pub fn with_cooldown(mut self, rounds: u64) -> Self {
        self.cooldown_rounds = rounds;
        self
    }

    /// The underlying engine (for inspection).
    pub fn engine(&self) -> &DrlEngine {
        &self.engine
    }

    /// Computes a layout without consuming the policy trait object.
    fn compute(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        use std::collections::BTreeMap;

        let outcome = self.engine.retrain(ctx.db)?;
        // Gate on model quality: the paper created "at least 1350 potential
        // layouts, of which 60 are ever applied" — a layout from a model
        // that diverged or cannot predict held-out throughput is discarded
        // and the data stays put until the next cycle.
        if outcome.diverged {
            return None;
        }
        struct Candidate {
            fid: geomancy_sim::record::FileId,
            gain: f64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut layout = Layout::new();
        // Count of files assigned to each device as the greedy sweep
        // progresses; every extra file discounts that device's predicted
        // throughput so one hot device cannot absorb the whole working set
        // in a single round (the paper spreads such rearrangement "over
        // time").
        let mut assigned: BTreeMap<geomancy_sim::record::DeviceId, u32> = BTreeMap::new();
        const CONGESTION_DISCOUNT: f64 = 0.85;

        // Biggest (most traffic-carrying) files pick first.
        let mut files: Vec<_> = ctx.files.iter().collect();
        files.sort_by_key(|(_, meta)| std::cmp::Reverse(meta.size));

        for (&fid, meta) in files {
            let query = PlacementQuery {
                fid,
                // The BELLE II workload re-reads whole files, so the next
                // access is expected to read the file's size.
                read_bytes: meta.size,
                write_bytes: 0,
                now_secs: ctx.now.0,
                now_ms: ctx.now.1,
            };
            self.engine
                .rank_locations_into(&query, ctx.devices, &mut self.rank_buf);
            let ranked = &mut self.rank_buf;
            for (device, tp) in ranked.iter_mut() {
                let n = assigned.get(device).copied().unwrap_or(0);
                *tp *= CONGESTION_DISCOUNT.powi(n as i32);
            }
            let current = ctx.current_layout.get(&fid).copied();
            let predicted_current = current
                .and_then(|c| ranked.iter().find(|(d, _)| *d == c))
                .map(|(_, tp)| *tp);
            let action = self.checker.check(ranked, |d| {
                // A device is valid if the file already lives there or it has
                // room for another copy during migration.
                current == Some(d) || ctx.free_bytes.get(&d).copied().unwrap_or(0) >= meta.size
            });
            let gain = match (action.predicted_throughput, predicted_current) {
                (Some(new_tp), Some(cur_tp)) if cur_tp > 0.0 => (new_tp - cur_tp) / cur_tp,
                _ => 0.0,
            };
            let forced = action.kind != crate::action::ActionKind::Predicted;
            let cooling = self
                .last_moved
                .get(&fid)
                .map(|&moved_at| self.round < moved_at + self.cooldown_rounds)
                .unwrap_or(false);
            let moves = current.is_some() && current != Some(action.device) && !cooling;
            // A predicted move must beat the current location by the margin;
            // fallback moves are kept so the system keeps being discovered.
            let chosen = if moves && (forced || gain > self.min_gain) {
                candidates.push(Candidate { fid, gain });
                action.device
            } else {
                current.unwrap_or(action.device)
            };
            layout.insert(fid, chosen);
            *assigned.entry(chosen).or_insert(0) += 1;
        }
        // Keep only the best-gain moves, up to the cap.
        candidates.sort_by(|a, b| b.gain.total_cmp(&a.gain));
        for dropped in candidates.iter().skip(self.max_moves) {
            if let Some(&current) = ctx.current_layout.get(&dropped.fid) {
                layout.insert(dropped.fid, current);
            }
        }

        // Stamp the files that actually move this round for the cooldown.
        self.round += 1;
        let moved_now: Vec<_> = layout
            .iter()
            .filter(|(fid, dev)| {
                ctx.current_layout
                    .get(fid)
                    .map(|c| c != *dev)
                    .unwrap_or(false)
            })
            .map(|(&fid, _)| fid)
            .collect();
        for fid in moved_now {
            self.last_moved.insert(fid, self.round);
        }

        // Round-level ε-exploration: 10 % of decision rounds also perform a
        // random movement, keeping the availability picture fresh (§V-H).
        if !ctx.files.is_empty() && !ctx.devices.is_empty() && self.rng.gen_bool(self.exploration) {
            let fids: Vec<_> = ctx.files.keys().copied().collect();
            let fid = fids[self.rng.gen_range(0..fids.len())];
            let device = ctx.devices[self.rng.gen_range(0..ctx.devices.len())];
            let size = ctx.files.get(&fid).map(|m| m.size).unwrap_or(0);
            let fits = ctx.free_bytes.get(&device).copied().unwrap_or(0) >= size
                || ctx.current_layout.get(&fid) == Some(&device);
            if fits {
                layout.insert(fid, device);
            }
        }
        Some(layout)
    }

    /// Computes a *full* one-shot assignment: every file goes to its
    /// best-predicted (congestion-discounted) valid location, with no gain
    /// gate or move cap. This is the paper's "Geomancy static placement":
    /// "this prediction assigns files to their storage points".
    fn compute_full_assignment(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        use std::collections::BTreeMap;

        let outcome = self.engine.retrain(ctx.db)?;
        // An operator applying a one-shot tuned layout would not use a
        // model that failed to capture the target at all; retry next cycle.
        if outcome.diverged {
            return None;
        }
        let mut layout = Layout::new();
        let mut assigned: BTreeMap<geomancy_sim::record::DeviceId, u32> = BTreeMap::new();
        const CONGESTION_DISCOUNT: f64 = 0.85;
        let mut files: Vec<_> = ctx.files.iter().collect();
        files.sort_by_key(|(_, meta)| std::cmp::Reverse(meta.size));
        for (&fid, meta) in files {
            let query = PlacementQuery {
                fid,
                read_bytes: meta.size,
                write_bytes: 0,
                now_secs: ctx.now.0,
                now_ms: ctx.now.1,
            };
            self.engine
                .rank_locations_into(&query, ctx.devices, &mut self.rank_buf);
            let ranked = &mut self.rank_buf;
            for (device, tp) in ranked.iter_mut() {
                let n = assigned.get(device).copied().unwrap_or(0);
                *tp *= CONGESTION_DISCOUNT.powi(n as i32);
            }
            let current = ctx.current_layout.get(&fid).copied();
            let action = self.checker.check(ranked, |d| {
                current == Some(d) || ctx.free_bytes.get(&d).copied().unwrap_or(0) >= meta.size
            });
            layout.insert(fid, action.device);
            *assigned.entry(action.device).or_insert(0) += 1;
        }
        Some(layout)
    }
}

impl PlacementPolicy for GeomancyDynamic {
    fn name(&self) -> String {
        "Geomancy".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        self.compute(ctx)
    }
}

/// Geomancy static: "uses one prediction of Geomancy when trained with a
/// database of past performance metrics … and never moves them again."
pub struct GeomancyStatic {
    inner: GeomancyDynamic,
    placed: bool,
}

impl std::fmt::Debug for GeomancyStatic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeomancyStatic")
            .field("placed", &self.placed)
            .finish()
    }
}

impl GeomancyStatic {
    /// Creates the one-shot policy with default engine settings.
    pub fn new(seed: u64) -> Self {
        Self::with_config(DrlConfig {
            seed,
            ..DrlConfig::default()
        })
    }

    /// Creates the one-shot policy with a custom engine configuration, so
    /// the static/dynamic comparison of Experiment 2 trains both variants
    /// identically.
    pub fn with_config(config: DrlConfig) -> Self {
        GeomancyStatic {
            // The static variant takes the engine's prediction as-is (no
            // exploration): it simulates a manually applied tuned layout.
            inner: GeomancyDynamic::with_config(config, 0.0),
            placed: false,
        }
    }
}

impl PlacementPolicy for GeomancyStatic {
    fn name(&self) -> String {
        "Geomancy static".to_string()
    }

    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout> {
        if self.placed {
            return None;
        }
        let layout = self.inner.compute_full_assignment(ctx)?;
        self.placed = true;
        Some(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_replaydb::ReplayDb;
    use geomancy_sim::cluster::FileMeta;
    use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
    use std::collections::BTreeMap;

    /// Device 1 is consistently 5x faster than device 0. Accesses arrive in
    /// streaks of 10 per device, like the BELLE II workload's sequential
    /// scans, so moving-average smoothing preserves the per-device signal.
    fn fixture() -> (ReplayDb, BTreeMap<FileId, FileMeta>, Layout) {
        let mut db = ReplayDb::new();
        for i in 0..600u64 {
            let dev = ((i / 10) % 2) as u32;
            let dt = if dev == 0 { 500 } else { 100 };
            let open = i * 1000;
            db.insert(
                i,
                AccessRecord {
                    access_number: i,
                    fid: FileId(i % 3),
                    fsid: DeviceId(dev),
                    rb: 1_000_000,
                    wb: 0,
                    ots: open / 1000,
                    otms: (open % 1000) as u16,
                    cts: (open + dt) / 1000,
                    ctms: ((open + dt) % 1000) as u16,
                },
            );
        }
        let mut files = BTreeMap::new();
        let mut layout = Layout::new();
        for i in 0..3 {
            files.insert(
                FileId(i),
                FileMeta {
                    size: 1_000_000,
                    path: format!("f{i}"),
                },
            );
            layout.insert(FileId(i), DeviceId(0));
        }
        (db, files, layout)
    }

    fn context<'a>(
        db: &'a ReplayDb,
        files: &'a BTreeMap<FileId, FileMeta>,
        devices: &'a [DeviceId],
        layout: &'a Layout,
    ) -> PolicyContext<'a> {
        PolicyContext {
            db,
            files,
            devices,
            current_layout: layout,
            lookback: 1000,
            now: (500, 0),
            free_bytes: devices.iter().map(|&d| (d, u64::MAX)).collect(),
        }
    }

    #[test]
    fn dynamic_policy_moves_files_to_faster_device() {
        let (db, files, layout) = fixture();
        let devices = [DeviceId(0), DeviceId(1)];
        let mut policy = GeomancyDynamic::with_config(
            DrlConfig {
                epochs: 80,
                smoothing_window: 4,
                ..DrlConfig::default()
            },
            0.0,
        );
        let c = context(&db, &files, &devices, &layout);
        let out = policy.update(&c).expect("enough history to train");
        let on_fast = out.values().filter(|&&d| d == DeviceId(1)).count();
        assert!(
            on_fast >= 2,
            "expected most files on the fast device, layout: {out:?}"
        );
    }

    #[test]
    fn dynamic_policy_returns_none_without_history() {
        let db = ReplayDb::new();
        let files = BTreeMap::new();
        let layout = Layout::new();
        let devices = [DeviceId(0)];
        let mut policy = GeomancyDynamic::new(0);
        let c = context(&db, &files, &devices, &layout);
        assert!(policy.update(&c).is_none());
    }

    #[test]
    fn static_policy_places_exactly_once() {
        let (db, files, layout) = fixture();
        let devices = [DeviceId(0), DeviceId(1)];
        let mut policy = GeomancyStatic::with_config(DrlConfig {
            epochs: 80,
            smoothing_window: 4,
            seed: 3,
            ..DrlConfig::default()
        });
        let c = context(&db, &files, &devices, &layout);
        assert!(policy.update(&c).is_some());
        assert!(policy.update(&c).is_none());
    }

    #[test]
    fn capacity_validity_respected() {
        let (db, files, layout) = fixture();
        let devices = [DeviceId(0), DeviceId(1)];
        let mut policy = GeomancyDynamic::with_config(
            DrlConfig {
                epochs: 40,
                smoothing_window: 4,
                ..DrlConfig::default()
            },
            0.0,
        );
        let mut c = context(&db, &files, &devices, &layout);
        // Device 1 has no free space: every file must stay on device 0.
        c.free_bytes.insert(DeviceId(1), 0);
        let out = policy.update(&c).unwrap();
        assert!(out.values().all(|&d| d == DeviceId(0)), "layout: {out:?}");
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(GeomancyDynamic::new(0).name(), "Geomancy");
        assert_eq!(GeomancyStatic::new(0).name(), "Geomancy static");
    }
}
