//! Placement policies: Geomancy itself plus every baseline of §VI.

mod baselines;
mod geomancy;

pub use baselines::{Lfu, Lru, Mru, RandomDynamic, RandomStatic, SpreadStatic};
pub use geomancy::{GeomancyDynamic, GeomancyStatic};

use std::collections::BTreeMap;

use geomancy_replaydb::ReplayDb;
use geomancy_sim::cluster::{FileMeta, Layout};
use geomancy_sim::record::{DeviceId, FileId};

/// Everything a policy may consult when computing a layout.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Performance history.
    pub db: &'a ReplayDb,
    /// Files under management.
    pub files: &'a BTreeMap<FileId, FileMeta>,
    /// Candidate devices (online), in id order.
    pub devices: &'a [DeviceId],
    /// Current placement.
    pub current_layout: &'a Layout,
    /// How many recent records to consult for rankings.
    pub lookback: usize,
    /// Current simulated time as `(seconds, milliseconds)`.
    pub now: (u64, u16),
    /// Free bytes per device, for capacity validity checks.
    pub free_bytes: BTreeMap<DeviceId, u64>,
}

/// A data-placement policy.
///
/// Called at every decision point (for Geomancy: every five workload runs);
/// static policies return a layout once and `None` afterwards, dynamic
/// policies return a fresh layout each time.
pub trait PlacementPolicy {
    /// Human-readable policy name as used in the figures.
    fn name(&self) -> String;

    /// Computes a new layout, or `None` to leave data where it is.
    fn update(&mut self, ctx: &PolicyContext<'_>) -> Option<Layout>;
}

/// Ranks devices fastest-first by their mean observed throughput over the
/// most recent records ("this experiment starts by taking the current total
/// average throughput at each storage device using data collected in the
/// ReplayDB"). Devices with no history sort last, in id order.
pub fn rank_devices_by_throughput(
    db: &ReplayDb,
    devices: &[DeviceId],
    lookback: usize,
) -> Vec<DeviceId> {
    let mut ranked: Vec<(DeviceId, Option<f64>)> = devices
        .iter()
        .map(|&d| (d, db.mean_device_throughput(d, lookback)))
        .collect();
    ranked.sort_by(|a, b| match (a.1, b.1) {
        (Some(x), Some(y)) => y.total_cmp(&x),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.0.cmp(&b.0),
    });
    ranked.into_iter().map(|(d, _)| d).collect()
}

/// Divides `files_in_priority_order` evenly across `devices_fastest_first`:
/// the first group lands on the first device and so on; leftovers (and any
/// `unused` files) go to the slowest device, per §VI's group-assignment
/// description.
pub fn group_assign(
    files_in_priority_order: &[FileId],
    unused: &[FileId],
    devices_fastest_first: &[DeviceId],
) -> Layout {
    let mut layout = Layout::new();
    if devices_fastest_first.is_empty() {
        return layout;
    }
    let slowest = *devices_fastest_first.last().expect("non-empty devices");
    let n_dev = devices_fastest_first.len();
    let group = (files_in_priority_order.len() / n_dev).max(1);
    for (i, &fid) in files_in_priority_order.iter().enumerate() {
        let dev_idx = i / group;
        let device = if dev_idx < n_dev {
            devices_fastest_first[dev_idx]
        } else {
            slowest
        };
        layout.insert(fid, device);
    }
    for &fid in unused {
        layout.insert(fid, slowest);
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::AccessRecord;

    fn db_with_speeds() -> ReplayDb {
        // Device 0: 100 B/s, device 1: 1000 B/s, device 2: no data.
        let mut db = ReplayDb::new();
        for i in 0..10u64 {
            let dev = (i % 2) as u32;
            let rb = if dev == 0 { 100 } else { 1000 };
            db.insert(
                i,
                AccessRecord {
                    access_number: i,
                    fid: FileId(i),
                    fsid: DeviceId(dev),
                    rb,
                    wb: 0,
                    ots: i,
                    otms: 0,
                    cts: i + 1,
                    ctms: 0,
                },
            );
        }
        db
    }

    #[test]
    fn ranking_orders_fastest_first_and_unknown_last() {
        let db = db_with_speeds();
        let ranked = rank_devices_by_throughput(&db, &[DeviceId(0), DeviceId(1), DeviceId(2)], 100);
        assert_eq!(ranked, vec![DeviceId(1), DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn group_assign_even_division() {
        let files: Vec<FileId> = (0..6).map(FileId).collect();
        let devices = vec![DeviceId(0), DeviceId(1), DeviceId(2)];
        let layout = group_assign(&files, &[], &devices);
        assert_eq!(layout[&FileId(0)], DeviceId(0));
        assert_eq!(layout[&FileId(1)], DeviceId(0));
        assert_eq!(layout[&FileId(2)], DeviceId(1));
        assert_eq!(layout[&FileId(5)], DeviceId(2));
    }

    #[test]
    fn group_assign_leftovers_go_to_slowest() {
        let files: Vec<FileId> = (0..7).map(FileId).collect();
        let devices = vec![DeviceId(0), DeviceId(1), DeviceId(2)];
        let layout = group_assign(&files, &[], &devices);
        // Group size 7/3 = 2; files 6 overflows past the last device.
        assert_eq!(layout[&FileId(6)], DeviceId(2));
    }

    #[test]
    fn group_assign_unused_files_go_to_slowest() {
        let layout = group_assign(&[FileId(0)], &[FileId(9)], &[DeviceId(0), DeviceId(1)]);
        assert_eq!(layout[&FileId(9)], DeviceId(1));
    }

    #[test]
    fn group_assign_empty_devices_yields_empty_layout() {
        let layout = group_assign(&[FileId(0)], &[], &[]);
        assert!(layout.is_empty());
    }
}
