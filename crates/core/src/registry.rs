//! Location registry and file-location configuration (§V-F).
//!
//! "Before any predictions are made, any potential storage points that the
//! file can be put on are refreshed and saved as a configuration file", and
//! "at the beginning of each run, the workload requests the current
//! locations of the files from a configuration file that Geomancy
//! configures after any data movement."

use std::collections::BTreeMap;
use std::path::Path;

use geomancy_sim::cluster::{Layout, StorageSystem};
use geomancy_sim::record::{DeviceId, FileId};
use serde::{Deserialize, Serialize};

/// One candidate storage point as recorded in the registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoragePoint {
    /// Device id.
    pub device: DeviceId,
    /// Mount name.
    pub name: String,
    /// Whether the device was reachable at refresh time.
    pub online: bool,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Free bytes at refresh time.
    pub free: u64,
}

/// The refreshed set of candidate storage points plus the current file
/// placement — the configuration file Geomancy and the workload share.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LocationRegistry {
    /// Candidate storage points, in device-id order.
    pub storage_points: Vec<StoragePoint>,
    /// Current file → device assignment.
    pub layout: BTreeMap<FileId, DeviceId>,
    /// Simulated microseconds of the last refresh.
    pub refreshed_at_micros: u64,
}

impl LocationRegistry {
    /// Builds a registry snapshot from the live system.
    pub fn refresh(system: &StorageSystem) -> Self {
        LocationRegistry {
            storage_points: system
                .devices()
                .iter()
                .map(|d| StoragePoint {
                    device: d.id(),
                    name: d.name().to_string(),
                    online: d.is_online(),
                    capacity: d.spec().capacity,
                    free: d.spec().capacity.saturating_sub(d.used_bytes()),
                })
                .collect(),
            layout: system.layout(),
            refreshed_at_micros: system.clock().now_micros(),
        }
    }

    /// Devices a file of `size` bytes can currently be placed on ("whatever
    /// prediction a neural network makes is constrained by where the file
    /// can go").
    pub fn candidates_for(&self, size: u64) -> Vec<DeviceId> {
        self.storage_points
            .iter()
            .filter(|p| p.online && p.free >= size)
            .map(|p| p.device)
            .collect()
    }

    /// The workload-facing lookup: where does `fid` currently live?
    pub fn location_of(&self, fid: FileId) -> Option<DeviceId> {
        self.layout.get(&fid).copied()
    }

    /// Updates the layout after a movement round.
    pub fn record_layout(&mut self, layout: &Layout) {
        self.layout = layout.clone();
    }

    /// Serializes to a JSON configuration string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a JSON configuration string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the configuration file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error (serialization of this type cannot fail).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = self.to_json().expect("registry is always serializable");
        std::fs::write(path, json)
    }

    /// Reads a configuration file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error wrapping both read and parse failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::bluesky::{bluesky_system, Mount};
    use geomancy_sim::cluster::FileMeta;

    fn system_with_file() -> StorageSystem {
        let mut system = bluesky_system(5);
        system
            .add_file(
                FileId(1),
                FileMeta {
                    size: 1_000_000,
                    path: "reg/test.root".into(),
                },
                Mount::Tmp.device_id(),
            )
            .unwrap();
        system
    }

    #[test]
    fn refresh_captures_all_devices_and_layout() {
        let system = system_with_file();
        let registry = LocationRegistry::refresh(&system);
        assert_eq!(registry.storage_points.len(), 6);
        assert_eq!(
            registry.location_of(FileId(1)),
            Some(Mount::Tmp.device_id())
        );
        let tmp = &registry.storage_points[Mount::Tmp.device_id().0 as usize];
        assert_eq!(tmp.name, "tmp");
        assert_eq!(tmp.free, tmp.capacity - 1_000_000);
    }

    #[test]
    fn offline_devices_are_excluded_from_candidates() {
        let mut system = system_with_file();
        system
            .device_mut(Mount::Pic.device_id())
            .unwrap()
            .set_online(false);
        let registry = LocationRegistry::refresh(&system);
        let candidates = registry.candidates_for(1000);
        assert!(!candidates.contains(&Mount::Pic.device_id()));
        assert_eq!(candidates.len(), 5);
    }

    #[test]
    fn oversized_files_have_fewer_candidates() {
        let system = system_with_file();
        let registry = LocationRegistry::refresh(&system);
        // Larger than USBtmp's 1 TB capacity but fits everywhere else.
        let candidates = registry.candidates_for(2_000_000_000_000);
        assert!(!candidates.contains(&Mount::UsbTmp.device_id()));
        assert!(candidates.contains(&Mount::File0.device_id()));
    }

    #[test]
    fn json_round_trip() {
        let system = system_with_file();
        let registry = LocationRegistry::refresh(&system);
        let restored = LocationRegistry::from_json(&registry.to_json().unwrap()).unwrap();
        assert_eq!(restored, registry);
    }

    #[test]
    fn file_round_trip() {
        let system = system_with_file();
        let registry = LocationRegistry::refresh(&system);
        let dir = std::env::temp_dir().join("geomancy_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("locations.json");
        registry.save(&path).unwrap();
        let restored = LocationRegistry::load(&path).unwrap();
        assert_eq!(restored, registry);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_layout_updates_lookup() {
        let system = system_with_file();
        let mut registry = LocationRegistry::refresh(&system);
        let mut layout = Layout::new();
        layout.insert(FileId(1), Mount::File0.device_id());
        registry.record_layout(&layout);
        assert_eq!(
            registry.location_of(FileId(1)),
            Some(Mount::File0.device_id())
        );
    }
}
