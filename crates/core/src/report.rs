//! Operational performance reports: what an administrator reads to see
//! what Geomancy has been doing — per-device trends, the hottest files,
//! and the movement history with its cost.

use std::collections::BTreeMap;

use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{DeviceId, FileId};
use geomancy_trace::stats::mean_std;

/// Per-device summary over a report window.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device.
    pub device: DeviceId,
    /// Accesses observed in the window.
    pub accesses: usize,
    /// Mean observed throughput, bytes/second.
    pub mean_throughput: f64,
    /// Population standard deviation of throughput.
    pub std_throughput: f64,
    /// Total bytes served in the window.
    pub bytes_served: u64,
    /// Throughput trend: mean of the window's second half minus its first
    /// half, as a fraction of the first half (positive = improving).
    pub trend: f64,
}

/// Per-file summary over a report window.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSummary {
    /// File.
    pub fid: FileId,
    /// Accesses in the window.
    pub accesses: usize,
    /// Total bytes moved for this file.
    pub bytes: u64,
    /// Mean observed throughput, bytes/second.
    pub mean_throughput: f64,
}

/// Movement-history summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MovementSummary {
    /// Layout changes recorded.
    pub layout_changes: usize,
    /// Total files moved.
    pub files_moved: usize,
    /// Total bytes migrated.
    pub bytes_moved: u64,
    /// Total seconds spent in transfers.
    pub transfer_secs: f64,
}

/// A full report over the most recent `window` records.
///
/// # Examples
///
/// ```
/// use geomancy_core::report::PerformanceReport;
/// use geomancy_replaydb::ReplayDb;
/// use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
///
/// let mut db = ReplayDb::new();
/// db.insert(0, AccessRecord {
///     access_number: 0, fid: FileId(1), fsid: DeviceId(0),
///     rb: 1024, wb: 0, ots: 0, otms: 0, cts: 1, ctms: 0,
/// });
/// let report = PerformanceReport::build(&db, 100, 5);
/// assert_eq!(report.devices.len(), 1);
/// assert!(report.render().contains("dev0"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Records the report covers.
    pub window: usize,
    /// Devices, busiest first.
    pub devices: Vec<DeviceSummary>,
    /// Hottest files (by access count), capped at `top_files`.
    pub hot_files: Vec<FileSummary>,
    /// Movement history.
    pub movements: MovementSummary,
}

impl PerformanceReport {
    /// Builds a report from the `window` most recent records, keeping the
    /// `top_files` most-accessed files.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn build(db: &ReplayDb, window: usize, top_files: usize) -> Self {
        assert!(window > 0, "report window must be non-zero");
        let records = db.recent(window);
        let mut per_device: BTreeMap<DeviceId, Vec<f64>> = BTreeMap::new();
        let mut device_bytes: BTreeMap<DeviceId, u64> = BTreeMap::new();
        let mut per_file: BTreeMap<FileId, (usize, u64, f64)> = BTreeMap::new();
        for r in &records {
            per_device.entry(r.fsid).or_default().push(r.throughput());
            *device_bytes.entry(r.fsid).or_insert(0) += r.bytes();
            let entry = per_file.entry(r.fid).or_insert((0, 0, 0.0));
            entry.0 += 1;
            entry.1 += r.bytes();
            entry.2 += r.throughput();
        }
        let mut devices: Vec<DeviceSummary> = per_device
            .into_iter()
            .map(|(device, tps)| {
                let (mean, std) = mean_std(&tps);
                let half = tps.len() / 2;
                let trend = if half > 0 {
                    let (first, _) = mean_std(&tps[..half]);
                    let (second, _) = mean_std(&tps[half..]);
                    if first > 0.0 {
                        (second - first) / first
                    } else {
                        0.0
                    }
                } else {
                    0.0
                };
                DeviceSummary {
                    device,
                    accesses: tps.len(),
                    mean_throughput: mean,
                    std_throughput: std,
                    bytes_served: device_bytes[&device],
                    trend,
                }
            })
            .collect();
        devices.sort_by_key(|d| std::cmp::Reverse(d.accesses));

        let mut hot_files: Vec<FileSummary> = per_file
            .into_iter()
            .map(|(fid, (accesses, bytes, tp_sum))| FileSummary {
                fid,
                accesses,
                bytes,
                mean_throughput: tp_sum / accesses.max(1) as f64,
            })
            .collect();
        hot_files.sort_by_key(|f| std::cmp::Reverse(f.accesses));
        hot_files.truncate(top_files);

        let mut movements = MovementSummary::default();
        for event in db.layout_events() {
            movements.layout_changes += 1;
            movements.files_moved += event.movements.len();
            for m in &event.movements {
                movements.bytes_moved += m.bytes;
                movements.transfer_secs += m.cost_secs;
            }
        }

        PerformanceReport {
            window: records.len(),
            devices,
            hot_files,
            movements,
        }
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Performance report over the last {} accesses",
            self.window
        );
        let _ = writeln!(out, "\ndevices (busiest first):");
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  {:>6}: {:>6} accesses, {:>8.3} ± {:>8.3} MB/s, {:>8.1} MB served, trend {:+.1} %",
                d.device.to_string(),
                d.accesses,
                d.mean_throughput / 1e6,
                d.std_throughput / 1e6,
                d.bytes_served as f64 / 1e6,
                d.trend * 100.0,
            );
        }
        let _ = writeln!(out, "\nhottest files:");
        for f in &self.hot_files {
            let _ = writeln!(
                out,
                "  {:>7}: {:>5} accesses, {:>8.1} MB, {:>8.3} MB/s avg",
                f.fid.to_string(),
                f.accesses,
                f.bytes as f64 / 1e6,
                f.mean_throughput / 1e6,
            );
        }
        let m = &self.movements;
        let _ = writeln!(
            out,
            "\nmovements: {} layout changes, {} files, {:.1} MB in {:.2} s of transfer",
            m.layout_changes,
            m.files_moved,
            m.bytes_moved as f64 / 1e6,
            m.transfer_secs,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_replaydb::db::LayoutEvent;
    use geomancy_sim::record::{AccessRecord, MovementRecord};

    fn db_with(n: u64) -> ReplayDb {
        let mut db = ReplayDb::new();
        for i in 0..n {
            let dev = (i % 2) as u32;
            // Device 1 speeds up in the second half.
            let dur_ms = if dev == 1 && i > n / 2 { 100 } else { 200 };
            db.insert(
                i,
                AccessRecord {
                    access_number: i,
                    fid: FileId(i % 3),
                    fsid: DeviceId(dev),
                    rb: 1_000_000,
                    wb: 0,
                    ots: i,
                    otms: 0,
                    cts: i + dur_ms / 1000,
                    ctms: (dur_ms % 1000) as u16,
                },
            );
        }
        db.record_layout_event(LayoutEvent {
            timestamp_micros: n,
            at_access: n,
            movements: vec![MovementRecord {
                fid: FileId(0),
                from: DeviceId(0),
                to: DeviceId(1),
                bytes: 5_000_000,
                cost_secs: 0.25,
                at_access: n,
            }],
        });
        db
    }

    #[test]
    fn report_covers_devices_and_files() {
        let db = db_with(100);
        let report = PerformanceReport::build(&db, 1000, 2);
        assert_eq!(report.window, 100);
        assert_eq!(report.devices.len(), 2);
        assert_eq!(report.hot_files.len(), 2);
        let total: usize = report.devices.iter().map(|d| d.accesses).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn improving_device_shows_positive_trend() {
        let db = db_with(200);
        let report = PerformanceReport::build(&db, 1000, 3);
        let dev1 = report
            .devices
            .iter()
            .find(|d| d.device == DeviceId(1))
            .unwrap();
        assert!(dev1.trend > 0.2, "trend {}", dev1.trend);
        let dev0 = report
            .devices
            .iter()
            .find(|d| d.device == DeviceId(0))
            .unwrap();
        assert!(dev0.trend.abs() < 0.05, "trend {}", dev0.trend);
    }

    #[test]
    fn movement_totals_accumulate() {
        let db = db_with(10);
        let report = PerformanceReport::build(&db, 100, 3);
        assert_eq!(report.movements.layout_changes, 1);
        assert_eq!(report.movements.files_moved, 1);
        assert_eq!(report.movements.bytes_moved, 5_000_000);
        assert!((report.movements.transfer_secs - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hot_files_are_capped_and_sorted() {
        let db = db_with(99); // fids 0..3, fid 0 gets 33 accesses
        let report = PerformanceReport::build(&db, 1000, 1);
        assert_eq!(report.hot_files.len(), 1);
        assert!(report.hot_files[0].accesses >= 33);
    }

    #[test]
    fn render_is_nonempty_and_mentions_devices() {
        let db = db_with(20);
        let text = PerformanceReport::build(&db, 100, 3).render();
        assert!(text.contains("devices"));
        assert!(text.contains("dev0"));
        assert!(text.contains("movements"));
    }
}
