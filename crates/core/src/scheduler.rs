//! Gap-aware data-movement scheduling — the paper's §X future work,
//! implemented as an extension.
//!
//! "Gaps are defined as periods of time, where the individual file is not
//! accessed by any workloads, that is long enough for Geomancy to move the
//! file to the new location. We will not consider moving files that are
//! always accessed and never released."
//!
//! The scheduler models each file's inter-access interval from ReplayDB
//! history and clears a movement only when the predicted idle window is
//! long enough to fit the transfer.

use std::collections::BTreeMap;

use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{DeviceId, FileId};

/// Predicted access-gap statistics for one file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPrediction {
    /// Mean interval between consecutive accesses, seconds.
    pub mean_interval_secs: f64,
    /// Standard deviation of the interval, seconds.
    pub std_interval_secs: f64,
    /// Close time of the most recent access, seconds.
    pub last_access_end_secs: f64,
    /// Number of intervals the statistics were computed from.
    pub samples: usize,
}

impl GapPrediction {
    /// Conservative estimate of idle seconds remaining from `now`: the mean
    /// interval minus one standard deviation, measured from the last access.
    pub fn idle_remaining(&self, now_secs: f64) -> f64 {
        let next_access =
            self.last_access_end_secs + (self.mean_interval_secs - self.std_interval_secs).max(0.0);
        (next_access - now_secs).max(0.0)
    }
}

/// A movement cleared or deferred by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledMove {
    /// File to move.
    pub fid: FileId,
    /// Destination device.
    pub to: DeviceId,
    /// Estimated transfer time, seconds.
    pub estimated_secs: f64,
}

/// Clears movements only into predicted access gaps.
///
/// # Examples
///
/// ```
/// use geomancy_core::scheduler::{GapScheduler, ScheduledMove};
/// use geomancy_replaydb::ReplayDb;
/// use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
///
/// // A file touched once a minute leaves ~59-second idle windows.
/// let mut db = ReplayDb::new();
/// for i in 0..10u64 {
///     db.insert(i * 60_000_000, AccessRecord {
///         access_number: i, fid: FileId(1), fsid: DeviceId(0),
///         rb: 1000, wb: 0, ots: i * 60, otms: 0, cts: i * 60 + 1, ctms: 0,
///     });
/// }
/// let scheduler = GapScheduler::default();
/// let gaps = scheduler.predict_gaps(&db, 1000);
/// let moves = [ScheduledMove { fid: FileId(1), to: DeviceId(1), estimated_secs: 10.0 }];
/// let (ready, deferred) = scheduler.schedule(&moves, &gaps, 542.0);
/// assert_eq!(ready.len(), 1);
/// assert!(deferred.is_empty());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GapScheduler {
    /// The predicted idle window must exceed `estimated transfer time x
    /// safety_factor` for a move to be cleared.
    pub safety_factor: f64,
    /// Files with fewer than this many observed intervals are assumed
    /// always-busy and never cleared (the paper refuses to move files that
    /// are "always accessed and never released").
    pub min_samples: usize,
    /// Consecutive accesses separated by less than this are one *burst*
    /// (the BELLE II workload reads each file 10–20 times back-to-back);
    /// gaps are measured between bursts, not raw accesses.
    pub burst_coalesce_secs: f64,
}

impl Default for GapScheduler {
    fn default() -> Self {
        GapScheduler {
            safety_factor: 1.5,
            min_samples: 3,
            burst_coalesce_secs: 2.0,
        }
    }
}

impl GapScheduler {
    /// Computes per-file gap statistics from the most recent `lookback`
    /// records.
    pub fn predict_gaps(&self, db: &ReplayDb, lookback: usize) -> BTreeMap<FileId, GapPrediction> {
        let mut intervals: BTreeMap<FileId, Vec<f64>> = BTreeMap::new();
        let mut last_end: BTreeMap<FileId, f64> = BTreeMap::new();
        for record in db.recent(lookback) {
            let open = record.ots as f64 + record.otms as f64 / 1000.0;
            let close = record.cts as f64 + record.ctms as f64 / 1000.0;
            if let Some(&prev_end) = last_end.get(&record.fid) {
                let gap = (open - prev_end).max(0.0);
                // Within-burst re-reads are not idle windows; only count
                // gaps after the burst ends.
                if gap >= self.burst_coalesce_secs {
                    intervals.entry(record.fid).or_default().push(gap);
                }
            }
            last_end.insert(record.fid, close);
        }
        intervals
            .into_iter()
            .filter_map(|(fid, gaps)| {
                if gaps.is_empty() {
                    return None;
                }
                let n = gaps.len() as f64;
                let mean = gaps.iter().sum::<f64>() / n;
                let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
                Some((
                    fid,
                    GapPrediction {
                        mean_interval_secs: mean,
                        std_interval_secs: var.sqrt(),
                        last_access_end_secs: last_end[&fid],
                        samples: gaps.len(),
                    },
                ))
            })
            .collect()
    }

    /// Splits planned movements into those that fit their file's predicted
    /// idle window starting at `now_secs` (`ready`) and those to retry later
    /// (`deferred`).
    pub fn schedule(
        &self,
        moves: &[ScheduledMove],
        predictions: &BTreeMap<FileId, GapPrediction>,
        now_secs: f64,
    ) -> (Vec<ScheduledMove>, Vec<ScheduledMove>) {
        let mut ready = Vec::new();
        let mut deferred = Vec::new();
        for &m in moves {
            let clear = predictions
                .get(&m.fid)
                .filter(|p| p.samples >= self.min_samples)
                .map(|p| p.idle_remaining(now_secs) >= m.estimated_secs * self.safety_factor)
                .unwrap_or(false);
            if clear {
                ready.push(m);
            } else {
                deferred.push(m);
            }
        }
        (ready, deferred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::AccessRecord;

    /// A file accessed every `period` seconds with 1-second accesses.
    fn periodic_db(fid: u64, period: u64, count: u64) -> ReplayDb {
        let mut db = ReplayDb::new();
        for i in 0..count {
            let open = i * period;
            db.insert(
                open * 1_000_000,
                AccessRecord {
                    access_number: i,
                    fid: FileId(fid),
                    fsid: DeviceId(0),
                    rb: 1000,
                    wb: 0,
                    ots: open,
                    otms: 0,
                    cts: open + 1,
                    ctms: 0,
                },
            );
        }
        db
    }

    #[test]
    fn gap_statistics_match_periodic_pattern() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let p = gaps[&FileId(1)];
        // Access lasts 1 s every 60 s → 59 s gaps.
        assert!((p.mean_interval_secs - 59.0).abs() < 1e-9);
        assert!(p.std_interval_secs < 1e-9);
        assert_eq!(p.samples, 9);
    }

    #[test]
    fn move_that_fits_gap_is_cleared() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        // Last access ended at 9*60+1 = 541 s; now shortly after.
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 10.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 542.0);
        assert_eq!(ready.len(), 1);
        assert!(deferred.is_empty());
    }

    #[test]
    fn move_longer_than_gap_is_deferred() {
        let db = periodic_db(1, 10, 10); // 9-second gaps
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 30.0,
        }];
        let last_end = gaps[&FileId(1)].last_access_end_secs;
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, last_end);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn always_busy_file_is_never_cleared() {
        // Only two accesses → one interval < min_samples.
        let db = periodic_db(1, 600, 2);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 1.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 601.0);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn unknown_file_is_deferred() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(99),
            to: DeviceId(1),
            estimated_secs: 1.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 541.0);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn idle_remaining_shrinks_as_time_passes() {
        let p = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 10.0,
            last_access_end_secs: 0.0,
            samples: 5,
        };
        assert!(p.idle_remaining(0.0) > p.idle_remaining(50.0));
        assert_eq!(p.idle_remaining(1000.0), 0.0);
    }

    #[test]
    fn jittery_files_get_conservative_windows() {
        // Same mean, wildly different std: the jittery file's usable window
        // must be smaller.
        let steady = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 1.0,
            last_access_end_secs: 0.0,
            samples: 9,
        };
        let jittery = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 80.0,
            last_access_end_secs: 0.0,
            samples: 9,
        };
        assert!(jittery.idle_remaining(0.0) < steady.idle_remaining(0.0));
    }
}
