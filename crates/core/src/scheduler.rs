//! Gap-aware data-movement scheduling — the paper's §X future work,
//! implemented as an extension.
//!
//! "Gaps are defined as periods of time, where the individual file is not
//! accessed by any workloads, that is long enough for Geomancy to move the
//! file to the new location. We will not consider moving files that are
//! always accessed and never released."
//!
//! The scheduler models each file's inter-access interval from ReplayDB
//! history and clears a movement only when the predicted idle window is
//! long enough to fit the transfer.
//!
//! [`GapScheduler`] is the pure policy; [`MovePlanner`] runs it online as
//! a reactor actor whose periodic tick retries deferred movements against
//! the latest observations.

use std::collections::BTreeMap;

use crossbeam::channel::{bounded, Sender};
use geomancy_replaydb::ReplayDb;
use geomancy_runtime::{Actor, Addr, Ctx, Reactor};
use geomancy_sim::record::{DeviceId, FileId};

/// Predicted access-gap statistics for one file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPrediction {
    /// Mean interval between consecutive accesses, seconds.
    pub mean_interval_secs: f64,
    /// Standard deviation of the interval, seconds.
    pub std_interval_secs: f64,
    /// Close time of the most recent access, seconds.
    pub last_access_end_secs: f64,
    /// Number of intervals the statistics were computed from.
    pub samples: usize,
}

impl GapPrediction {
    /// Conservative estimate of idle seconds remaining from `now`: the mean
    /// interval minus one standard deviation, measured from the last access.
    pub fn idle_remaining(&self, now_secs: f64) -> f64 {
        let next_access =
            self.last_access_end_secs + (self.mean_interval_secs - self.std_interval_secs).max(0.0);
        (next_access - now_secs).max(0.0)
    }
}

/// A movement cleared or deferred by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledMove {
    /// File to move.
    pub fid: FileId,
    /// Destination device.
    pub to: DeviceId,
    /// Estimated transfer time, seconds.
    pub estimated_secs: f64,
}

/// Clears movements only into predicted access gaps.
///
/// # Examples
///
/// ```
/// use geomancy_core::scheduler::{GapScheduler, ScheduledMove};
/// use geomancy_replaydb::ReplayDb;
/// use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
///
/// // A file touched once a minute leaves ~59-second idle windows.
/// let mut db = ReplayDb::new();
/// for i in 0..10u64 {
///     db.insert(i * 60_000_000, AccessRecord {
///         access_number: i, fid: FileId(1), fsid: DeviceId(0),
///         rb: 1000, wb: 0, ots: i * 60, otms: 0, cts: i * 60 + 1, ctms: 0,
///     });
/// }
/// let scheduler = GapScheduler::default();
/// let gaps = scheduler.predict_gaps(&db, 1000);
/// let moves = [ScheduledMove { fid: FileId(1), to: DeviceId(1), estimated_secs: 10.0 }];
/// let (ready, deferred) = scheduler.schedule(&moves, &gaps, 542.0);
/// assert_eq!(ready.len(), 1);
/// assert!(deferred.is_empty());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GapScheduler {
    /// The predicted idle window must exceed `estimated transfer time x
    /// safety_factor` for a move to be cleared.
    pub safety_factor: f64,
    /// Files with fewer than this many observed intervals are assumed
    /// always-busy and never cleared (the paper refuses to move files that
    /// are "always accessed and never released").
    pub min_samples: usize,
    /// Consecutive accesses separated by less than this are one *burst*
    /// (the BELLE II workload reads each file 10–20 times back-to-back);
    /// gaps are measured between bursts, not raw accesses.
    pub burst_coalesce_secs: f64,
}

impl Default for GapScheduler {
    fn default() -> Self {
        GapScheduler {
            safety_factor: 1.5,
            min_samples: 3,
            burst_coalesce_secs: 2.0,
        }
    }
}

impl GapScheduler {
    /// Computes per-file gap statistics from the most recent `lookback`
    /// records.
    pub fn predict_gaps(&self, db: &ReplayDb, lookback: usize) -> BTreeMap<FileId, GapPrediction> {
        let mut intervals: BTreeMap<FileId, Vec<f64>> = BTreeMap::new();
        let mut last_end: BTreeMap<FileId, f64> = BTreeMap::new();
        for record in db.recent(lookback) {
            let open = record.ots as f64 + record.otms as f64 / 1000.0;
            let close = record.cts as f64 + record.ctms as f64 / 1000.0;
            if let Some(&prev_end) = last_end.get(&record.fid) {
                let gap = (open - prev_end).max(0.0);
                // Within-burst re-reads are not idle windows; only count
                // gaps after the burst ends.
                if gap >= self.burst_coalesce_secs {
                    intervals.entry(record.fid).or_default().push(gap);
                }
            }
            last_end.insert(record.fid, close);
        }
        intervals
            .into_iter()
            .filter_map(|(fid, gaps)| {
                if gaps.is_empty() {
                    return None;
                }
                let n = gaps.len() as f64;
                let mean = gaps.iter().sum::<f64>() / n;
                let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
                Some((
                    fid,
                    GapPrediction {
                        mean_interval_secs: mean,
                        std_interval_secs: var.sqrt(),
                        last_access_end_secs: last_end[&fid],
                        samples: gaps.len(),
                    },
                ))
            })
            .collect()
    }

    /// Splits planned movements into those that fit their file's predicted
    /// idle window starting at `now_secs` (`ready`) and those to retry later
    /// (`deferred`).
    pub fn schedule(
        &self,
        moves: &[ScheduledMove],
        predictions: &BTreeMap<FileId, GapPrediction>,
        now_secs: f64,
    ) -> (Vec<ScheduledMove>, Vec<ScheduledMove>) {
        let mut ready = Vec::new();
        let mut deferred = Vec::new();
        for &m in moves {
            let clear = predictions
                .get(&m.fid)
                .filter(|p| p.samples >= self.min_samples)
                .map(|p| p.idle_remaining(now_secs) >= m.estimated_secs * self.safety_factor)
                .unwrap_or(false);
            if clear {
                ready.push(m);
            } else {
                deferred.push(m);
            }
        }
        (ready, deferred)
    }
}

/// Messages accepted by the planner actor.
enum PlannerMsg {
    /// Fresh telemetry: recompute gap predictions. Does *not* clear
    /// deferred moves by itself — promotion happens on the periodic tick,
    /// so clearance cadence is governed by time, not telemetry volume.
    Observe(ReplayDb),
    /// New movements to clear or defer. Evaluated immediately.
    Submit(Vec<ScheduledMove>),
    /// How many moves are currently deferred.
    Pending(Sender<usize>),
}

/// Construction parameters for [`MovePlanner::spawn_on`].
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// The gap policy to run.
    pub scheduler: GapScheduler,
    /// Records of history to derive predictions from on each observation.
    pub lookback: usize,
    /// Deferred-move retry cadence, in reactor microseconds.
    pub tick_micros: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            scheduler: GapScheduler::default(),
            lookback: 4096,
            tick_micros: 1_000_000,
        }
    }
}

/// Error returned by [`MovePlanner`] calls after its reactor has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerGone;

impl std::fmt::Display for PlannerGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("move planner has shut down")
    }
}

impl std::error::Error for PlannerGone {}

/// The online form of [`GapScheduler`]: an actor that holds the latest
/// gap predictions and a set of deferred movements. Cleared moves are
/// pushed to a channel sink as soon as they fit an idle window — either
/// immediately on submission or on a later periodic tick, after new
/// observations have opened a window.
///
/// Spawn it on the same reactor as the [`crate::daemon::InterfaceDaemon`]
/// and both share one worker pool.
#[derive(Debug)]
pub struct MovePlanner {
    addr: Addr<PlannerMsg>,
}

/// Mailbox depth for the planner (observations can be large; keep few).
const PLANNER_MAILBOX: usize = 64;

impl MovePlanner {
    /// Spawns the planner on `reactor`. Moves that clear are sent to
    /// `sink`; the planner keeps running if the receiving side hangs up.
    pub fn spawn_on(
        reactor: &Reactor,
        config: PlannerConfig,
        sink: Sender<ScheduledMove>,
    ) -> MovePlanner {
        let (addr, _handle) = reactor.spawn(
            "move-planner",
            PLANNER_MAILBOX,
            PlannerActor {
                config,
                predictions: BTreeMap::new(),
                deferred: Vec::new(),
                sink,
            },
        );
        MovePlanner { addr }
    }

    /// Feeds fresh telemetry; predictions are recomputed from its most
    /// recent `lookback` records.
    ///
    /// # Errors
    ///
    /// Returns [`PlannerGone`] if the planner's reactor has shut down.
    pub fn observe(&self, db: ReplayDb) -> Result<(), PlannerGone> {
        self.addr
            .send(PlannerMsg::Observe(db))
            .map_err(|_| PlannerGone)
    }

    /// Submits movements for clearance. Each is either pushed to the sink
    /// right away or held and retried on every tick.
    ///
    /// # Errors
    ///
    /// Returns [`PlannerGone`] if the planner's reactor has shut down.
    pub fn submit(&self, moves: Vec<ScheduledMove>) -> Result<(), PlannerGone> {
        self.addr
            .send(PlannerMsg::Submit(moves))
            .map_err(|_| PlannerGone)
    }

    /// Number of moves currently deferred (also a synchronization point:
    /// every earlier `observe`/`submit` has been applied when it returns).
    ///
    /// # Errors
    ///
    /// Returns [`PlannerGone`] if the planner's reactor has shut down.
    pub fn pending(&self) -> Result<usize, PlannerGone> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(PlannerMsg::Pending(reply))
            .map_err(|_| PlannerGone)?;
        rx.recv().map_err(|_| PlannerGone)
    }
}

struct PlannerActor {
    config: PlannerConfig,
    predictions: BTreeMap<FileId, GapPrediction>,
    deferred: Vec<ScheduledMove>,
    sink: Sender<ScheduledMove>,
}

impl PlannerActor {
    /// Runs the gap policy over the deferred set plus `extra` at the
    /// reactor's current time; ready moves go to the sink, the rest wait
    /// for the next tick.
    fn evaluate(&mut self, extra: Vec<ScheduledMove>, ctx: &mut Ctx<'_>) {
        let mut moves = std::mem::take(&mut self.deferred);
        moves.extend(extra);
        if moves.is_empty() {
            return;
        }
        let now_secs = ctx.now_micros() as f64 / 1e6;
        let (ready, deferred) = self
            .config
            .scheduler
            .schedule(&moves, &self.predictions, now_secs);
        for m in ready {
            let _ = self.sink.send(m);
        }
        self.deferred = deferred;
    }
}

impl Actor for PlannerActor {
    type Msg = PlannerMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.config.tick_micros > 0 {
            ctx.set_timer(self.config.tick_micros, 0);
        }
    }

    fn on_msg(&mut self, msg: PlannerMsg, ctx: &mut Ctx<'_>) {
        match msg {
            PlannerMsg::Observe(db) => {
                self.predictions = self
                    .config
                    .scheduler
                    .predict_gaps(&db, self.config.lookback);
            }
            PlannerMsg::Submit(moves) => self.evaluate(moves, ctx),
            PlannerMsg::Pending(reply) => {
                let _ = reply.send(self.deferred.len());
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        self.evaluate(Vec::new(), ctx);
        if !ctx.stopping() && self.config.tick_micros > 0 {
            ctx.set_timer(self.config.tick_micros, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::AccessRecord;

    /// A file accessed every `period` seconds with 1-second accesses.
    fn periodic_db(fid: u64, period: u64, count: u64) -> ReplayDb {
        let mut db = ReplayDb::new();
        for i in 0..count {
            let open = i * period;
            db.insert(
                open * 1_000_000,
                AccessRecord {
                    access_number: i,
                    fid: FileId(fid),
                    fsid: DeviceId(0),
                    rb: 1000,
                    wb: 0,
                    ots: open,
                    otms: 0,
                    cts: open + 1,
                    ctms: 0,
                },
            );
        }
        db
    }

    #[test]
    fn gap_statistics_match_periodic_pattern() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let p = gaps[&FileId(1)];
        // Access lasts 1 s every 60 s → 59 s gaps.
        assert!((p.mean_interval_secs - 59.0).abs() < 1e-9);
        assert!(p.std_interval_secs < 1e-9);
        assert_eq!(p.samples, 9);
    }

    #[test]
    fn move_that_fits_gap_is_cleared() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        // Last access ended at 9*60+1 = 541 s; now shortly after.
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 10.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 542.0);
        assert_eq!(ready.len(), 1);
        assert!(deferred.is_empty());
    }

    #[test]
    fn move_longer_than_gap_is_deferred() {
        let db = periodic_db(1, 10, 10); // 9-second gaps
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 30.0,
        }];
        let last_end = gaps[&FileId(1)].last_access_end_secs;
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, last_end);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn always_busy_file_is_never_cleared() {
        // Only two accesses → one interval < min_samples.
        let db = periodic_db(1, 600, 2);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(1),
            to: DeviceId(1),
            estimated_secs: 1.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 601.0);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn unknown_file_is_deferred() {
        let db = periodic_db(1, 60, 10);
        let scheduler = GapScheduler::default();
        let gaps = scheduler.predict_gaps(&db, 1000);
        let moves = [ScheduledMove {
            fid: FileId(99),
            to: DeviceId(1),
            estimated_secs: 1.0,
        }];
        let (ready, deferred) = scheduler.schedule(&moves, &gaps, 541.0);
        assert!(ready.is_empty());
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn idle_remaining_shrinks_as_time_passes() {
        let p = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 10.0,
            last_access_end_secs: 0.0,
            samples: 5,
        };
        assert!(p.idle_remaining(0.0) > p.idle_remaining(50.0));
        assert_eq!(p.idle_remaining(1000.0), 0.0);
    }

    #[test]
    fn jittery_files_get_conservative_windows() {
        // Same mean, wildly different std: the jittery file's usable window
        // must be smaller.
        let steady = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 1.0,
            last_access_end_secs: 0.0,
            samples: 9,
        };
        let jittery = GapPrediction {
            mean_interval_secs: 100.0,
            std_interval_secs: 80.0,
            last_access_end_secs: 0.0,
            samples: 9,
        };
        assert!(jittery.idle_remaining(0.0) < steady.idle_remaining(0.0));
    }

    use geomancy_runtime::{ManualClock, ReactorConfig};
    use std::sync::Arc;
    use std::time::Duration;

    fn planner_reactor(clock: &ManualClock) -> Reactor {
        Reactor::new(ReactorConfig {
            workers: 1,
            name: "planner-test".to_string(),
            time: Arc::new(clock.clone()),
            ..ReactorConfig::default()
        })
    }

    /// A move that fits the predicted window clears on submission; no tick
    /// required.
    #[test]
    fn planner_clears_fitting_move_immediately() {
        let clock = ManualClock::new();
        clock.set_micros(542 * 1_000_000);
        let reactor = planner_reactor(&clock);
        let (sink, ready) = crossbeam::channel::unbounded();
        let planner = MovePlanner::spawn_on(&reactor, PlannerConfig::default(), sink);
        planner.observe(periodic_db(1, 60, 10)).unwrap();
        planner
            .submit(vec![ScheduledMove {
                fid: FileId(1),
                to: DeviceId(1),
                estimated_secs: 10.0,
            }])
            .unwrap();
        let m = ready
            .recv_timeout(Duration::from_secs(5))
            .expect("move cleared without any tick");
        assert_eq!(m.fid, FileId(1));
        assert_eq!(planner.pending().unwrap(), 0);
    }

    /// The full deferred-move lifecycle, deterministic on a manual clock:
    /// a move that cannot fit the current window is held, a fresh
    /// observation alone does not release it, and the next periodic tick —
    /// driven purely by `ManualClock` — re-evaluates and clears it.
    #[test]
    fn planner_tick_promotes_deferred_move_on_manual_time() {
        let clock = ManualClock::new();
        // 595 s: five seconds before the predicted next access at 600 s.
        clock.set_micros(595 * 1_000_000);
        let reactor = planner_reactor(&clock);
        let (sink, ready) = crossbeam::channel::unbounded();
        let planner = MovePlanner::spawn_on(
            &reactor,
            PlannerConfig {
                tick_micros: 1_000_000,
                ..PlannerConfig::default()
            },
            sink,
        );
        // History: accesses every 60 s, last ending at 541 s → next
        // predicted at 600 s, so only a 5 s window remains.
        planner.observe(periodic_db(1, 60, 10)).unwrap();
        planner
            .submit(vec![ScheduledMove {
                fid: FileId(1),
                to: DeviceId(1),
                estimated_secs: 10.0, // needs 15 s with the 1.5 safety factor
            }])
            .unwrap();
        assert_eq!(planner.pending().unwrap(), 1, "move deferred");
        assert!(ready.try_recv().is_none());

        // The predicted access happens: history now ends at 601 s. An
        // observation updates predictions but promotion waits for a tick.
        planner.observe(periodic_db(1, 60, 11)).unwrap();
        assert_eq!(
            planner.pending().unwrap(),
            1,
            "observe alone promotes nothing"
        );
        assert!(ready.try_recv().is_none());

        // Advancing the manual clock past the armed tick deadline fires
        // the timer; at 602 s the new window (601+59-602 = 58 s) fits.
        clock.set_micros(602 * 1_000_000);
        let m = ready
            .recv_timeout(Duration::from_secs(5))
            .expect("tick promoted the deferred move");
        assert_eq!(m.to, DeviceId(1));
        assert_eq!(planner.pending().unwrap(), 0);
    }

    /// Planner calls fail cleanly once the reactor is gone.
    #[test]
    fn planner_reports_gone_after_reactor_drains() {
        let clock = ManualClock::new();
        let reactor = planner_reactor(&clock);
        let (sink, _ready) = crossbeam::channel::unbounded();
        let planner = MovePlanner::spawn_on(&reactor, PlannerConfig::default(), sink);
        drop(reactor);
        assert_eq!(planner.submit(vec![]), Err(PlannerGone));
        assert_eq!(planner.pending(), Err(PlannerGone));
        assert!(!PlannerGone.to_string().is_empty());
    }

    /// The §V-A control plane on one pool: daemon and planner share a
    /// reactor, telemetry flows daemon → snapshot → planner, and the
    /// drained reactor hands the database back.
    #[test]
    fn daemon_and_planner_share_one_reactor() {
        use crate::daemon::InterfaceDaemon;

        let reactor = Reactor::new(ReactorConfig {
            workers: 2,
            name: "core-plane".to_string(),
            ..ReactorConfig::default()
        });
        let daemon = InterfaceDaemon::spawn_on(&reactor, ReplayDb::new());
        let (sink, ready) = crossbeam::channel::unbounded();
        let planner = MovePlanner::spawn_on(&reactor, PlannerConfig::default(), sink);

        let client = daemon.client();
        for i in 0..10u64 {
            let open = i * 60;
            client
                .store_batch(
                    open * 1_000_000,
                    vec![AccessRecord {
                        access_number: i,
                        fid: FileId(1),
                        fsid: DeviceId(0),
                        rb: 1000,
                        wb: 0,
                        ots: open,
                        otms: 0,
                        cts: open + 1,
                        ctms: 0,
                    }],
                )
                .unwrap();
        }
        planner.observe(client.snapshot().unwrap()).unwrap();
        // The wall clock sits near zero, far inside the first predicted
        // window, so a short move clears immediately.
        planner
            .submit(vec![ScheduledMove {
                fid: FileId(1),
                to: DeviceId(1),
                estimated_secs: 1.0,
            }])
            .unwrap();
        ready
            .recv_timeout(Duration::from_secs(5))
            .expect("move cleared on the shared pool");

        let stopped = reactor.shutdown();
        let db = daemon.take_db(&stopped);
        assert_eq!(db.len(), 10);
    }
}
