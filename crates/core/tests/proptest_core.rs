//! Property-based tests of core invariants: the Action Checker, dataset
//! assembly, prediction adjustment, and baseline layout completeness.

use std::collections::BTreeMap;

use geomancy_core::action::{ActionChecker, ActionKind};
use geomancy_core::adjust::PredictionAdjuster;
use geomancy_core::dataset::{placement_dataset_with, PLACEMENT_Z};
use geomancy_core::policy::{group_assign, Lfu, Lru, Mru, PlacementPolicy, PolicyContext};
use geomancy_nn::metrics::RelativeError;
use geomancy_replaydb::ReplayDb;
use geomancy_sim::cluster::{FileMeta, Layout};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use proptest::prelude::*;

fn ranked_candidates() -> impl Strategy<Value = Vec<(DeviceId, f64)>> {
    proptest::collection::vec(0.0..1e10f64, 1..8).prop_map(|tps| {
        tps.into_iter()
            .enumerate()
            .map(|(i, tp)| (DeviceId(i as u32), tp))
            .collect()
    })
}

proptest! {
    #[test]
    fn checker_always_returns_a_candidate_device(
        ranked in ranked_candidates(),
        seed in 0u64..1000,
        valid_mask in 0u8..=255,
    ) {
        let mut checker = ActionChecker::new(seed);
        let action = checker.check(&ranked, |d| valid_mask & (1 << (d.0 % 8)) != 0);
        prop_assert!(ranked.iter().any(|(d, _)| *d == action.device));
    }

    #[test]
    fn checker_with_zero_exploration_picks_the_valid_argmax(
        ranked in ranked_candidates(),
        seed in 0u64..1000,
    ) {
        let mut checker = ActionChecker::with_exploration(seed, 0.0);
        let action = checker.check(&ranked, |_| true);
        let best = ranked
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        prop_assert_eq!(action.device, best.0);
        prop_assert_eq!(action.kind, ActionKind::Predicted);
    }

    #[test]
    fn checker_never_picks_invalid_unless_all_invalid(
        ranked in ranked_candidates(),
        seed in 0u64..1000,
        invalid in 0u32..8,
    ) {
        prop_assume!(ranked.len() > 1);
        let mut checker = ActionChecker::new(seed);
        let action = checker.check(&ranked, |d| d.0 != invalid);
        if ranked.iter().any(|(d, _)| d.0 != invalid) {
            prop_assert_ne!(action.device.0, invalid);
        }
    }

    #[test]
    fn adjuster_preserves_candidate_ordering(
        mean in 0.0..500.0f64,
        signed in -100.0..100.0f64,
        a in 0.0..1e9f64,
        b in 0.0..1e9f64,
    ) {
        let adj = PredictionAdjuster::from_error(&RelativeError {
            mean,
            std_dev: 1.0,
            signed_mean: signed,
        });
        if a < b {
            prop_assert!(adj.adjust(a) <= adj.adjust(b));
        }
        prop_assert!(adj.adjust(a) >= 0.0);
    }

    #[test]
    fn placement_dataset_is_sane_for_arbitrary_traces(
        specs in proptest::collection::vec((0u64..10, 0u32..6, 1u64..1_000_000_000, 1u64..5_000), 2..60),
        smoothing in 1usize..20,
        log in proptest::bool::ANY,
    ) {
        let records: Vec<AccessRecord> = specs
            .iter()
            .enumerate()
            .map(|(i, &(fid, dev, rb, dur_ms))| AccessRecord {
                access_number: i as u64,
                fid: FileId(fid),
                fsid: DeviceId(dev),
                rb,
                wb: 0,
                ots: i as u64 * 10,
                otms: 0,
                cts: i as u64 * 10 + dur_ms / 1000,
                ctms: (dur_ms % 1000) as u16,
            })
            .collect();
        let ds = placement_dataset_with(&records, smoothing, log);
        prop_assert_eq!(ds.len(), records.len());
        prop_assert_eq!(ds.inputs.cols(), PLACEMENT_Z);
        for &v in ds.inputs.as_slice() {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for &v in ds.targets.as_slice() {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Denormalizing any target must give a non-negative throughput.
        for &v in ds.targets.as_slice() {
            prop_assert!(ds.denormalize_target(v) >= 0.0);
        }
    }

    #[test]
    fn group_assign_covers_every_file(
        n_files in 1usize..40,
        n_unused in 0usize..10,
        n_devices in 1usize..8,
    ) {
        let files: Vec<FileId> = (0..n_files as u64).map(FileId).collect();
        let unused: Vec<FileId> = (100..100 + n_unused as u64).map(FileId).collect();
        let devices: Vec<DeviceId> = (0..n_devices as u32).map(DeviceId).collect();
        let layout = group_assign(&files, &unused, &devices);
        prop_assert_eq!(layout.len(), n_files + n_unused);
        for fid in files.iter().chain(&unused) {
            let device = layout[fid];
            prop_assert!(devices.contains(&device));
        }
    }

    #[test]
    fn baseline_policies_assign_only_candidate_devices(
        specs in proptest::collection::vec((0u64..8, 0u32..4), 5..60),
        n_devices in 1usize..5,
    ) {
        let mut db = ReplayDb::new();
        for (i, &(fid, dev)) in specs.iter().enumerate() {
            db.insert(
                i as u64,
                AccessRecord {
                    access_number: i as u64,
                    fid: FileId(fid),
                    fsid: DeviceId(dev % n_devices as u32),
                    rb: 1000,
                    wb: 0,
                    ots: i as u64,
                    otms: 0,
                    cts: i as u64 + 1,
                    ctms: 0,
                },
            );
        }
        let mut files = BTreeMap::new();
        for i in 0..8u64 {
            files.insert(
                FileId(i),
                FileMeta {
                    size: 100,
                    path: format!("f{i}"),
                },
            );
        }
        let devices: Vec<DeviceId> = (0..n_devices as u32).map(DeviceId).collect();
        let layout = Layout::new();
        let ctx = PolicyContext {
            db: &db,
            files: &files,
            devices: &devices,
            current_layout: &layout,
            lookback: 100,
            now: (1000, 0),
            free_bytes: devices.iter().map(|&d| (d, u64::MAX)).collect(),
        };
        let mut policies: Vec<Box<dyn PlacementPolicy>> =
            vec![Box::new(Lru), Box::new(Mru), Box::new(Lfu)];
        for p in &mut policies {
            let out = p.update(&ctx).expect("baselines always produce a layout");
            prop_assert_eq!(out.len(), files.len());
            for device in out.values() {
                prop_assert!(devices.contains(device), "{} placed on unknown device", p.name());
            }
        }
    }
}
