//! Steady-state allocation test for the warm-start training hot path:
//! after one full fit has sized the network's scratch arenas,
//! [`DrlEngine::incremental_step`] — forward, loss, backward, optimizer
//! step — must not touch the heap. This is what keeps the incremental
//! retrain's inner loop flat: per-step cost is pure compute, with no
//! allocator traffic that would grow with history or fragment over a
//! long-running service.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use geomancy_core::drl::{DrlConfig, DrlEngine};
use geomancy_nn::matrix::Matrix;
use geomancy_nn::optimizer::Sgd;
use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

/// Counts every allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A ReplayDB where device 1 is consistently faster than device 0.
fn biased_db(n: u64) -> ReplayDb {
    let mut db = ReplayDb::new();
    for i in 0..n {
        let dev = (i % 2) as u32;
        let dt_ms: u64 = if dev == 0 { 400 } else { 100 };
        let open_ms = i * 1000;
        let close_ms = open_ms + dt_ms;
        db.insert(
            i,
            AccessRecord {
                access_number: i,
                fid: FileId(i % 4),
                fsid: DeviceId(dev),
                rb: 1_000_000,
                wb: 0,
                ots: open_ms / 1000,
                otms: (open_ms % 1000) as u16,
                cts: close_ms / 1000,
                ctms: (close_ms % 1000) as u16,
            },
        );
    }
    db
}

#[test]
fn warm_incremental_step_does_not_allocate() {
    let mut engine = DrlEngine::new(DrlConfig {
        epochs: 10,
        smoothing_window: 4,
        ..DrlConfig::default()
    });
    // The full fit warms every scratch arena the training path uses.
    engine.retrain(&biased_db(200)).expect("enough data");

    // A normalized mini-batch in the placement shape (6 features, one
    // target column), pre-built so the measured window is the gradient
    // step alone — exactly what repeats inside an incremental fit.
    let batch = 32usize;
    let mut inputs = Matrix::zeros(batch, 6);
    let mut targets = Matrix::zeros(batch, 1);
    for r in 0..batch {
        let t = r as f64 / batch as f64;
        inputs.set_row(r, &[t, 1.0 - t, 0.5, t * t, 0.25, (r % 2) as f64]);
        targets.set_row(r, &[if r % 2 == 0 { 0.2 } else { 0.8 }]);
    }
    let mut opt = Sgd::new(0.01);
    // Warm-up: the batch shape differs from the fit's, so the first step
    // may resize activation arenas.
    let first = engine.incremental_step(inputs.view(), targets.view(), &mut opt);
    assert!(first.is_finite());

    // The counter is process-global, so another thread (libtest
    // bookkeeping) can leak the odd allocation into a measured window; a
    // genuinely allocating step fails every attempt, noise does not.
    let mut last_delta = 0;
    let mut last_loss = first;
    for attempt in 0..3 {
        let before = allocations();
        for _ in 0..25 {
            last_loss = engine.incremental_step(inputs.view(), targets.view(), &mut opt);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
        assert!(
            attempt < 2,
            "warm incremental_step allocated {last_delta} times in all 3 attempts"
        );
    }
    assert_eq!(last_delta, 0);
    assert!(last_loss.is_finite());
    assert!(
        last_loss <= first * 1.5,
        "repeated steps on one batch should not blow up the loss ({first} -> {last_loss})"
    );
}
