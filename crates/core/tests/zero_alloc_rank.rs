//! Steady-state allocation test for the placement query hot path: after the
//! first call has sized the engine's query buffer and the caller's ranking
//! `Vec`, [`DrlEngine::rank_locations_into`] must not touch the heap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use geomancy_core::drl::{DrlConfig, DrlEngine, PlacementQuery};
use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

/// Counts every allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A ReplayDB where device 1 is consistently faster than device 0.
fn biased_db(n: u64) -> ReplayDb {
    let mut db = ReplayDb::new();
    for i in 0..n {
        let dev = (i % 2) as u32;
        let dt_ms: u64 = if dev == 0 { 400 } else { 100 };
        let open_ms = i * 1000;
        let close_ms = open_ms + dt_ms;
        db.insert(
            i,
            AccessRecord {
                access_number: i,
                fid: FileId(i % 4),
                fsid: DeviceId(dev),
                rb: 1_000_000,
                wb: 0,
                ots: open_ms / 1000,
                otms: (open_ms % 1000) as u16,
                cts: close_ms / 1000,
                ctms: (close_ms % 1000) as u16,
            },
        );
    }
    db
}

#[test]
fn warm_rank_locations_into_does_not_allocate() {
    let db = biased_db(200);
    let mut engine = DrlEngine::new(DrlConfig {
        epochs: 10,
        smoothing_window: 4,
        ..DrlConfig::default()
    });
    engine.retrain(&db).expect("enough data to retrain");

    let query = PlacementQuery {
        fid: FileId(1),
        read_bytes: 1_000_000,
        write_bytes: 0,
        now_secs: 300,
        now_ms: 0,
    };
    let candidates = [DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)];
    let mut ranked = Vec::new();
    // Warm-up sizes the engine's query batch and the output Vec.
    engine.rank_locations_into(&query, &candidates, &mut ranked);
    assert_eq!(ranked.len(), candidates.len());

    // The counter is process-global, so another thread (libtest
    // bookkeeping) can leak the odd allocation into a measured window; a
    // genuinely allocating hot path fails every attempt, noise does not.
    let mut last_delta = 0;
    for attempt in 0..3 {
        let before = allocations();
        for _ in 0..25 {
            engine.rank_locations_into(&query, &candidates, &mut ranked);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
        assert!(
            attempt < 2,
            "warm rank_locations_into allocated {last_delta} times in all 3 attempts"
        );
    }
    assert_eq!(last_delta, 0);
    assert_eq!(ranked.len(), candidates.len());
    // The biased data still ranks device 1 above device 0.
    assert!(ranked[1].1 >= ranked[0].1);
}
