//! The client side of the transport: pooled connections, pipelined
//! requests, retry-with-backoff on shed work.
//!
//! A [`Client`] holds a small pool of connections. Each request stamps
//! a fresh correlation id, registers a completion channel, writes its
//! frame, and blocks on the reply — so *many threads* sharing one
//! client pipeline their requests over the same sockets, and a
//! dedicated reader thread per connection routes responses back by id.
//! Replies carrying [`WireStatus::Overloaded`] or
//! [`WireStatus::Backpressure`] retry with exponential backoff (that is
//! the contract: overload is a status to react to, not a dead socket);
//! every other failure surfaces as a typed [`NetError`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use geomancy_serve::{Decision, MetricsSnapshot, PlacementRequest};
use geomancy_sim::record::AccessRecord;

use crate::wire::{
    self, ClusterMap, DecodeError, Frame, FrameKind, FrameReader, Health, WireStatus,
    DEFAULT_MAX_PAYLOAD,
};

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(DecodeError),
    /// The server answered with a non-ok status.
    Server(WireStatus),
    /// The request routed on a stale cluster epoch; the server sent the
    /// current map back so the caller can re-route.
    WrongEpoch(Box<ClusterMap>),
    /// The connection died with this request in flight.
    Disconnected,
    /// No reply within the configured request timeout.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Server(s) => write!(f, "server answered: {s}"),
            NetError::WrongEpoch(map) => {
                write!(f, "stale cluster epoch (current is {})", map.epoch)
            }
            NetError::Disconnected => f.write_str("connection dropped with request in flight"),
            NetError::Timeout => f.write_str("request timed out"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// Backoff policy for retryable statuses.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff; doubles per retry.
    pub base_backoff_millis: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 8,
            base_backoff_millis: 1,
        }
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connections in the pool (requests round-robin across them).
    pub pool_size: usize,
    /// Cap on a received frame's payload, bytes.
    pub max_payload: usize,
    /// How long one request waits for its reply, milliseconds.
    pub request_timeout_millis: u64,
    /// Backoff policy for `Overloaded`/`Backpressure` replies.
    pub retry: RetryConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            pool_size: 2,
            max_payload: DEFAULT_MAX_PAYLOAD,
            request_timeout_millis: 30_000,
            retry: RetryConfig::default(),
        }
    }
}

type PendingMap = Mutex<HashMap<u64, mpsc::Sender<Result<Frame, NetError>>>>;

/// One live connection: a locked write half plus a reader thread that
/// routes response frames to their waiting requests by correlation id.
struct Conn {
    write: Mutex<TcpStream>,
    pending: Arc<PendingMap>,
    alive: Arc<AtomicBool>,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Conn {
    fn open(addr: SocketAddr, max_payload: usize) -> Result<Arc<Conn>, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let pending: Arc<PendingMap> = Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let reader = {
            let pending = Arc::clone(&pending);
            let alive = Arc::clone(&alive);
            std::thread::Builder::new()
                .name("geomancy-net-client-read".to_string())
                .spawn(move || {
                    conn_read_loop(read_half, &pending, &alive, max_payload);
                })
                .map_err(NetError::Io)?
        };
        Ok(Arc::new(Conn {
            write: Mutex::new(stream),
            pending,
            alive,
            reader: Mutex::new(Some(reader)),
        }))
    }

    fn close(&self) {
        self.alive.store(false, Ordering::SeqCst);
        if let Ok(stream) = self.write.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.lock().expect("reader handle").take() {
            let _ = handle.join();
        }
    }
}

/// The connection's reader: socket → [`FrameReader`] → pending map.
/// On any exit path every still-pending request learns the connection
/// is gone — nothing waits forever on a dead socket.
fn conn_read_loop(
    mut stream: TcpStream,
    pending: &PendingMap,
    alive: &AtomicBool,
    max_payload: usize,
) {
    let mut reader = FrameReader::new(max_payload);
    let mut scratch = [0u8; 64 * 1024];
    let failure: DecodeError = 'conn: loop {
        match stream.read(&mut scratch) {
            Ok(0) => break DecodeError::Truncated, // EOF.
            Ok(n) => {
                reader.push(&scratch[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            let waiter =
                                pending.lock().expect("pending map").remove(&frame.corr_id);
                            if let Some(tx) = waiter {
                                let _ = tx.send(Ok(frame));
                            }
                        }
                        Ok(None) => break,
                        Err(e) => break 'conn e,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break DecodeError::Truncated,
        }
    };
    alive.store(false, Ordering::SeqCst);
    let waiters: Vec<_> = pending.lock().expect("pending map").drain().collect();
    for (_corr, tx) in waiters {
        let err = match &failure {
            DecodeError::Truncated => NetError::Disconnected,
            other => NetError::Protocol(other.clone()),
        };
        let _ = tx.send(Err(err));
    }
}

/// A pooled, pipelined client for a Geomancy placement server.
///
/// Cheap to share: the client is `Send + Sync`; clone an `Arc<Client>`
/// across threads and every thread's requests interleave over the pool.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conns: Mutex<Vec<Arc<Conn>>>,
    rr: AtomicUsize,
    corr: AtomicU64,
}

impl Client {
    /// Connects the pool to `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when resolution or any connect fails.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Io(std::io::Error::other("address resolved to nothing")))?;
        let mut conns = Vec::with_capacity(config.pool_size.max(1));
        for _ in 0..config.pool_size.max(1) {
            conns.push(Conn::open(addr, config.max_payload)?);
        }
        Ok(Client {
            addr,
            config,
            conns: Mutex::new(conns),
            rr: AtomicUsize::new(0),
            corr: AtomicU64::new(1),
        })
    }

    /// Round-robins to a live connection, transparently replacing dead
    /// pool slots.
    ///
    /// A dead slot is replaced the moment round-robin rotates onto it —
    /// the old connection's reader thread is joined and its socket and
    /// pending map dropped — rather than being skipped while a neighbor
    /// is alive, which used to shrink the pool one death at a time and
    /// park the dead connection's state until the client dropped.
    fn conn(&self) -> Result<Arc<Conn>, NetError> {
        let mut conns = self.conns.lock().expect("connection pool");
        let n = conns.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        if conns[start].alive.load(Ordering::SeqCst) {
            return Ok(Arc::clone(&conns[start]));
        }
        match Conn::open(self.addr, self.config.max_payload) {
            Ok(fresh) => {
                let old = std::mem::replace(&mut conns[start], Arc::clone(&fresh));
                old.close();
                Ok(fresh)
            }
            Err(e) => {
                // Server unreachable right now: fall back to any live
                // neighbor before giving up.
                for i in 1..n {
                    let idx = (start + i) % n;
                    if conns[idx].alive.load(Ordering::SeqCst) {
                        return Ok(Arc::clone(&conns[idx]));
                    }
                }
                Err(e)
            }
        }
    }

    /// Pool observability for tests and monitoring: `(live, total)`
    /// connections right now.
    pub fn pool_health(&self) -> (usize, usize) {
        let conns = self.conns.lock().expect("connection pool");
        let live = conns
            .iter()
            .filter(|c| c.alive.load(Ordering::SeqCst))
            .count();
        (live, conns.len())
    }

    /// One request/response round trip (no retries at this layer).
    fn request(
        &self,
        kind: FrameKind,
        expect: FrameKind,
        payload: Vec<u8>,
    ) -> Result<Frame, NetError> {
        let conn = self.conn()?;
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().expect("pending map").insert(corr, tx);
        let bytes = Frame::new(kind, corr, payload).encode();
        {
            let mut w = conn.write.lock().expect("write half");
            if let Err(e) = w.write_all(&bytes) {
                conn.pending.lock().expect("pending map").remove(&corr);
                conn.alive.store(false, Ordering::SeqCst);
                let _ = w.shutdown(Shutdown::Both);
                return Err(NetError::Io(e));
            }
        }
        let reply = rx
            .recv_timeout(Duration::from_millis(
                self.config.request_timeout_millis.max(1),
            ))
            .map_err(|_| {
                conn.pending.lock().expect("pending map").remove(&corr);
                NetError::Timeout
            })??;
        if reply.kind != expect {
            return Err(NetError::Protocol(DecodeError::BadPayload(
                "response frame kind does not match request",
            )));
        }
        Ok(reply)
    }

    /// Runs `attempt`, retrying with exponential backoff while the
    /// server answers with a [`WireStatus::retry_same`] status. Statuses
    /// classified [`WireStatus::retry_elsewhere`] (`Draining`,
    /// `ServiceDown`, `WrongEpoch`) surface immediately: this node has
    /// stopped serving, so backing off against it only delays the
    /// failover a cluster-aware caller should perform.
    fn with_retry<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut backoff = self.config.retry.base_backoff_millis.max(1);
        let mut tries = 0u32;
        loop {
            match attempt() {
                Err(NetError::Server(s))
                    if s.retry_same() && tries < self.config.retry.max_retries =>
                {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(backoff));
                    backoff = backoff.saturating_mul(2);
                }
                other => return other,
            }
        }
    }

    /// Ships a telemetry batch, retrying on shard backpressure.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s; [`NetError::Server`] carries the wire
    /// status once retries are exhausted.
    pub fn ingest(&self, timestamp_micros: u64, records: &[AccessRecord]) -> Result<(), NetError> {
        self.with_retry(|| {
            let reply = self.request(
                FrameKind::IngestReq,
                FrameKind::IngestResp,
                wire::encode_ingest_req(timestamp_micros, records),
            )?;
            let (status, _shard) =
                wire::decode_ingest_resp(&reply.payload).map_err(NetError::Protocol)?;
            match status {
                WireStatus::Ok => Ok(()),
                WireStatus::WrongEpoch => Err(wrong_epoch(&reply.payload)),
                other => Err(NetError::Server(other)),
            }
        })
    }

    /// Asks for placements in one batched submission, retrying when the
    /// admission controller sheds it.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s; [`NetError::Server`] carries the wire
    /// status once retries are exhausted.
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, NetError> {
        self.with_retry(|| {
            let reply = self.request(
                FrameKind::QueryReq,
                FrameKind::QueryResp,
                wire::encode_query_req(requests),
            )?;
            let (status, decisions) =
                wire::decode_query_resp(&reply.payload).map_err(NetError::Protocol)?;
            match status {
                WireStatus::Ok => Ok(decisions),
                WireStatus::WrongEpoch => Err(wrong_epoch(&reply.payload)),
                other => Err(NetError::Server(other)),
            }
        })
    }

    /// Single-request convenience over [`Client::query_many`].
    ///
    /// # Errors
    ///
    /// As [`Client::query_many`], plus a protocol error if the server
    /// answers with the wrong decision count.
    pub fn query(&self, request: PlacementRequest) -> Result<Decision, NetError> {
        let decisions = self.query_many(std::slice::from_ref(&request))?;
        if decisions.len() != 1 {
            return Err(NetError::Protocol(DecodeError::BadPayload(
                "expected exactly one decision",
            )));
        }
        Ok(decisions[0])
    }

    /// Fetches the service's full metrics snapshot.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s.
    pub fn metrics(&self) -> Result<MetricsSnapshot, NetError> {
        let reply = self.request(FrameKind::MetricsReq, FrameKind::MetricsResp, Vec::new())?;
        wire::decode_metrics_resp(&reply.payload).map_err(NetError::Protocol)
    }

    /// Probes server health.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s.
    pub fn health(&self) -> Result<Health, NetError> {
        let reply = self.request(FrameKind::HealthReq, FrameKind::HealthResp, Vec::new())?;
        wire::decode_health_resp(&reply.payload).map_err(NetError::Protocol)
    }

    /// Requests a synchronous retrain; returns the published epoch.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] with [`WireStatus::NotEnoughData`] when the
    /// service lacks telemetry, plus the usual transport errors.
    pub fn retrain(&self) -> Result<u64, NetError> {
        let reply = self.request(FrameKind::RetrainReq, FrameKind::RetrainResp, Vec::new())?;
        let (status, epoch) =
            wire::decode_retrain_resp(&reply.payload).map_err(NetError::Protocol)?;
        match status {
            WireStatus::Ok => Ok(epoch),
            other => Err(NetError::Server(other)),
        }
    }

    /// Fetches the node's current [`ClusterMap`] (protocol v5; a
    /// single-node server answers `BadRequest`).
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s.
    pub fn cluster_info(&self) -> Result<ClusterMap, NetError> {
        let reply = self.request(
            FrameKind::ClusterInfoReq,
            FrameKind::ClusterInfoResp,
            Vec::new(),
        )?;
        if let Some(&status) = reply.payload.first() {
            if status != WireStatus::Ok as u8 {
                let status = WireStatus::from_u8(status).map_err(NetError::Protocol)?;
                return Err(NetError::Server(status));
            }
        }
        wire::decode_cluster_info_resp(&reply.payload).map_err(NetError::Protocol)
    }

    /// Ships one sealed WAL segment to a follower (protocol v5). Returns
    /// once the follower has durably applied it.
    ///
    /// # Errors
    ///
    /// [`NetError::WrongEpoch`] when the follower's map has moved on;
    /// other typed [`NetError`]s for transport or apply failures.
    pub fn ship_segment(&self, ship: &wire::SegmentShip) -> Result<(), NetError> {
        let reply = self.request(
            FrameKind::ShipSegment,
            FrameKind::ShipAck,
            wire::encode_ship_segment(ship),
        )?;
        let (status, _shard, _seq, map) =
            wire::decode_ship_ack(&reply.payload).map_err(NetError::Protocol)?;
        match (status, map) {
            (WireStatus::Ok, _) => Ok(()),
            (WireStatus::WrongEpoch, Some(map)) => Err(NetError::WrongEpoch(Box::new(map))),
            (other, _) => Err(NetError::Server(other)),
        }
    }

    /// One heartbeat round trip: sends this node's id and epoch, returns
    /// the peer's `(node_id, epoch)` view (protocol v5).
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s — a timeout or disconnect here is the
    /// failover detector's signal.
    pub fn heartbeat(&self, node_id: u64, epoch: u64) -> Result<(u64, u64), NetError> {
        let reply = self.request(
            FrameKind::Heartbeat,
            FrameKind::HeartbeatAck,
            wire::encode_heartbeat(node_id, epoch),
        )?;
        wire::decode_heartbeat(&reply.payload).map_err(NetError::Protocol)
    }

    /// One heartbeat round trip that also announces this node's listener
    /// address (protocol v6), so a peer that does not know the sender
    /// can admit it to the map.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]s — a timeout or disconnect here is the
    /// failover detector's signal.
    pub fn heartbeat_addr(
        &self,
        node_id: u64,
        epoch: u64,
        addr: &str,
    ) -> Result<(u64, u64), NetError> {
        let reply = self.request(
            FrameKind::Heartbeat,
            FrameKind::HeartbeatAck,
            wire::encode_heartbeat_addr(node_id, epoch, addr),
        )?;
        wire::decode_heartbeat(&reply.payload).map_err(NetError::Protocol)
    }

    /// Requests one catch-up chunk for a shard (protocol v6).
    ///
    /// # Errors
    ///
    /// [`NetError::WrongEpoch`] when the target no longer owns the
    /// shard; [`NetError::Server`] with [`WireStatus::Backpressure`]
    /// when the primary wants the follower to try again later; other
    /// typed [`NetError`]s for transport failures.
    pub fn catch_up(&self, req: &wire::CatchUpReq) -> Result<wire::CatchUpChunk, NetError> {
        let reply = self.request(
            FrameKind::CatchUpReq,
            FrameKind::CatchUpChunk,
            wire::encode_catch_up_req(req),
        )?;
        let (status, chunk, map) =
            wire::decode_catch_up_chunk(&reply.payload).map_err(NetError::Protocol)?;
        match (status, chunk, map) {
            (WireStatus::Ok, Some(chunk), _) => Ok(chunk),
            (WireStatus::WrongEpoch, _, Some(map)) => Err(NetError::WrongEpoch(Box::new(map))),
            (WireStatus::Ok, None, _) => Err(NetError::Protocol(DecodeError::BadPayload(
                "ok catch-up chunk with no body",
            ))),
            (other, _, _) => Err(NetError::Server(other)),
        }
    }

    /// Reports a completed catch-up round's durable floor to the shard's
    /// primary (protocol v6). Returns the primary's epoch.
    ///
    /// # Errors
    ///
    /// [`NetError::WrongEpoch`] when the target no longer owns the
    /// shard; other typed [`NetError`]s for transport failures.
    pub fn catch_up_done(&self, done: &wire::CatchUpDone) -> Result<u64, NetError> {
        let reply = self.request(
            FrameKind::CatchUpDone,
            FrameKind::CatchUpAck,
            wire::encode_catch_up_done(done),
        )?;
        let (status, epoch, map) =
            wire::decode_catch_up_ack(&reply.payload).map_err(NetError::Protocol)?;
        match (status, map) {
            (WireStatus::Ok, _) => Ok(epoch),
            (WireStatus::WrongEpoch, Some(map)) => Err(NetError::WrongEpoch(Box::new(map))),
            (other, _) => Err(NetError::Server(other)),
        }
    }
}

/// Builds the [`NetError::WrongEpoch`] for a response payload whose
/// status byte already said so (falling back to a protocol error if the
/// map does not decode).
fn wrong_epoch(payload: &[u8]) -> NetError {
    match wire::decode_wrong_epoch(payload) {
        Ok(map) => NetError::WrongEpoch(Box::new(map)),
        Err(e) => NetError::Protocol(e),
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        for conn in self.conns.lock().expect("connection pool").iter() {
            conn.close();
        }
    }
}
