//! # geomancy-net
//!
//! The TCP transport that puts [`geomancy_serve::PlacementService`] on
//! the wire — the paper's Interface Daemon "networking middleware"
//! (§V-A) as an actual network protocol instead of an in-process handle.
//!
//! ```text
//!   client                      server
//!   ──────                      ──────
//!   Client ── frames ──► acceptor thread
//!     │                     │ per connection
//!     │              reader thread ──► PlacementService
//!     │                (decode,          │ query_many_async
//!     │                 dispatch)        ▼ completion
//!     ◄── frames ──── writer actor ◄── encode reply
//!                     (net reactor)
//! ```
//!
//! Three layers:
//!
//! - [`wire`]: the length-prefixed, versioned binary frame format and
//!   the payload codecs — ingest batches, batched placement queries,
//!   metrics snapshots, health checks, retrain requests. Decoding is
//!   total: truncated, corrupted, or oversized input yields a typed
//!   [`wire::DecodeError`], never a panic or a hang.
//! - [`server`]: [`server::NetServer`] — an acceptor plus, per
//!   connection, a blocking reader thread and a writer actor on a
//!   dedicated [`geomancy_runtime::Reactor`]. Readers block on sockets
//!   (with a poll tick), so the serve reactor never parks a worker on
//!   I/O; replies flow engine-callback → `send_now` → writer, so a
//!   stalled or dead peer cannot wedge query completion. Overload is a
//!   *reply* ([`wire::WireStatus::Overloaded`]), not a dropped
//!   connection.
//! - [`client`]: [`client::Client`] — a pooled, pipelined client:
//!   correlation ids let many requests share one connection, responses
//!   are matched by id, and `Overloaded`/`Backpressure` replies retry
//!   with exponential backoff.

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, NetError, RetryConfig};
pub use server::{ClusterHandler, NetConfig, NetServer};
pub use wire::{
    ClusterMap, ClusterNodeInfo, DecodeError, Frame, FrameKind, FrameReader, Health, SegmentShip,
    ShardAssignment, WireStatus,
};
