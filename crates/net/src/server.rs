//! The server side of the transport: an acceptor, a blocking reader
//! thread per connection, and a writer actor per connection on a
//! dedicated reactor.
//!
//! ## Why readers are threads and only writers are actors
//!
//! The runtime's reactor has no I/O poller: actors must never block a
//! worker, but a socket read *is* a block. Worse, `query_many` blocks
//! on the engine actor's reply — if connection handlers ran as actors
//! on the serve pool, every worker could end up parked waiting on the
//! engine, which then has no worker left to run on. So the blocking
//! edges live on OS threads (one reader per connection, ticking a
//! receive timeout so shutdown and stall detection stay responsive),
//! queries flow through the *callback* path
//! ([`PlacementService::query_many_async`]), and completions hop to the
//! connection's writer actor with `send_now` — non-blocking, delivered
//! even during drain — so a slow or dead peer can never wedge the
//! engine or leak the admission controller's pending accounting.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use geomancy_runtime::{Actor, Addr, Ctx, Reactor, ReactorConfig};
use geomancy_serve::{PlacementService, QueryError};
use geomancy_sim::record::FileId;

use crate::wire::{
    self, DecodeError, Frame, FrameKind, FrameReader, Health, WireStatus, DEFAULT_MAX_PAYLOAD,
};

/// Cluster extension a server consults when it runs as a cluster node
/// (protocol v5). Implemented by `geomancy-cluster`; a plain
/// single-node server runs without one and answers the cluster frames
/// with [`WireStatus::BadRequest`].
///
/// Methods returning payloads return *complete response payloads* —
/// the handler owns the epoch checks and the map, the transport only
/// frames and routes. `on_ship` may block on disk I/O: it runs on the
/// connection's own reader thread, like synchronous retrain.
pub trait ClusterHandler: Send + Sync {
    /// Whether this node currently serves `fid`'s shard (primary by the
    /// handler's map). A request naming a foreign fid is answered with
    /// the [`ClusterHandler::wrong_epoch_payload`] instead of served.
    fn owns(&self, fid: FileId) -> bool;
    /// `WrongEpoch` + current-map payload for misrouted requests.
    fn wrong_epoch_payload(&self) -> Vec<u8>;
    /// `ClusterInfoResp` payload: `Ok` + current map.
    fn cluster_info_payload(&self) -> Vec<u8>;
    /// Applies one shipped WAL segment; returns the `ShipAck` payload.
    fn on_ship(&self, payload: &[u8]) -> Vec<u8>;
    /// Answers a peer heartbeat; returns the `HeartbeatAck` payload.
    fn on_heartbeat(&self, payload: &[u8]) -> Vec<u8>;
    /// Serves one catch-up chunk (protocol v6); returns the
    /// `CatchUpChunk` payload. Like `on_ship`, it may block on disk I/O
    /// on the connection's own reader thread. The default answers
    /// `BadRequest` so pre-repair handlers keep compiling.
    fn on_catch_up(&self, payload: &[u8]) -> Vec<u8> {
        let _ = payload;
        wire::encode_catch_up_chunk(WireStatus::BadRequest, None, None)
    }
    /// Records a follower's completed catch-up round (protocol v6);
    /// returns the `CatchUpAck` payload. The default answers
    /// `BadRequest`.
    fn on_catch_up_done(&self, payload: &[u8]) -> Vec<u8> {
        let _ = payload;
        wire::encode_catch_up_ack(WireStatus::BadRequest, 0, None)
    }
}

/// Transport-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Cap on a single frame's payload, bytes.
    pub max_payload: usize,
    /// Per-connection cap on queries in flight through the engine;
    /// requests past it are answered [`WireStatus::Overloaded`].
    pub max_inflight_per_conn: usize,
    /// Reader poll tick — how often a blocked read wakes to check the
    /// stop flag and the stall clock, milliseconds.
    pub read_tick_millis: u64,
    /// How long a peer may sit mid-frame without delivering a byte
    /// before the connection is declared stalled and closed,
    /// milliseconds.
    pub stall_timeout_millis: u64,
    /// Worker threads on the writer reactor (0 = runtime default).
    pub net_workers: usize,
    /// How long shutdown waits for in-flight queries to complete,
    /// milliseconds.
    pub drain_timeout_millis: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_inflight_per_conn: 64,
            read_tick_millis: 100,
            stall_timeout_millis: 30_000,
            net_workers: 2,
            drain_timeout_millis: 10_000,
        }
    }
}

/// Counters the server exposes about itself (distinct from the
/// service's own metrics, which travel over [`FrameKind::MetricsReq`]).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: AtomicU64,
    /// Frames decoded across all connections.
    pub frames_in: AtomicU64,
    /// Frames written across all connections.
    pub frames_out: AtomicU64,
    /// Connections torn down on protocol errors.
    pub protocol_errors: AtomicU64,
    /// Queries answered [`WireStatus::Overloaded`] at the wire layer
    /// (per-connection in-flight cap), before reaching admission.
    pub wire_shed: AtomicU64,
    /// Connections currently open (gauge: reader thread still running).
    pub live_connections: AtomicU64,
    /// Writer actors currently occupying a net-reactor slot (gauge;
    /// decremented from `Writer::on_stop`, so it covers both despawn on
    /// connection close and reactor shutdown).
    pub writers_live: AtomicU64,
}

/// Messages to a connection's writer actor.
enum WriteMsg {
    /// Encode and write one frame.
    Frame(Frame),
    /// Close the socket for writing.
    Close,
}

/// Owns the write half of one connection. Lives on the net reactor, so
/// writes serialize per connection without a lock, and a peer that
/// stops reading only ever stalls this actor's turns — never the serve
/// pool.
struct Writer {
    stream: TcpStream,
    stats: Arc<NetStats>,
    dead: bool,
    scratch: Vec<u8>,
}

impl Actor for Writer {
    type Msg = WriteMsg;

    fn on_msg(&mut self, msg: WriteMsg, ctx: &mut Ctx<'_>) {
        match msg {
            WriteMsg::Frame(frame) => {
                if self.dead {
                    return;
                }
                self.scratch.clear();
                frame.encode_into(&mut self.scratch);
                if self.stream.write_all(&self.scratch).is_err() {
                    // Peer is gone: wake the reader (it sees EOF/reset),
                    // drop queued replies on the floor (retire purges the
                    // mailbox), and give the slot back.
                    self.dead = true;
                    let _ = self.stream.shutdown(Shutdown::Both);
                    ctx.stop_self();
                    return;
                }
                self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            WriteMsg::Close => {
                // Teardown ordering: every reply queued before Close has
                // already been written (one mailbox, FIFO), so flush,
                // half-close, and retire — the slot is reused by the next
                // accepted connection.
                if !self.dead {
                    let _ = self.stream.flush();
                    let _ = self.stream.shutdown(Shutdown::Write);
                    self.dead = true;
                }
                ctx.stop_self();
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        self.stats.writers_live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-connection state shared between its reader thread and the
/// completion callbacks it hands to the engine.
struct ConnShared {
    writer: Addr<WriteMsg>,
    /// Queries this connection currently has inside the engine.
    inflight: AtomicUsize,
    /// Queries in flight across the whole server — drained to zero on
    /// shutdown before the writer reactor stops.
    global_inflight: Arc<AtomicUsize>,
    stats: Arc<NetStats>,
}

impl ConnShared {
    fn reply(&self, frame: Frame) {
        // send_now: replies may not block the engine's callback, and
        // must still land while the reactor drains during shutdown.
        let _ = self.writer.send_now(WriteMsg::Frame(frame));
    }
}

/// A running TCP front-end for one [`PlacementService`].
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    global_inflight: Arc<AtomicUsize>,
    stats: Arc<NetStats>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    reactor: Option<Arc<Reactor>>,
    config: NetConfig,
}

impl NetServer {
    /// Binds `addr` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        addr: impl ToSocketAddrs,
        service: Arc<PlacementService>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::start_inner(addr, service, config, None)
    }

    /// Binds `addr` and serves `service` as a cluster node: `handler`
    /// answers the protocol-v5 cluster frames and gates ingest/query on
    /// shard ownership.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start_with_cluster(
        addr: impl ToSocketAddrs,
        service: Arc<PlacementService>,
        config: NetConfig,
        handler: Arc<dyn ClusterHandler>,
    ) -> std::io::Result<NetServer> {
        NetServer::start_inner(addr, service, config, Some(handler))
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        service: Arc<PlacementService>,
        config: NetConfig,
        cluster: Option<Arc<dyn ClusterHandler>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let reactor = Arc::new(Reactor::new(ReactorConfig {
            workers: config.net_workers,
            name: "geomancy-net".to_string(),
            ..ReactorConfig::default()
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let global_inflight = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(NetStats::default());
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            let global_inflight = Arc::clone(&global_inflight);
            let stats = Arc::clone(&stats);
            let readers = Arc::clone(&readers);
            let reactor_handle = Arc::clone(&reactor);
            let config = config.clone();
            std::thread::Builder::new()
                .name("geomancy-net-accept".to_string())
                .spawn(move || {
                    let mut conn_seq = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        // Reap readers that already exited so the registry
                        // stays bounded under connection churn (joining a
                        // finished thread is immediate).
                        {
                            let mut reg = readers.lock().expect("reader registry");
                            let mut i = 0;
                            while i < reg.len() {
                                if reg[i].is_finished() {
                                    let _ = reg.swap_remove(i).join();
                                } else {
                                    i += 1;
                                }
                            }
                        }
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                conn_seq += 1;
                                stats.accepted.fetch_add(1, Ordering::Relaxed);
                                let handle = spawn_connection(
                                    conn_seq,
                                    stream,
                                    Arc::clone(&service),
                                    &reactor_handle,
                                    &config,
                                    Arc::clone(&stop),
                                    Arc::clone(&draining),
                                    Arc::clone(&global_inflight),
                                    Arc::clone(&stats),
                                    cluster.clone(),
                                );
                                if let Ok(handle) = handle {
                                    readers.lock().expect("reader registry").push(handle);
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(20)),
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(NetServer {
            local_addr,
            stop,
            draining,
            global_inflight,
            stats,
            acceptor: Some(acceptor),
            readers,
            reactor: Some(reactor),
            config,
        })
    }

    /// The bound address (resolves `:0` binds to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Transport-layer counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Connections currently open (reader thread still running).
    pub fn live_connections(&self) -> u64 {
        self.stats.live_connections.load(Ordering::SeqCst)
    }

    /// Writer actors currently occupying a slot on the net reactor —
    /// ground truth from the reactor's own slot table, not a shadow
    /// counter.
    pub fn live_writer_actors(&self) -> u64 {
        self.reactor.as_ref().map_or(0, |r| r.stats().live as u64)
    }

    /// Writer actors retired (despawned) over the server's lifetime.
    pub fn retired_writers(&self) -> u64 {
        self.reactor.as_ref().map_or(0, |r| r.stats().retired_total)
    }

    /// Net-reactor slot-table length: the high-water mark of concurrently
    /// live writers. Stays flat under churn because retired slots are
    /// reused.
    pub fn writer_slot_capacity(&self) -> usize {
        self.reactor.as_ref().map_or(0, |r| r.stats().slot_capacity)
    }

    /// Starts advertising [`WireStatus::Draining`] without tearing
    /// anything down: connections stay open and every subsequent
    /// ingest or query is answered with `Draining` so clients route
    /// elsewhere ([`WireStatus::retry_elsewhere`]) while this node
    /// finishes background work. Non-placement traffic — health,
    /// metrics, cluster frames — still answers normally. Call
    /// [`shutdown`](NetServer::shutdown) for the full teardown.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, let readers finish their
    /// current frames, wait (bounded) for in-flight queries to answer,
    /// then drain the writer reactor so every queued reply is written.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
    }

    fn begin_shutdown(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader registry"));
        for r in readers {
            let _ = r.join();
        }
        // Readers are gone, so no new queries can enter; wait for the
        // engine to answer what is already in flight (each completion
        // decrements the gauge from its callback).
        let deadline = std::time::Instant::now()
            + Duration::from_millis(self.config.drain_timeout_millis.max(1));
        while self.global_inflight.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(reactor) = self.reactor.take() {
            // The acceptor (sole other holder) has joined, so the Arc
            // unwraps; drain flushes queued replies before workers stop.
            match Arc::try_unwrap(reactor) {
                Ok(reactor) => drop(reactor.shutdown()),
                Err(still_shared) => drop(still_shared), // Drop drains too.
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.begin_shutdown();
        }
    }
}

/// Sets up one accepted connection: a writer actor on the net reactor
/// and a reader thread that decodes and dispatches frames.
#[allow(clippy::too_many_arguments)]
fn spawn_connection(
    conn_seq: u64,
    stream: TcpStream,
    service: Arc<PlacementService>,
    reactor: &Reactor,
    config: &NetConfig,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    global_inflight: Arc<AtomicUsize>,
    stats: Arc<NetStats>,
    cluster: Option<Arc<dyn ClusterHandler>>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(config.read_tick_millis.max(1))))?;
    let write_half = stream.try_clone()?;
    let (writer, _handle) = reactor.spawn(
        &format!("net-writer-{conn_seq}"),
        256,
        Writer {
            stream: write_half,
            stats: Arc::clone(&stats),
            dead: false,
            scratch: Vec::new(),
        },
    );
    stats.writers_live.fetch_add(1, Ordering::SeqCst);
    stats.live_connections.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::new(ConnShared {
        writer,
        inflight: AtomicUsize::new(0),
        global_inflight,
        stats,
    });
    let config = config.clone();
    let spawned = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("geomancy-net-read-{conn_seq}"))
            .spawn(move || {
                read_loop(stream, service, shared, &config, stop, draining, cluster);
            })
    };
    if spawned.is_err() {
        // The reader never started, so nobody will tear this connection
        // down — do it here or the writer slot leaks.
        shared.stats.live_connections.fetch_sub(1, Ordering::SeqCst);
        shared.writer.retire();
    }
    spawned
}

/// The per-connection blocking read loop: socket → [`FrameReader`] →
/// dispatch. Exits on EOF, protocol error, stall, or server stop.
#[allow(clippy::too_many_arguments)]
fn read_loop(
    mut stream: TcpStream,
    service: Arc<PlacementService>,
    shared: Arc<ConnShared>,
    config: &NetConfig,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    cluster: Option<Arc<dyn ClusterHandler>>,
) {
    let mut reader = FrameReader::new(config.max_payload);
    let mut scratch = [0u8; 64 * 1024];
    let stall_limit = Duration::from_millis(config.stall_timeout_millis.max(1));
    let mut last_progress = std::time::Instant::now();

    'conn: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut scratch) {
            Ok(0) => break, // EOF: peer closed its write half.
            Ok(n) => {
                last_progress = std::time::Instant::now();
                reader.push(&scratch[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                            dispatch(
                                frame,
                                &service,
                                &shared,
                                config,
                                &draining,
                                cluster.as_ref(),
                            );
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // The stream is unsynchronized. Name the
                            // failure on the way out when the header
                            // itself was intelligible.
                            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            if let DecodeError::Oversized { .. } = e {
                                shared.reply(Frame::new(
                                    FrameKind::QueryResp,
                                    0,
                                    wire::encode_query_resp_err(WireStatus::TooLarge),
                                ));
                            }
                            break 'conn;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if reader.has_partial() && last_progress.elapsed() > stall_limit {
                    break; // Mid-frame and silent too long: stalled.
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // Reset / hard error.
        }
    }
    let _ = stream.shutdown(Shutdown::Read);
    // Close retires the writer after it flushes queued replies. If the
    // send fails the writer is already dead or retiring (write-error
    // path) — retire directly so the slot is reclaimed either way.
    if shared.writer.send_now(WriteMsg::Close).is_err() {
        shared.writer.retire();
    }
    shared.stats.live_connections.fetch_sub(1, Ordering::SeqCst);
}

/// Routes one decoded frame to the service and queues the reply.
fn dispatch(
    frame: Frame,
    service: &Arc<PlacementService>,
    shared: &Arc<ConnShared>,
    config: &NetConfig,
    draining: &AtomicBool,
    cluster: Option<&Arc<dyn ClusterHandler>>,
) {
    let corr = frame.corr_id;
    match frame.kind {
        FrameKind::IngestReq => {
            if draining.load(Ordering::SeqCst) {
                shared.reply(Frame::new(
                    FrameKind::IngestResp,
                    corr,
                    wire::encode_ingest_resp(WireStatus::Draining, 0),
                ));
                return;
            }
            let (status, shard) = match wire::decode_ingest_req(&frame.payload) {
                Ok((ts, records)) => {
                    // Cluster ownership gate: a batch naming a shard this
                    // node no longer owns was routed on a stale map.
                    if let Some(h) = cluster {
                        if records.iter().any(|r| !h.owns(r.fid)) {
                            shared.reply(Frame::new(
                                FrameKind::IngestResp,
                                corr,
                                h.wrong_epoch_payload(),
                            ));
                            return;
                        }
                    }
                    // Non-blocking ingest: a full shard maps to an
                    // explicit Backpressure status the client retries,
                    // instead of this thread parking on the shard
                    // mailbox.
                    match service.try_ingest(ts, &records) {
                        Ok(()) => (WireStatus::Ok, 0),
                        Err(bp) => (WireStatus::Backpressure, bp.shard as u32),
                    }
                }
                Err(_) => (WireStatus::BadRequest, 0),
            };
            shared.reply(Frame::new(
                FrameKind::IngestResp,
                corr,
                wire::encode_ingest_resp(status, shard),
            ));
        }
        FrameKind::QueryReq => {
            if draining.load(Ordering::SeqCst) {
                shared.reply(Frame::new(
                    FrameKind::QueryResp,
                    corr,
                    wire::encode_query_resp_err(WireStatus::Draining),
                ));
                return;
            }
            let requests = match wire::decode_query_req(&frame.payload) {
                Ok(r) => r,
                Err(_) => {
                    shared.reply(Frame::new(
                        FrameKind::QueryResp,
                        corr,
                        wire::encode_query_resp_err(WireStatus::BadRequest),
                    ));
                    return;
                }
            };
            if let Some(h) = cluster {
                if requests.iter().any(|r| !h.owns(r.fid)) {
                    shared.reply(Frame::new(
                        FrameKind::QueryResp,
                        corr,
                        h.wrong_epoch_payload(),
                    ));
                    return;
                }
            }
            // Per-connection in-flight cap: shed at the wire before
            // admission ever sees the submission.
            let prev = shared.inflight.fetch_add(1, Ordering::SeqCst);
            if prev >= config.max_inflight_per_conn.max(1) {
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
                shared.stats.wire_shed.fetch_add(1, Ordering::Relaxed);
                shared.reply(Frame::new(
                    FrameKind::QueryResp,
                    corr,
                    wire::encode_query_resp_err(WireStatus::Overloaded),
                ));
                return;
            }
            shared.global_inflight.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(shared);
            service.query_many_async(requests, move |result| {
                let payload = match &result {
                    Ok(decisions) => wire::encode_query_resp_ok(decisions),
                    Err(QueryError::NotReady) => wire::encode_query_resp_err(WireStatus::NotReady),
                    Err(QueryError::Overloaded) => {
                        wire::encode_query_resp_err(WireStatus::Overloaded)
                    }
                    Err(QueryError::ServiceDown) => {
                        wire::encode_query_resp_err(WireStatus::ServiceDown)
                    }
                };
                // Order matters: queue the reply, then release the
                // in-flight slots — shutdown's drain gate must not pass
                // before this reply is queued on the writer.
                shared.reply(Frame::new(FrameKind::QueryResp, corr, payload));
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
                shared.global_inflight.fetch_sub(1, Ordering::SeqCst);
            });
        }
        FrameKind::MetricsReq => {
            let mut snap = service.metrics();
            // Transport gauges only the server knows; in-process
            // snapshots leave them zero.
            snap.net_connections_live = shared.stats.live_connections.load(Ordering::SeqCst);
            snap.net_writers_live = shared.stats.writers_live.load(Ordering::SeqCst);
            shared.reply(Frame::new(
                FrameKind::MetricsResp,
                corr,
                wire::encode_metrics_resp(&snap),
            ));
        }
        FrameKind::HealthReq => {
            let snap = service.metrics();
            shared.reply(Frame::new(
                FrameKind::HealthResp,
                corr,
                wire::encode_health_resp(&Health {
                    published_epoch: service.published_epoch(),
                    shards: snap.queue_depth.len() as u32,
                    draining: draining.load(Ordering::SeqCst),
                }),
            ));
        }
        FrameKind::RetrainReq => {
            if draining.load(Ordering::SeqCst) {
                shared.reply(Frame::new(
                    FrameKind::RetrainResp,
                    corr,
                    wire::encode_retrain_resp(WireStatus::Draining, 0),
                ));
                return;
            }
            // Blocking is fine here: this is the connection's own OS
            // thread, and retrains are rare administrative calls.
            let (status, epoch) = match service.retrain_now() {
                Ok(epoch) => (WireStatus::Ok, epoch),
                Err(geomancy_serve::TrainError::NotEnoughData) => (WireStatus::NotEnoughData, 0),
                Err(geomancy_serve::TrainError::TrainerDown) => (WireStatus::ServiceDown, 0),
            };
            shared.reply(Frame::new(
                FrameKind::RetrainResp,
                corr,
                wire::encode_retrain_resp(status, epoch),
            ));
        }
        FrameKind::ClusterInfoReq => {
            let payload = match cluster {
                Some(h) => h.cluster_info_payload(),
                None => vec![WireStatus::BadRequest as u8],
            };
            shared.reply(Frame::new(FrameKind::ClusterInfoResp, corr, payload));
        }
        FrameKind::ShipSegment => {
            let payload = match cluster {
                // Blocking is fine here: this is the connection's own OS
                // thread, and segment apply is rare, durable work.
                Some(h) => h.on_ship(&frame.payload),
                None => wire::encode_ship_ack(WireStatus::BadRequest, 0, 0, None),
            };
            shared.reply(Frame::new(FrameKind::ShipAck, corr, payload));
        }
        FrameKind::Heartbeat => {
            let payload = match cluster {
                Some(h) => h.on_heartbeat(&frame.payload),
                // A standalone server is trivially alive; answer with the
                // null node id so a probing cluster peer still gets an
                // echo.
                None => wire::encode_heartbeat(0, 0),
            };
            shared.reply(Frame::new(FrameKind::HeartbeatAck, corr, payload));
        }
        FrameKind::CatchUpReq => {
            let payload = match cluster {
                // Blocking is fine here: this is the connection's own OS
                // thread, and chunk export is rare, bounded disk work.
                Some(h) => h.on_catch_up(&frame.payload),
                None => wire::encode_catch_up_chunk(WireStatus::BadRequest, None, None),
            };
            shared.reply(Frame::new(FrameKind::CatchUpChunk, corr, payload));
        }
        FrameKind::CatchUpDone => {
            let payload = match cluster {
                Some(h) => h.on_catch_up_done(&frame.payload),
                None => wire::encode_catch_up_ack(WireStatus::BadRequest, 0, None),
            };
            shared.reply(Frame::new(FrameKind::CatchUpAck, corr, payload));
        }
        // A server receiving response kinds is a confused peer; answer
        // nothing and keep serving (the corr id means nothing to us).
        FrameKind::IngestResp
        | FrameKind::QueryResp
        | FrameKind::MetricsResp
        | FrameKind::HealthResp
        | FrameKind::RetrainResp
        | FrameKind::ClusterInfoResp
        | FrameKind::ShipAck
        | FrameKind::HeartbeatAck
        | FrameKind::CatchUpChunk
        | FrameKind::CatchUpAck => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}
