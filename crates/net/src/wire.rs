//! The Geomancy wire protocol: length-prefixed, versioned binary frames.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────
//!      0     4  magic          b"GEOM"
//!      4     1  version        currently 2
//!      5     1  kind           [`FrameKind`] discriminant
//!      6     8  correlation id u64 LE, echoed verbatim in the reply
//!     14     4  payload length u32 LE, bounded by the peer's max
//!     18     …  payload        kind-specific binary body
//! ```
//!
//! All integers are little-endian. Floats travel as IEEE-754 bit
//! patterns. Decoding is *total*: any truncated, corrupted, or
//! oversized input produces a typed [`DecodeError`] — decoders never
//! panic and the streaming [`FrameReader`] never blocks waiting for
//! bytes it can already prove will not parse.

use geomancy_serve::{Decision, MetricsSnapshot, PlacementRequest};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"GEOM";
/// Protocol version this build speaks. Version 2 appended the kernel
/// backend byte to the metrics response; version 3 appended the cold-store
/// block (pages, bytes, checkpoint lag/count/duration) at its end;
/// version 4 appended the trainer block (retrain records/micros,
/// warm-start and full-retrain counts) after the store block; version 5
/// appended the cluster block (node id) after the trainer block and
/// added the cluster frames (ship/heartbeat/cluster-info) plus the
/// [`WireStatus::WrongEpoch`] status carrying a fresh [`ClusterMap`];
/// version 6 added the catch-up frames (req/chunk/done/ack) for replica
/// backfill and appended an optional listener address to the heartbeat
/// payload so unknown rejoining nodes can be admitted to the map.
pub const VERSION: u8 = 6;
/// Oldest protocol version this build still decodes. Versions 2 and 3
/// differ only by absent trailing blocks, which decode as zeros.
pub const MIN_VERSION: u8 = 2;
/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 18;
/// Default cap on a single frame's payload (4 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 4 << 20;

/// Bytes one [`AccessRecord`] occupies on the wire.
pub const RECORD_WIRE_LEN: usize = 56;
/// Bytes one [`PlacementRequest`] occupies on the wire.
pub const REQUEST_WIRE_LEN: usize = 24;
/// Bytes one [`Decision`] occupies on the wire.
pub const DECISION_WIRE_LEN: usize = 36;

/// What kind of message a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Telemetry batch → server.
    IngestReq = 1,
    /// Ingest outcome ← server.
    IngestResp = 2,
    /// Batched placement query → server.
    QueryReq = 3,
    /// Placement decisions (or a shed status) ← server.
    QueryResp = 4,
    /// Metrics snapshot request → server.
    MetricsReq = 5,
    /// Metrics snapshot ← server.
    MetricsResp = 6,
    /// Liveness/readiness probe → server.
    HealthReq = 7,
    /// Probe answer ← server.
    HealthResp = 8,
    /// Synchronous retrain request → server.
    RetrainReq = 9,
    /// Retrain outcome ← server.
    RetrainResp = 10,
    /// Cluster map request → any node (version 5).
    ClusterInfoReq = 11,
    /// Cluster map ← node (version 5).
    ClusterInfoResp = 12,
    /// Sealed WAL segment shipped primary → follower (version 5).
    ShipSegment = 13,
    /// Segment durably applied ← follower (version 5).
    ShipAck = 14,
    /// Liveness beacon between cluster nodes (version 5).
    Heartbeat = 15,
    /// Heartbeat echo carrying the peer's epoch view (version 5).
    HeartbeatAck = 16,
    /// Bounded backfill request follower → primary (version 6).
    CatchUpReq = 17,
    /// One backfill chunk ← primary (version 6).
    CatchUpChunk = 18,
    /// Follower reports its new durable floor → primary (version 6).
    CatchUpDone = 19,
    /// Done acknowledgement ← primary (version 6).
    CatchUpAck = 20,
}

impl FrameKind {
    /// Decodes a kind byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownKind`] for bytes this version doesn't speak.
    pub fn from_u8(b: u8) -> Result<FrameKind, DecodeError> {
        Ok(match b {
            1 => FrameKind::IngestReq,
            2 => FrameKind::IngestResp,
            3 => FrameKind::QueryReq,
            4 => FrameKind::QueryResp,
            5 => FrameKind::MetricsReq,
            6 => FrameKind::MetricsResp,
            7 => FrameKind::HealthReq,
            8 => FrameKind::HealthResp,
            9 => FrameKind::RetrainReq,
            10 => FrameKind::RetrainResp,
            11 => FrameKind::ClusterInfoReq,
            12 => FrameKind::ClusterInfoResp,
            13 => FrameKind::ShipSegment,
            14 => FrameKind::ShipAck,
            15 => FrameKind::Heartbeat,
            16 => FrameKind::HeartbeatAck,
            17 => FrameKind::CatchUpReq,
            18 => FrameKind::CatchUpChunk,
            19 => FrameKind::CatchUpDone,
            20 => FrameKind::CatchUpAck,
            other => return Err(DecodeError::UnknownKind(other)),
        })
    }
}

/// Outcome code carried in every response payload. Overload and
/// backpressure are *statuses the peer can react to*, never silent
/// connection drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// Request served.
    Ok = 0,
    /// No model published yet — ingest and retrain first.
    NotReady = 1,
    /// Admission control shed the query; back off and retry.
    Overloaded = 2,
    /// The service behind the transport has shut down.
    ServiceDown = 3,
    /// An ingest shard's queue is full; back off and retry.
    Backpressure = 4,
    /// The request payload did not decode.
    BadRequest = 5,
    /// The request frame exceeded the server's payload cap.
    TooLarge = 6,
    /// The server is draining: finish in-flight work elsewhere.
    Draining = 7,
    /// The server hit an internal error serving this request.
    Internal = 8,
    /// Retrain refused: not enough telemetry yet.
    NotEnoughData = 9,
    /// The request routed on a stale [`ClusterMap`] epoch; the response
    /// payload carries the current map (version 5).
    WrongEpoch = 10,
}

impl WireStatus {
    /// Decodes a status byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownStatus`] for bytes this version doesn't speak.
    pub fn from_u8(b: u8) -> Result<WireStatus, DecodeError> {
        Ok(match b {
            0 => WireStatus::Ok,
            1 => WireStatus::NotReady,
            2 => WireStatus::Overloaded,
            3 => WireStatus::ServiceDown,
            4 => WireStatus::Backpressure,
            5 => WireStatus::BadRequest,
            6 => WireStatus::TooLarge,
            7 => WireStatus::Draining,
            8 => WireStatus::Internal,
            9 => WireStatus::NotEnoughData,
            10 => WireStatus::WrongEpoch,
            other => return Err(DecodeError::UnknownStatus(other)),
        })
    }

    /// Whether retrying the *same* connection after a short backoff can
    /// succeed: the server is alive and will recover (overload and
    /// backpressure are transient shedding).
    pub fn retry_same(self) -> bool {
        matches!(self, WireStatus::Overloaded | WireStatus::Backpressure)
    }

    /// Whether the request should *fail over to a different replica*
    /// instead: this node has stopped serving (draining or down) or no
    /// longer owns the shard, so retrying here is wasted backoff.
    pub fn retry_elsewhere(self) -> bool {
        matches!(
            self,
            WireStatus::Draining | WireStatus::ServiceDown | WireStatus::WrongEpoch
        )
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireStatus::Ok => "ok",
            WireStatus::NotReady => "model not ready",
            WireStatus::Overloaded => "overloaded (shed by admission control)",
            WireStatus::ServiceDown => "service down",
            WireStatus::Backpressure => "ingest backpressure",
            WireStatus::BadRequest => "bad request",
            WireStatus::TooLarge => "frame too large",
            WireStatus::Draining => "server draining",
            WireStatus::Internal => "internal server error",
            WireStatus::NotEnoughData => "not enough telemetry to retrain",
            WireStatus::WrongEpoch => "stale cluster epoch (refresh the map)",
        };
        f.write_str(s)
    }
}

/// Why a buffer failed to decode. Every variant is a *diagnosis* — the
/// decoders return these instead of panicking on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte names a protocol this build doesn't speak.
    UnsupportedVersion(u8),
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The status byte is not a known [`WireStatus`].
    UnknownStatus(u8),
    /// The declared payload length exceeds the configured cap.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// Cap it exceeded.
        max: usize,
    },
    /// The buffer ended before the structure it declared.
    Truncated,
    /// The payload decoded but left unconsumed bytes behind.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A payload field held an impossible value.
    BadPayload(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::UnknownStatus(s) => write!(f, "unknown status code {s}"),
            DecodeError::Oversized { declared, max } => {
                write!(f, "payload of {declared} bytes exceeds cap of {max}")
            }
            DecodeError::Truncated => f.write_str("buffer truncated mid-structure"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} unconsumed payload bytes")
            }
            DecodeError::BadPayload(what) => write!(f, "bad payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded frame: kind, correlation id, raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Correlation id — a reply echoes its request's id.
    pub corr_id: u64,
    /// Kind-specific binary payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, corr_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            corr_id,
            payload,
        }
    }

    /// Appends this frame's bytes to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes — the sender's
    /// bug, not the peer's.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            self.payload.len() <= u32::MAX as usize,
            "frame payload too large to express on the wire"
        );
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.corr_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// This frame's bytes as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }
}

/// Decodes one frame from the front of `bytes`, returning it and the
/// number of bytes consumed.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when `bytes` ends before the declared
/// frame does; the header errors ([`DecodeError::BadMagic`],
/// [`DecodeError::UnsupportedVersion`], [`DecodeError::UnknownKind`],
/// [`DecodeError::Oversized`]) as soon as the header disproves itself.
pub fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<(Frame, usize), DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let (frame_len, frame) = parse_header(bytes, max_payload)?;
    if bytes.len() < frame_len {
        return Err(DecodeError::Truncated);
    }
    let mut frame = frame;
    frame.payload = bytes[HEADER_LEN..frame_len].to_vec();
    Ok((frame, frame_len))
}

/// Validates a header already known to span `HEADER_LEN` bytes and
/// returns the total frame length plus a payload-less [`Frame`].
fn parse_header(bytes: &[u8], max_payload: usize) -> Result<(usize, Frame), DecodeError> {
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if !(MIN_VERSION..=VERSION).contains(&bytes[4]) {
        return Err(DecodeError::UnsupportedVersion(bytes[4]));
    }
    let kind = FrameKind::from_u8(bytes[5])?;
    let corr_id = u64::from_le_bytes(bytes[6..14].try_into().expect("8-byte slice"));
    let declared = u32::from_le_bytes(bytes[14..18].try_into().expect("4-byte slice")) as usize;
    if declared > max_payload {
        return Err(DecodeError::Oversized {
            declared,
            max: max_payload,
        });
    }
    Ok((
        HEADER_LEN + declared,
        Frame {
            kind,
            corr_id,
            payload: Vec::new(),
        },
    ))
}

/// Resumable streaming frame decoder.
///
/// Feed it whatever the socket produced — any split, including
/// mid-header — and pull complete frames out. State survives short
/// reads, so a blocking reader using a receive timeout as its poll tick
/// can resume exactly where it left off.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_payload: usize,
}

impl FrameReader {
    /// A reader enforcing `max_payload` on every frame it decodes.
    pub fn new(max_payload: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_payload,
        }
    }

    /// Appends raw socket bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, or `None` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`]s as soon as the buffered header disproves
    /// itself (bad magic, unknown version/kind, oversized declaration) —
    /// the reader does not wait for a payload it already knows is
    /// invalid. After an error the stream is unsynchronized; close it.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let (frame_len, mut frame) = parse_header(&self.buf, self.max_payload)?;
        if self.buf.len() < frame_len {
            return Ok(None);
        }
        frame.payload = self.buf[HEADER_LEN..frame_len].to_vec();
        self.buf.drain(..frame_len);
        Ok(Some(frame))
    }

    /// Whether a partial frame is sitting in the buffer — at EOF this
    /// means the peer died mid-frame.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

// ───────────────────────── payload cursor ─────────────────────────

/// Bounds-checked little-endian reader over a payload slice.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, p: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.p.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.b.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.b[self.p..end];
        self.p = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Declares the payload fully consumed.
    fn finish(&self) -> Result<(), DecodeError> {
        if self.p != self.b.len() {
            return Err(DecodeError::TrailingBytes {
                extra: self.b.len() - self.p,
            });
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Caps speculative `Vec::with_capacity` from wire-declared counts so a
/// corrupted count can't allocate gigabytes before the decode loop hits
/// [`DecodeError::Truncated`].
fn sane_cap(declared: u32) -> usize {
    (declared as usize).min(1 << 16)
}

// ───────────────────────── ingest codec ─────────────────────────

/// Encodes an ingest request payload: timestamp, then the records.
pub fn encode_ingest_req(timestamp_micros: u64, records: &[AccessRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + records.len() * RECORD_WIRE_LEN);
    put_u64(&mut out, timestamp_micros);
    put_u32(&mut out, records.len() as u32);
    for r in records {
        put_u64(&mut out, r.access_number);
        put_u64(&mut out, r.fid.0);
        put_u32(&mut out, r.fsid.0);
        put_u64(&mut out, r.rb);
        put_u64(&mut out, r.wb);
        put_u64(&mut out, r.ots);
        put_u16(&mut out, r.otms);
        put_u64(&mut out, r.cts);
        put_u16(&mut out, r.ctms);
    }
    out
}

/// Decodes an ingest request payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_ingest_req(payload: &[u8]) -> Result<(u64, Vec<AccessRecord>), DecodeError> {
    let mut c = Cur::new(payload);
    let ts = c.u64()?;
    let n = c.u32()?;
    let mut records = Vec::with_capacity(sane_cap(n));
    for _ in 0..n {
        records.push(AccessRecord {
            access_number: c.u64()?,
            fid: FileId(c.u64()?),
            fsid: DeviceId(c.u32()?),
            rb: c.u64()?,
            wb: c.u64()?,
            ots: c.u64()?,
            otms: c.u16()?,
            cts: c.u64()?,
            ctms: c.u16()?,
        });
    }
    c.finish()?;
    Ok((ts, records))
}

/// Encodes an ingest response: status plus the backpressured shard
/// index (0 unless the status is [`WireStatus::Backpressure`]).
pub fn encode_ingest_resp(status: WireStatus, shard: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(status as u8);
    put_u32(&mut out, shard);
    out
}

/// Decodes an ingest response.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_ingest_resp(payload: &[u8]) -> Result<(WireStatus, u32), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status == WireStatus::WrongEpoch {
        // Wrong-epoch replies carry the current ClusterMap instead of a
        // shard index; use [`decode_wrong_epoch`] to recover it.
        let _ = get_cluster_map(&mut c)?;
        c.finish()?;
        return Ok((status, 0));
    }
    let shard = c.u32()?;
    c.finish()?;
    Ok((status, shard))
}

// ───────────────────────── query codec ─────────────────────────

/// Encodes a batched placement query payload.
pub fn encode_query_req(requests: &[PlacementRequest]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + requests.len() * REQUEST_WIRE_LEN);
    put_u32(&mut out, requests.len() as u32);
    for r in requests {
        put_u64(&mut out, r.fid.0);
        put_u64(&mut out, r.read_bytes);
        put_u64(&mut out, r.write_bytes);
    }
    out
}

/// Decodes a batched placement query payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_query_req(payload: &[u8]) -> Result<Vec<PlacementRequest>, DecodeError> {
    let mut c = Cur::new(payload);
    let n = c.u32()?;
    let mut requests = Vec::with_capacity(sane_cap(n));
    for _ in 0..n {
        requests.push(PlacementRequest {
            fid: FileId(c.u64()?),
            read_bytes: c.u64()?,
            write_bytes: c.u64()?,
        });
    }
    c.finish()?;
    Ok(requests)
}

/// Encodes a successful query response carrying decisions.
pub fn encode_query_resp_ok(decisions: &[Decision]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + decisions.len() * DECISION_WIRE_LEN);
    out.push(WireStatus::Ok as u8);
    put_u32(&mut out, decisions.len() as u32);
    for d in decisions {
        put_u64(&mut out, d.fid.0);
        put_u32(&mut out, d.best.0);
        put_u64(&mut out, d.predicted_tp.to_bits());
        put_u64(&mut out, d.model_epoch);
        put_u32(&mut out, d.batch_requests);
        put_u32(&mut out, d.unique_rows);
    }
    out
}

/// Encodes a failed query response carrying only a status.
pub fn encode_query_resp_err(status: WireStatus) -> Vec<u8> {
    vec![status as u8]
}

/// Decodes a query response: `Ok` statuses carry decisions, every
/// other status stands alone.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_query_resp(payload: &[u8]) -> Result<(WireStatus, Vec<Decision>), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status != WireStatus::Ok {
        if status == WireStatus::WrongEpoch {
            // The fresh map rides behind the status byte; callers who
            // want it use [`decode_wrong_epoch`].
            let _ = get_cluster_map(&mut c)?;
        }
        c.finish()?;
        return Ok((status, Vec::new()));
    }
    let n = c.u32()?;
    let mut decisions = Vec::with_capacity(sane_cap(n));
    for _ in 0..n {
        decisions.push(Decision {
            fid: FileId(c.u64()?),
            best: DeviceId(c.u32()?),
            predicted_tp: c.f64()?,
            model_epoch: c.u64()?,
            batch_requests: c.u32()?,
            unique_rows: c.u32()?,
        });
    }
    c.finish()?;
    Ok((status, decisions))
}

// ───────────────────────── metrics codec ─────────────────────────

fn put_u64_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

fn get_u64_vec(c: &mut Cur<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = c.u32()?;
    let mut v = Vec::with_capacity(sane_cap(n));
    for _ in 0..n {
        v.push(c.u64()?);
    }
    Ok(v)
}

/// Encodes a metrics response: status byte, the fixed counters, then
/// the length-prefixed vectors.
pub fn encode_metrics_resp(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(WireStatus::Ok as u8);
    for v in [
        snap.ingested_records,
        snap.ingest_batches,
        snap.dropped_batches,
        snap.dropped_records,
        snap.decisions,
        snap.batched_decisions,
        snap.solo_decisions,
        snap.coalesced_decisions,
        snap.fused_rows,
        snap.model_swaps,
        snap.retrains,
        snap.queries_offered,
        snap.queries_admitted,
        snap.queries_shed,
        snap.pending_requests,
        snap.pending_peak,
        snap.latency_ewma_us,
        snap.engine_queue as u64,
        snap.net_connections_live,
        snap.net_writers_live,
    ] {
        put_u64(&mut out, v);
    }
    // Version 2: kernel backend byte after the fixed counters.
    out.push(match snap.kernel_backend.as_str() {
        "scalar" => 0,
        "avx2_fma" => 1,
        _ => 255,
    });
    let queue_depth: Vec<u64> = snap.queue_depth.iter().map(|&d| d as u64).collect();
    put_u64_vec(&mut out, &queue_depth);
    put_u64_vec(&mut out, &snap.pending_per_shard);
    put_u64_vec(&mut out, &snap.shard_shed);
    put_u64_vec(&mut out, &snap.latency_us);
    // Version 3: cold-store block at the payload's end, where a version-2
    // decoder simply never looks.
    for v in [
        snap.store_pages,
        snap.store_cold_bytes,
        snap.wal_pending_records,
        snap.checkpoints,
        snap.last_checkpoint_micros,
    ] {
        put_u64(&mut out, v);
    }
    // Version 4: trainer block after the store block — append-only, so
    // version-2 and version-3 decoders never look this far.
    for v in [
        snap.retrain_records,
        snap.retrain_micros,
        snap.warm_starts,
        snap.full_retrains,
    ] {
        put_u64(&mut out, v);
    }
    // Version 5: cluster block after the trainer block — append-only, so
    // version-2 through version-4 decoders never look this far.
    put_u64(&mut out, snap.node_id);
    out
}

/// Decodes a metrics response back into a [`MetricsSnapshot`].
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_metrics_resp(payload: &[u8]) -> Result<MetricsSnapshot, DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status != WireStatus::Ok {
        return Err(DecodeError::BadPayload(
            "metrics response with non-ok status",
        ));
    }
    let ingested_records = c.u64()?;
    let ingest_batches = c.u64()?;
    let dropped_batches = c.u64()?;
    let dropped_records = c.u64()?;
    let decisions = c.u64()?;
    let batched_decisions = c.u64()?;
    let solo_decisions = c.u64()?;
    let coalesced_decisions = c.u64()?;
    let fused_rows = c.u64()?;
    let model_swaps = c.u64()?;
    let retrains = c.u64()?;
    let queries_offered = c.u64()?;
    let queries_admitted = c.u64()?;
    let queries_shed = c.u64()?;
    let pending_requests = c.u64()?;
    let pending_peak = c.u64()?;
    let latency_ewma_us = c.u64()?;
    let engine_queue = c.u64()? as usize;
    let net_connections_live = c.u64()?;
    let net_writers_live = c.u64()?;
    let kernel_backend = match c.u8()? {
        0 => "scalar",
        1 => "avx2_fma",
        _ => "unknown",
    }
    .to_string();
    let queue_depth: Vec<usize> = get_u64_vec(&mut c)?
        .into_iter()
        .map(|d| d as usize)
        .collect();
    let pending_per_shard = get_u64_vec(&mut c)?;
    let shard_shed = get_u64_vec(&mut c)?;
    let latency_us = get_u64_vec(&mut c)?;
    // Version-3 store block; a version-2 peer ends here and the store
    // gauges decode as zeros (no store configured, or an old server).
    let (store_pages, store_cold_bytes, wal_pending_records, checkpoints, last_checkpoint_micros) =
        if c.p < c.b.len() {
            (c.u64()?, c.u64()?, c.u64()?, c.u64()?, c.u64()?)
        } else {
            (0, 0, 0, 0, 0)
        };
    // Version-4 trainer block; version-2 and version-3 peers end before
    // it and the trainer gauges decode as zeros.
    let (retrain_records, retrain_micros, warm_starts, full_retrains) = if c.p < c.b.len() {
        (c.u64()?, c.u64()?, c.u64()?, c.u64()?)
    } else {
        (0, 0, 0, 0)
    };
    // Version-5 cluster block; older peers end before it and the node id
    // decodes as zero (a single-node server).
    let node_id = if c.p < c.b.len() { c.u64()? } else { 0 };
    c.finish()?;
    Ok(MetricsSnapshot {
        ingested_records,
        ingest_batches,
        dropped_batches,
        dropped_records,
        queue_depth,
        decisions,
        batched_decisions,
        solo_decisions,
        coalesced_decisions,
        fused_rows,
        model_swaps,
        retrains,
        queries_offered,
        queries_admitted,
        queries_shed,
        pending_requests,
        pending_peak,
        pending_per_shard,
        shard_shed,
        latency_ewma_us,
        engine_queue,
        net_connections_live,
        net_writers_live,
        kernel_backend,
        latency_us,
        store_pages,
        store_cold_bytes,
        wal_pending_records,
        checkpoints,
        last_checkpoint_micros,
        retrain_records,
        retrain_micros,
        warm_starts,
        full_retrains,
        node_id,
    })
}

// ───────────────────────── health codec ─────────────────────────

/// What a health probe reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// Highest model epoch published so far (0 = not ready).
    pub published_epoch: u64,
    /// Ingest shard count.
    pub shards: u32,
    /// Whether the server is draining toward shutdown.
    pub draining: bool,
}

/// Encodes a health response.
pub fn encode_health_resp(h: &Health) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    out.push(if h.draining {
        WireStatus::Draining as u8
    } else {
        WireStatus::Ok as u8
    });
    put_u64(&mut out, h.published_epoch);
    put_u32(&mut out, h.shards);
    out.push(u8::from(h.draining));
    out
}

/// Decodes a health response.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_health_resp(payload: &[u8]) -> Result<Health, DecodeError> {
    let mut c = Cur::new(payload);
    let _status = WireStatus::from_u8(c.u8()?)?;
    let published_epoch = c.u64()?;
    let shards = c.u32()?;
    let draining = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::BadPayload("draining flag out of range")),
    };
    c.finish()?;
    Ok(Health {
        published_epoch,
        shards,
        draining,
    })
}

// ───────────────────────── retrain codec ─────────────────────────

/// Encodes a retrain response: status plus the published epoch (0 when
/// the retrain failed).
pub fn encode_retrain_resp(status: WireStatus, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(status as u8);
    put_u64(&mut out, epoch);
    out
}

/// Decodes a retrain response.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_retrain_resp(payload: &[u8]) -> Result<(WireStatus, u64), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    let epoch = c.u64()?;
    c.finish()?;
    Ok((status, epoch))
}

// ───────────────────────── cluster codec (v5) ─────────────────────────

/// One node's identity in a [`ClusterMap`]: a stable id and the address
/// its `geomancy-net` listener answers on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterNodeInfo {
    /// Stable node id, unique within the cluster.
    pub node_id: u64,
    /// `host:port` of the node's listener.
    pub addr: String,
}

/// Which node owns a shard and which nodes replicate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard index in `0..ClusterMap::shards`.
    pub shard: u32,
    /// Node id of the shard's primary (serves ingest and queries).
    pub primary: u64,
    /// Node ids receiving shipped WAL segments for this shard.
    pub replicas: Vec<u64>,
}

/// The versioned cluster topology every node and client routes by.
///
/// The `epoch` is bumped on every membership or ownership change
/// (promotion after failover); requests routed on an older epoch are
/// answered with [`WireStatus::WrongEpoch`] carrying the current map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Monotonic topology version; higher epoch always wins.
    pub epoch: u64,
    /// Global shard count (matches the service's `shard_of` modulus).
    pub shards: u32,
    /// Member nodes.
    pub nodes: Vec<ClusterNodeInfo>,
    /// Per-shard ownership, one entry per shard in shard order.
    pub assignments: Vec<ShardAssignment>,
}

impl ClusterMap {
    /// Node id of the primary serving `shard`, if assigned.
    pub fn primary_of(&self, shard: u32) -> Option<u64> {
        self.assignments
            .iter()
            .find(|a| a.shard == shard)
            .map(|a| a.primary)
    }

    /// Replica node ids for `shard` (empty when unassigned).
    pub fn replicas_of(&self, shard: u32) -> &[u64] {
        self.assignments
            .iter()
            .find(|a| a.shard == shard)
            .map_or(&[][..], |a| &a.replicas)
    }

    /// The listener address registered for `node_id`.
    pub fn addr_of(&self, node_id: u64) -> Option<&str> {
        self.nodes
            .iter()
            .find(|n| n.node_id == node_id)
            .map(|n| n.addr.as_str())
    }

    /// Shards `node_id` is currently primary for.
    pub fn shards_owned_by(&self, node_id: u64) -> Vec<u32> {
        self.assignments
            .iter()
            .filter(|a| a.primary == node_id)
            .map(|a| a.shard)
            .collect()
    }
}

fn put_cluster_map(out: &mut Vec<u8>, map: &ClusterMap) {
    put_u64(out, map.epoch);
    put_u32(out, map.shards);
    put_u32(out, map.nodes.len() as u32);
    for n in &map.nodes {
        put_u64(out, n.node_id);
        put_u16(out, n.addr.len() as u16);
        out.extend_from_slice(n.addr.as_bytes());
    }
    put_u32(out, map.assignments.len() as u32);
    for a in &map.assignments {
        put_u32(out, a.shard);
        put_u64(out, a.primary);
        put_u32(out, a.replicas.len() as u32);
        for &r in &a.replicas {
            put_u64(out, r);
        }
    }
}

fn get_cluster_map(c: &mut Cur<'_>) -> Result<ClusterMap, DecodeError> {
    let epoch = c.u64()?;
    let shards = c.u32()?;
    let n_nodes = c.u32()?;
    let mut nodes = Vec::with_capacity(sane_cap(n_nodes));
    for _ in 0..n_nodes {
        let node_id = c.u64()?;
        let len = c.u16()? as usize;
        let addr = std::str::from_utf8(c.take(len)?)
            .map_err(|_| DecodeError::BadPayload("node address is not utf-8"))?
            .to_string();
        nodes.push(ClusterNodeInfo { node_id, addr });
    }
    let n_assign = c.u32()?;
    let mut assignments = Vec::with_capacity(sane_cap(n_assign));
    for _ in 0..n_assign {
        let shard = c.u32()?;
        let primary = c.u64()?;
        let n_rep = c.u32()?;
        let mut replicas = Vec::with_capacity(sane_cap(n_rep));
        for _ in 0..n_rep {
            replicas.push(c.u64()?);
        }
        assignments.push(ShardAssignment {
            shard,
            primary,
            replicas,
        });
    }
    Ok(ClusterMap {
        epoch,
        shards,
        nodes,
        assignments,
    })
}

/// Encodes a [`ClusterMap`] as a standalone byte string (the same layout
/// it has inside cluster-info and wrong-epoch payloads).
pub fn encode_cluster_map(map: &ClusterMap) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_cluster_map(&mut out, map);
    out
}

/// Decodes a standalone [`ClusterMap`] byte string.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, bad utf-8, or trailing bytes.
pub fn decode_cluster_map(payload: &[u8]) -> Result<ClusterMap, DecodeError> {
    let mut c = Cur::new(payload);
    let map = get_cluster_map(&mut c)?;
    c.finish()?;
    Ok(map)
}

/// Encodes the response payload every cluster verb uses for a stale
/// epoch: the [`WireStatus::WrongEpoch`] byte followed by the current
/// map, so one round trip both rejects and re-routes.
pub fn encode_wrong_epoch(map: &ClusterMap) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(WireStatus::WrongEpoch as u8);
    put_cluster_map(&mut out, map);
    out
}

/// Recovers the fresh [`ClusterMap`] from a wrong-epoch response payload.
///
/// # Errors
///
/// [`DecodeError::BadPayload`] when the status byte is not
/// [`WireStatus::WrongEpoch`]; otherwise the usual truncation/trailing
/// diagnoses.
pub fn decode_wrong_epoch(payload: &[u8]) -> Result<ClusterMap, DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status != WireStatus::WrongEpoch {
        return Err(DecodeError::BadPayload(
            "wrong-epoch payload with a different status",
        ));
    }
    let map = get_cluster_map(&mut c)?;
    c.finish()?;
    Ok(map)
}

/// Encodes a cluster-info response: `Ok` status byte plus the map.
pub fn encode_cluster_info_resp(map: &ClusterMap) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(WireStatus::Ok as u8);
    put_cluster_map(&mut out, map);
    out
}

/// Decodes a cluster-info response.
///
/// # Errors
///
/// [`DecodeError::BadPayload`] on a non-ok status (cluster-info always
/// succeeds on a live node); otherwise truncation/trailing diagnoses.
pub fn decode_cluster_info_resp(payload: &[u8]) -> Result<ClusterMap, DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status != WireStatus::Ok {
        return Err(DecodeError::BadPayload(
            "cluster-info response with non-ok status",
        ));
    }
    let map = get_cluster_map(&mut c)?;
    c.finish()?;
    Ok(map)
}

/// One sealed WAL segment in flight from a primary to a follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentShip {
    /// Shipping node's id.
    pub from_node: u64,
    /// Shipping node's map epoch when it sealed the segment.
    pub epoch: u64,
    /// Shard the segment belongs to.
    pub shard: u32,
    /// Segment sequence number (the `seg-<seq>` suffix on disk).
    pub seq: u64,
    /// Verbatim segment file bytes.
    pub bytes: Vec<u8>,
}

/// Encodes a ship-segment request payload.
pub fn encode_ship_segment(ship: &SegmentShip) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + ship.bytes.len());
    put_u64(&mut out, ship.from_node);
    put_u64(&mut out, ship.epoch);
    put_u32(&mut out, ship.shard);
    put_u64(&mut out, ship.seq);
    put_u32(&mut out, ship.bytes.len() as u32);
    out.extend_from_slice(&ship.bytes);
    out
}

/// Decodes a ship-segment request payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_ship_segment(payload: &[u8]) -> Result<SegmentShip, DecodeError> {
    let mut c = Cur::new(payload);
    let from_node = c.u64()?;
    let epoch = c.u64()?;
    let shard = c.u32()?;
    let seq = c.u64()?;
    let len = c.u32()? as usize;
    let bytes = c.take(len)?.to_vec();
    c.finish()?;
    Ok(SegmentShip {
        from_node,
        epoch,
        shard,
        seq,
        bytes,
    })
}

/// Encodes a ship acknowledgement: status, shard, seq — plus the fresh
/// map when the status is [`WireStatus::WrongEpoch`].
pub fn encode_ship_ack(
    status: WireStatus,
    shard: u32,
    seq: u64,
    map: Option<&ClusterMap>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    out.push(status as u8);
    put_u32(&mut out, shard);
    put_u64(&mut out, seq);
    if status == WireStatus::WrongEpoch {
        if let Some(m) = map {
            put_cluster_map(&mut out, m);
        }
    }
    out
}

/// Decodes a ship acknowledgement.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
#[allow(clippy::type_complexity)]
pub fn decode_ship_ack(
    payload: &[u8],
) -> Result<(WireStatus, u32, u64, Option<ClusterMap>), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    let shard = c.u32()?;
    let seq = c.u64()?;
    let map = if status == WireStatus::WrongEpoch && c.p < c.b.len() {
        Some(get_cluster_map(&mut c)?)
    } else {
        None
    };
    c.finish()?;
    Ok((status, shard, seq, map))
}

/// Encodes a heartbeat (or heartbeat-ack) payload: the sender's node id
/// and its current map epoch.
pub fn encode_heartbeat(node_id: u64, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, node_id);
    put_u64(&mut out, epoch);
    out
}

/// Decodes a heartbeat (or heartbeat-ack) payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_heartbeat(payload: &[u8]) -> Result<(u64, u64), DecodeError> {
    let (node_id, epoch, _addr) = decode_heartbeat_addr(payload)?;
    Ok((node_id, epoch))
}

/// Encodes a heartbeat payload carrying the sender's listener address
/// (version 6) so a node missing from the receiver's map can be joined.
pub fn encode_heartbeat_addr(node_id: u64, epoch: u64, addr: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(18 + addr.len());
    put_u64(&mut out, node_id);
    put_u64(&mut out, epoch);
    put_u16(&mut out, addr.len() as u16);
    out.extend_from_slice(addr.as_bytes());
    out
}

/// Decodes a heartbeat payload with its optional version-6 address
/// tail. A version-5 peer's 16-byte payload decodes with `None`.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, bad utf-8, or trailing bytes.
pub fn decode_heartbeat_addr(payload: &[u8]) -> Result<(u64, u64, Option<String>), DecodeError> {
    let mut c = Cur::new(payload);
    let node_id = c.u64()?;
    let epoch = c.u64()?;
    // Version-6 address tail; a version-5 payload ends here.
    let addr = if c.p < c.b.len() {
        let len = c.u16()? as usize;
        Some(
            std::str::from_utf8(c.take(len)?)
                .map_err(|_| DecodeError::BadPayload("heartbeat address is not utf-8"))?
                .to_string(),
        )
    } else {
        None
    };
    c.finish()?;
    Ok((node_id, epoch, addr))
}

// ───────────────────────── catch-up codec (v6) ─────────────────────────

/// A follower's bounded backfill request for one shard.
///
/// `after_seq` is the follower's durable absorb floor in the primary's
/// WAL sequence space (0 when the follower's floor is from a different
/// origin node and therefore meaningless here); `after_ts` is the
/// follower's newest stored timestamp for the shard. `include_ties`
/// marks the first request of a round: the primary then exports records
/// at exactly `after_ts` too, and the follower deduplicates that tie
/// run against what it already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpReq {
    /// Requesting node's id.
    pub node_id: u64,
    /// Shard to backfill.
    pub shard: u32,
    /// Follower's absorb floor in the primary's sequence space.
    pub after_seq: u64,
    /// Follower's newest stored timestamp for the shard.
    pub after_ts: u64,
    /// Whether records at exactly `after_ts` should be included.
    pub include_ties: bool,
    /// Upper bound on records per chunk (soft: a chunk always ends on
    /// a timestamp boundary, so a tie run may exceed it).
    pub max_records: u32,
}

/// Encodes a catch-up request payload.
pub fn encode_catch_up_req(req: &CatchUpReq) -> Vec<u8> {
    let mut out = Vec::with_capacity(33);
    put_u64(&mut out, req.node_id);
    put_u32(&mut out, req.shard);
    put_u64(&mut out, req.after_seq);
    put_u64(&mut out, req.after_ts);
    out.push(u8::from(req.include_ties));
    put_u32(&mut out, req.max_records);
    out
}

/// Decodes a catch-up request payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_catch_up_req(payload: &[u8]) -> Result<CatchUpReq, DecodeError> {
    let mut c = Cur::new(payload);
    let node_id = c.u64()?;
    let shard = c.u32()?;
    let after_seq = c.u64()?;
    let after_ts = c.u64()?;
    let include_ties = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::BadPayload("include_ties flag out of range")),
    };
    let max_records = c.u32()?;
    c.finish()?;
    Ok(CatchUpReq {
        node_id,
        shard,
        after_seq,
        after_ts,
        include_ties,
        max_records,
    })
}

/// The data half of a catch-up chunk: either cold-store records (with
/// their stored timestamps) or one sealed WAL segment verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum CatchUpData {
    /// Timestamped records exported from the primary's cold store,
    /// sorted by `(timestamp, access_number)`.
    Cold(Vec<(u64, AccessRecord)>),
    /// One retained sealed segment, applied via the follower's
    /// exactly-once absorb path.
    Segment {
        /// Segment sequence number in the primary's WAL space.
        seq: u64,
        /// Verbatim segment file bytes.
        bytes: Vec<u8>,
    },
}

/// One backfill chunk from the primary.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchUpChunk {
    /// Shard this chunk belongs to.
    pub shard: u32,
    /// Whether the follower is caught up to the primary's durable
    /// state once this chunk is applied.
    pub done: bool,
    /// The primary's durable absorb floor for the shard, captured from
    /// the same snapshot the chunk was exported from. When `done`, the
    /// follower adopts it as its own floor.
    pub floor_seq: u64,
    /// The follower's next cold cursor after applying this chunk.
    pub next_ts: u64,
    /// The chunk body.
    pub data: CatchUpData,
}

/// Encodes a catch-up chunk response: status byte, then on `Ok` the
/// chunk body, or on [`WireStatus::WrongEpoch`] the fresh map.
pub fn encode_catch_up_chunk(
    status: WireStatus,
    chunk: Option<&CatchUpChunk>,
    map: Option<&ClusterMap>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(status as u8);
    if status == WireStatus::WrongEpoch {
        if let Some(m) = map {
            put_cluster_map(&mut out, m);
        }
        return out;
    }
    let Some(ch) = chunk else { return out };
    put_u32(&mut out, ch.shard);
    out.push(u8::from(ch.done));
    put_u64(&mut out, ch.floor_seq);
    put_u64(&mut out, ch.next_ts);
    match &ch.data {
        CatchUpData::Cold(records) => {
            out.push(0);
            put_u32(&mut out, records.len() as u32);
            for (ts, r) in records {
                put_u64(&mut out, *ts);
                put_u64(&mut out, r.access_number);
                put_u64(&mut out, r.fid.0);
                put_u32(&mut out, r.fsid.0);
                put_u64(&mut out, r.rb);
                put_u64(&mut out, r.wb);
                put_u64(&mut out, r.ots);
                put_u16(&mut out, r.otms);
                put_u64(&mut out, r.cts);
                put_u16(&mut out, r.ctms);
            }
        }
        CatchUpData::Segment { seq, bytes } => {
            out.push(1);
            put_u64(&mut out, *seq);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
    }
    out
}

/// Decodes a catch-up chunk response.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
#[allow(clippy::type_complexity)]
pub fn decode_catch_up_chunk(
    payload: &[u8],
) -> Result<(WireStatus, Option<CatchUpChunk>, Option<ClusterMap>), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    if status == WireStatus::WrongEpoch {
        let map = if c.p < c.b.len() {
            Some(get_cluster_map(&mut c)?)
        } else {
            None
        };
        c.finish()?;
        return Ok((status, None, map));
    }
    if status != WireStatus::Ok || c.p == c.b.len() {
        c.finish()?;
        return Ok((status, None, None));
    }
    let shard = c.u32()?;
    let done = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::BadPayload("done flag out of range")),
    };
    let floor_seq = c.u64()?;
    let next_ts = c.u64()?;
    let data = match c.u8()? {
        0 => {
            let n = c.u32()?;
            let mut records = Vec::with_capacity(sane_cap(n));
            for _ in 0..n {
                let ts = c.u64()?;
                records.push((
                    ts,
                    AccessRecord {
                        access_number: c.u64()?,
                        fid: FileId(c.u64()?),
                        fsid: DeviceId(c.u32()?),
                        rb: c.u64()?,
                        wb: c.u64()?,
                        ots: c.u64()?,
                        otms: c.u16()?,
                        cts: c.u64()?,
                        ctms: c.u16()?,
                    },
                ));
            }
            CatchUpData::Cold(records)
        }
        1 => {
            let seq = c.u64()?;
            let len = c.u32()? as usize;
            CatchUpData::Segment {
                seq,
                bytes: c.take(len)?.to_vec(),
            }
        }
        _ => return Err(DecodeError::BadPayload("catch-up mode out of range")),
    };
    c.finish()?;
    Ok((
        status,
        Some(CatchUpChunk {
            shard,
            done,
            floor_seq,
            next_ts,
            data,
        }),
        None,
    ))
}

/// A follower's report that its shard is durably caught up to `floor_seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpDone {
    /// Reporting node's id.
    pub node_id: u64,
    /// Shard the report covers.
    pub shard: u32,
    /// The follower's durable absorb floor in the primary's sequence
    /// space after the completed round.
    pub floor_seq: u64,
    /// The follower's newest stored timestamp for the shard.
    pub max_ts: u64,
}

/// Encodes a catch-up-done report payload.
pub fn encode_catch_up_done(done: &CatchUpDone) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    put_u64(&mut out, done.node_id);
    put_u32(&mut out, done.shard);
    put_u64(&mut out, done.floor_seq);
    put_u64(&mut out, done.max_ts);
    out
}

/// Decodes a catch-up-done report payload.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation or trailing bytes.
pub fn decode_catch_up_done(payload: &[u8]) -> Result<CatchUpDone, DecodeError> {
    let mut c = Cur::new(payload);
    let node_id = c.u64()?;
    let shard = c.u32()?;
    let floor_seq = c.u64()?;
    let max_ts = c.u64()?;
    c.finish()?;
    Ok(CatchUpDone {
        node_id,
        shard,
        floor_seq,
        max_ts,
    })
}

/// Encodes a catch-up-done acknowledgement: status and the primary's
/// epoch, plus the fresh map on [`WireStatus::WrongEpoch`].
pub fn encode_catch_up_ack(status: WireStatus, epoch: u64, map: Option<&ClusterMap>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(status as u8);
    put_u64(&mut out, epoch);
    if status == WireStatus::WrongEpoch {
        if let Some(m) = map {
            put_cluster_map(&mut out, m);
        }
    }
    out
}

/// Decodes a catch-up-done acknowledgement.
///
/// # Errors
///
/// Typed [`DecodeError`]s on truncation, unknown status, or trailing
/// bytes.
pub fn decode_catch_up_ack(
    payload: &[u8],
) -> Result<(WireStatus, u64, Option<ClusterMap>), DecodeError> {
    let mut c = Cur::new(payload);
    let status = WireStatus::from_u8(c.u8()?)?;
    let epoch = c.u64()?;
    let map = if status == WireStatus::WrongEpoch && c.p < c.b.len() {
        Some(get_cluster_map(&mut c)?)
    } else {
        None
    };
    c.finish()?;
    Ok((status, epoch, map))
}
