//! Connection-churn hardening: a thousand connect/query/disconnect
//! cycles against a live server must retire every writer actor, return
//! every transport gauge to its baseline, and keep the writer-slot slab
//! flat (slots are reused, not leaked). Plus a reconnect storm proving
//! the client pool replaces dead connections without leaking state tied
//! to the old ones.

use std::sync::Arc;
use std::time::{Duration, Instant};

use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig, NetServer, RetryConfig};
use geomancy_serve::{AdmissionConfig, PlacementRequest, PlacementService, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

const DEADLINE: Duration = Duration::from_secs(30);

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// A trained placement service, ready to answer queries immediately.
fn trained_service() -> Arc<PlacementService> {
    let svc = Arc::new(PlacementService::start(ServeConfig {
        shards: 2,
        queue_capacity: 64,
        batch_window_micros: 0,
        max_batch: 32,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        admission: AdmissionConfig::default(),
        ..ServeConfig::default()
    }));
    for i in 0..300u64 {
        svc.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    svc.retrain_now().unwrap();
    svc
}

fn query() -> PlacementRequest {
    PlacementRequest {
        fid: FileId(1),
        read_bytes: 1_000_000,
        write_bytes: 0,
    }
}

/// Polls the transport gauges until every connection and writer actor is
/// gone and the admission controller holds no pending work.
fn wait_for_baseline(server: &NetServer, svc: &PlacementService, what: &str) {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let m = svc.metrics();
        if server.live_connections() == 0
            && server.live_writer_actors() == 0
            && m.pending_requests == 0
            && m.pending_per_shard.iter().all(|&p| p == 0)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: gauges never returned to baseline \
             (connections={}, writers={}, pending={})",
            server.live_connections(),
            server.live_writer_actors(),
            m.pending_requests,
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// 1,000 connect/query/disconnect cycles, alternating a polite client
/// (full handshake, reads its reply) with a rude one (fires a query and
/// vanishes without reading). Afterwards: zero live connections, zero
/// live writer actors, zero pending admissions, every writer retired,
/// and a slab that stayed flat instead of growing with churn.
#[test]
fn thousand_cycle_churn_returns_gauges_to_baseline() {
    const CYCLES: usize = 1_000;
    let svc = trained_service();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&svc), NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    wait_for_baseline(&server, &svc, "pre-churn");
    let retired_before = server.retired_writers();

    let polite_config = ClientConfig {
        pool_size: 1,
        ..ClientConfig::default()
    };
    let req_payload = geomancy_net::wire::encode_query_req(&[query()]);
    for i in 0..CYCLES {
        // Odd cycles are polite, so the final cycle reads a reply: the
        // acceptor is sequential, so a served reply proves every earlier
        // connection was accepted and its writer spawned — the baseline
        // wait below can then never race with a not-yet-spawned writer.
        if i % 2 == 1 {
            let c = Client::connect(addr, polite_config.clone()).expect("connect");
            let ds = c.query_many(&[query()]).expect("live server answers");
            assert_eq!(ds.len(), 1);
            drop(c);
        } else {
            // Rude peer: one query on a raw socket, then gone. The reply
            // hits a dead socket; the writer must retire, not linger.
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
            let frame = geomancy_net::Frame::new(
                geomancy_net::FrameKind::QueryReq,
                i as u64,
                req_payload.clone(),
            );
            raw.write_all(&frame.encode()).expect("write frame");
            drop(raw);
        }
        // Churn must not accumulate: spot-check mid-soak that the slab
        // stays flat while connections come and go.
        if i % 250 == 249 {
            assert!(
                server.writer_slot_capacity() <= 64,
                "cycle {i}: writer slab ballooned to {}",
                server.writer_slot_capacity()
            );
        }
    }

    wait_for_baseline(&server, &svc, "post-churn");
    let retired = server.retired_writers() - retired_before;
    assert_eq!(
        retired, CYCLES as u64,
        "every churned connection must retire exactly one writer actor"
    );
    assert!(
        server.writer_slot_capacity() <= 64,
        "writer slab leaked slots under churn: {}",
        server.writer_slot_capacity()
    );

    // The server is still healthy after the storm.
    let c = Client::connect(addr, ClientConfig::default()).expect("connect");
    assert_eq!(c.health().expect("health").published_epoch, 1);
    drop(c);

    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// Reconnect storm: the server dies under a pooled client and comes back
/// on the same port. The pool must replace every dead connection on use
/// — full health restored, no permanently dead slots, and the pool never
/// grows or shrinks.
#[test]
fn reconnect_storm_restores_full_pool_health() {
    let svc = trained_service();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&svc), NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    let c = Client::connect(
        addr,
        ClientConfig {
            pool_size: 4,
            retry: RetryConfig {
                max_retries: 0,
                base_backoff_millis: 1,
            },
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    assert_eq!(c.pool_health(), (4, 4));
    c.query_many(&[query()]).expect("server A answers");

    // Kill the server; every pooled connection dies underneath the client.
    server.shutdown();
    let deadline = Instant::now() + DEADLINE;
    loop {
        // Dead connections surface as errors, marking pool slots dead.
        if c.query_many(&[query()]).is_err() && c.pool_health().0 == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool never noticed the server died: health {:?}",
            c.pool_health()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(c.pool_health(), (0, 4), "pool must keep its dead slots");

    // Same port, new server: the pool must heal itself lazily, slot by
    // slot, replacing (never resurrecting) each dead connection.
    let server =
        NetServer::start(addr, Arc::clone(&svc), NetConfig::default()).expect("rebind same port");
    let deadline = Instant::now() + DEADLINE;
    while c.pool_health().0 < 4 {
        let _ = c.query_many(&[query()]);
        assert!(
            Instant::now() < deadline,
            "pool never healed: health {:?}",
            c.pool_health()
        );
    }
    assert_eq!(c.pool_health(), (4, 4), "every slot replaced and live");
    // And the healed pool actually works end to end.
    for _ in 0..8 {
        let ds = c.query_many(&[query()]).expect("healed pool answers");
        assert_eq!(ds.len(), 1);
    }

    drop(c);
    wait_for_baseline(&server, &svc, "post-storm");
    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// Satellite regression for the `retryable()` split: a draining server
/// answers `Draining` and the client surfaces it *immediately* —
/// `Draining` is [`geomancy_net::WireStatus::retry_elsewhere`], so
/// `with_retry` must not burn its same-connection backoff ladder the
/// way it does for `Backpressure`/`Overloaded`. Pre-split, `Draining`
/// sat in the single retryable set and this test's latency bound blew
/// up by seconds.
#[test]
fn draining_server_fails_fast_not_retried_on_same_conn() {
    use geomancy_net::{NetError, WireStatus};

    let svc = trained_service();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&svc), NetConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    // Backoff tuned so even ONE same-connection retry would blow the
    // latency assertion below.
    let client = Client::connect(
        &addr,
        ClientConfig {
            retry: RetryConfig {
                max_retries: 6,
                base_backoff_millis: 400,
            },
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // Healthy path first: both verbs work before the drain begins.
    client.query_many(&[query()]).unwrap();
    client.ingest(0, &[rec(0, 1)]).unwrap();

    server.begin_drain();

    let t = Instant::now();
    let q = client.query_many(&[query()]);
    let i = client.ingest(1, &[rec(1, 1)]);
    let elapsed = t.elapsed();
    assert!(
        matches!(q, Err(NetError::Server(WireStatus::Draining))),
        "query during drain: {q:?}"
    );
    assert!(
        matches!(i, Err(NetError::Server(WireStatus::Draining))),
        "ingest during drain: {i:?}"
    );
    assert!(
        elapsed < Duration::from_millis(350),
        "draining replies burned same-connection retry backoff: {elapsed:?}"
    );

    // The other side of the split still holds: health (non-placement
    // traffic) answers during the drain and names it, so a prober can
    // tell "draining" apart from "dead" and steer clients elsewhere.
    let h = client.health().unwrap();
    assert!(h.draining, "health must advertise the drain");

    drop(client);
    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}
