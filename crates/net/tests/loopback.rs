//! End-to-end loopback tests: a real [`NetServer`] on 127.0.0.1, real
//! [`Client`]s, real frames — ingest, retrain, batched queries, metrics,
//! health, overload-as-a-status, and a client killed mid-stream.

use std::sync::Arc;
use std::time::{Duration, Instant};

use geomancy_core::drl::DrlConfig;
use geomancy_net::{Client, ClientConfig, NetConfig, NetError, NetServer, RetryConfig, WireStatus};
use geomancy_serve::{AdmissionConfig, PlacementRequest, PlacementService, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

fn service(admission: AdmissionConfig, batch_window_micros: u64) -> Arc<PlacementService> {
    Arc::new(PlacementService::start(ServeConfig {
        shards: 2,
        queue_capacity: 64,
        batch_window_micros,
        max_batch: 32,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        admission,
        ..ServeConfig::default()
    }))
}

fn start(svc: &Arc<PlacementService>) -> NetServer {
    NetServer::start("127.0.0.1:0", Arc::clone(svc), NetConfig::default()).expect("bind loopback")
}

fn client(server: &NetServer) -> Client {
    Client::connect(server.local_addr(), ClientConfig::default()).expect("connect")
}

/// The whole protocol surface over one live socket: health before and
/// after readiness, ingest, retrain, solo and batched queries, metrics.
#[test]
fn full_protocol_over_loopback() {
    let svc = service(AdmissionConfig::default(), 0);
    let server = start(&svc);
    let c = client(&server);

    // Not ready yet: health says epoch 0, queries answer NotReady.
    let h = c.health().unwrap();
    assert_eq!(h.published_epoch, 0);
    assert_eq!(h.shards, 2);
    assert!(!h.draining);
    match c.query(PlacementRequest {
        fid: FileId(0),
        read_bytes: 1,
        write_bytes: 0,
    }) {
        Err(NetError::Server(WireStatus::NotReady)) => {}
        other => panic!("expected NotReady, got {other:?}"),
    }

    // Retrain without data: NotEnoughData as a status, not a hangup.
    match c.retrain() {
        Err(NetError::Server(WireStatus::NotEnoughData)) => {}
        other => panic!("expected NotEnoughData, got {other:?}"),
    }

    // Ingest telemetry in batches, then retrain over the wire.
    for b in 0..10u64 {
        let records: Vec<AccessRecord> =
            (0..30).map(|i| rec(b * 30 + i, (b * 30 + i) % 4)).collect();
        c.ingest(b * 30_000_000, &records).unwrap();
    }
    let epoch = c.retrain().unwrap();
    assert_eq!(epoch, 1);

    // Solo and batched queries.
    let d = c
        .query(PlacementRequest {
            fid: FileId(1),
            read_bytes: 1_000_000,
            write_bytes: 0,
        })
        .unwrap();
    assert_eq!(d.model_epoch, 1);
    let batch: Vec<PlacementRequest> = (0..16)
        .map(|i| PlacementRequest {
            fid: FileId(i % 4),
            read_bytes: 1_000_000,
            write_bytes: 0,
        })
        .collect();
    let ds = c.query_many(&batch).unwrap();
    assert_eq!(ds.len(), 16);
    assert!(ds.iter().all(|d| d.model_epoch == 1));
    // Decisions come back in request order.
    for (d, q) in ds.iter().zip(&batch) {
        assert_eq!(d.fid, q.fid);
    }

    // The metrics snapshot round-trips coherently.
    let m = c.metrics().unwrap();
    assert_eq!(m.ingested_records, 300);
    assert_eq!(m.queries_offered, m.queries_admitted + m.queries_shed);
    assert_eq!(m.decisions, 17);
    assert_eq!(m.pending_per_shard.len(), 2);

    assert!(
        server
            .stats()
            .frames_in
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 15
    );
    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// Overload round-trips as a *wire status*: a zero watermark sheds every
/// query, the client sees `Server(Overloaded)` after its retries — and
/// the connection stays usable (health still answers on the same
/// sockets).
#[test]
fn overload_is_a_status_not_a_reset() {
    let svc = service(
        AdmissionConfig {
            max_pending_requests: Some(0),
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        0,
    );
    // Publish a model so overload is the only obstacle.
    for i in 0..300u64 {
        svc.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    svc.retrain_now().unwrap();

    let server = start(&svc);
    let c = Client::connect(
        server.local_addr(),
        ClientConfig {
            retry: RetryConfig {
                max_retries: 2,
                base_backoff_millis: 1,
            },
            ..ClientConfig::default()
        },
    )
    .expect("connect");

    for _ in 0..5 {
        match c.query(PlacementRequest {
            fid: FileId(0),
            read_bytes: 1_000_000,
            write_bytes: 0,
        }) {
            Err(NetError::Server(WireStatus::Overloaded)) => {}
            other => panic!("expected Overloaded status, got {other:?}"),
        }
    }
    // Same connections, still alive and serving.
    assert_eq!(c.health().unwrap().published_epoch, 1);
    let m = c.metrics().unwrap();
    assert!(m.queries_shed >= 5);

    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// Kill-mid-stream: a client vanishes with queries in flight (a long
/// batch window holds them open). The server must keep serving other
/// connections and release every orphaned reply path — the admission
/// controller's pending gauge returns to zero.
#[test]
fn killed_client_leaks_nothing_and_neighbors_survive() {
    let svc = service(
        AdmissionConfig {
            max_pending_requests: Some(1_000),
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        // A long batch window (200 ms) keeps submissions pending long
        // enough to yank the socket out from under them.
        200_000,
    );
    for i in 0..300u64 {
        svc.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    svc.retrain_now().unwrap();
    let server = start(&svc);

    // The doomed peer: a raw socket fires queries into the open batch
    // window and vanishes without ever reading a reply.
    {
        let payload = geomancy_net::wire::encode_query_req(&[PlacementRequest {
            fid: FileId(1),
            read_bytes: 1_000_000,
            write_bytes: 0,
        }]);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        use std::io::Write;
        for corr in 0..8u64 {
            let frame =
                geomancy_net::Frame::new(geomancy_net::FrameKind::QueryReq, corr, payload.clone());
            raw.write_all(&frame.encode()).unwrap();
        }
        raw.flush().unwrap();
        // Connection dropped with all 8 queries parked in the window.
        drop(raw);
    }

    // A healthy neighbor keeps getting answers the whole time.
    let healthy = client(&server);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut served = 0;
    while served < 5 && Instant::now() < deadline {
        let ds = healthy
            .query_many(&[PlacementRequest {
                fid: FileId(2),
                read_bytes: 1_000_000,
                write_bytes: 0,
            }])
            .expect("healthy client must keep being served");
        assert_eq!(ds.len(), 1);
        served += 1;
    }
    assert_eq!(served, 5, "healthy neighbor starved after a peer died");

    // The orphaned submissions completed into a dead writer; admission
    // accounting must still have been released.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = svc.metrics();
        if m.pending_requests == 0 && m.pending_per_shard.iter().all(|&p| p == 0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pending accounting leaked after client death: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// An oversized frame is answered with `TooLarge` before the connection
/// closes — the peer learns *why*, instead of seeing a bare reset.
#[test]
fn oversized_frame_gets_too_large_then_close() {
    let svc = service(AdmissionConfig::default(), 0);
    let server = NetServer::start(
        "127.0.0.1:0",
        Arc::clone(&svc),
        NetConfig {
            max_payload: 1024,
            ..NetConfig::default()
        },
    )
    .expect("bind");

    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let frame = geomancy_net::Frame::new(
        geomancy_net::FrameKind::QueryReq,
        5,
        vec![0u8; 4096], // over the 1 KiB cap
    );
    raw.write_all(&frame.encode()).unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap(); // server closes after replying
    let (reply, _) = geomancy_net::wire::decode_frame(&buf, 1 << 20).unwrap();
    let (status, _) = geomancy_net::wire::decode_query_resp(&reply.payload).unwrap();
    assert_eq!(status, WireStatus::TooLarge);

    server.shutdown();
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}

/// Graceful drain: shutdown with replies still queued flushes them —
/// clients in flight get answers or clean disconnects, never hangs.
#[test]
fn shutdown_drains_cleanly_under_traffic() {
    let svc = service(AdmissionConfig::default(), 0);
    for i in 0..300u64 {
        svc.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    svc.retrain_now().unwrap();
    let server = start(&svc);
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let worker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let c = Client::connect(addr, ClientConfig::default()).expect("connect");
            let mut answered = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                match c.query_many(&[PlacementRequest {
                    fid: FileId(1),
                    read_bytes: 1_000_000,
                    write_bytes: 0,
                }]) {
                    Ok(_) => answered += 1,
                    // Draining/down/disconnect are all clean ends.
                    Err(NetError::Server(WireStatus::Draining))
                    | Err(NetError::Server(WireStatus::ServiceDown))
                    | Err(NetError::Disconnected)
                    | Err(NetError::Io(_)) => break,
                    Err(e) => panic!("unclean shutdown error: {e}"),
                }
            }
            answered
        })
    };
    // Let the worker get some answers, then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let answered = worker.join().expect("client thread must exit cleanly");
    assert!(answered > 0, "client never got an answer before shutdown");
    Arc::try_unwrap(svc).expect("sole owner").shutdown();
}
