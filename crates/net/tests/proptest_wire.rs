//! Property tests of the wire protocol: every codec round-trips, the
//! streaming reader is split-agnostic, and hostile bytes — truncated,
//! corrupted, oversized — always produce a typed [`DecodeError`],
//! never a panic or a hang.

use geomancy_net::wire::{
    self, decode_frame, DecodeError, Frame, FrameKind, FrameReader, Health, WireStatus, HEADER_LEN,
};
use geomancy_serve::{Decision, MetricsSnapshot, PlacementRequest};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use proptest::prelude::*;

fn record(seed: (u64, u64, u32, u64, u64)) -> AccessRecord {
    let (n, fid, dev, rb, wb) = seed;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb,
        wb,
        ots: n,
        otms: (n % 1000) as u16,
        cts: n + 1,
        ctms: ((n + 7) % 1000) as u16,
    }
}

fn all_kinds() -> [FrameKind; 16] {
    [
        FrameKind::IngestReq,
        FrameKind::IngestResp,
        FrameKind::QueryReq,
        FrameKind::QueryResp,
        FrameKind::MetricsReq,
        FrameKind::MetricsResp,
        FrameKind::HealthReq,
        FrameKind::HealthResp,
        FrameKind::RetrainReq,
        FrameKind::RetrainResp,
        FrameKind::ClusterInfoReq,
        FrameKind::ClusterInfoResp,
        FrameKind::ShipSegment,
        FrameKind::ShipAck,
        FrameKind::Heartbeat,
        FrameKind::HeartbeatAck,
    ]
}

proptest! {
    #[test]
    fn frame_roundtrips(kind_ix in 0usize..16, corr in 0u64..u64::MAX,
                        payload in proptest::collection::vec(0u8..=255, 0..256)) {
        let frame = Frame::new(all_kinds()[kind_ix], corr, payload);
        let bytes = frame.encode();
        let (back, used) = decode_frame(&bytes, wire::DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// The streaming reader reassembles frames no matter how the bytes
    /// were split — including mid-header and mid-payload.
    #[test]
    fn frame_reader_is_split_agnostic(corr in 0u64..1_000_000,
                                      payload in proptest::collection::vec(0u8..=255, 0..200),
                                      split in 1usize..16) {
        let frames: Vec<Frame> = (0..3)
            .map(|i| Frame::new(all_kinds()[i % 16], corr + i as u64, payload.clone()))
            .collect();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut reader = FrameReader::new(wire::DEFAULT_MAX_PAYLOAD);
        let mut out = Vec::new();
        for chunk in bytes.chunks(split) {
            reader.push(chunk);
            while let Some(f) = reader.next_frame().unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert!(!reader.has_partial());
    }

    /// Any prefix of a valid frame decodes to `Truncated` (or waits for
    /// more bytes in the streaming reader) — never a panic.
    #[test]
    fn truncated_frames_yield_typed_errors(cut in 0usize..100,
                                           payload in proptest::collection::vec(0u8..=255, 1..80)) {
        let frame = Frame::new(FrameKind::QueryReq, 7, payload);
        let bytes = frame.encode();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let prefix = &bytes[..cut];
        prop_assert_eq!(
            decode_frame(prefix, wire::DEFAULT_MAX_PAYLOAD).unwrap_err(),
            DecodeError::Truncated
        );
        let mut reader = FrameReader::new(wire::DEFAULT_MAX_PAYLOAD);
        reader.push(prefix);
        // A partial frame is "not yet", never an error or a panic.
        prop_assert_eq!(reader.next_frame().unwrap(), None);
        prop_assert_eq!(reader.has_partial(), cut > 0);
    }

    /// Flipping any single byte of a frame either still decodes (the
    /// flip landed in the corr id or an opaque payload byte) or yields
    /// a typed error — never a panic.
    #[test]
    fn corrupted_frames_never_panic(flip in 0usize..200, bit in 0u8..8,
                                    payload in proptest::collection::vec(0u8..=255, 0..80)) {
        let frame = Frame::new(FrameKind::IngestResp, 99, payload);
        let mut bytes = frame.encode();
        let flip = flip % bytes.len();
        bytes[flip] ^= 1 << bit;
        let _ = decode_frame(&bytes, wire::DEFAULT_MAX_PAYLOAD);
        let mut reader = FrameReader::new(wire::DEFAULT_MAX_PAYLOAD);
        reader.push(&bytes);
        let _ = reader.next_frame();
    }

    #[test]
    fn ingest_codec_roundtrips(ts in 0u64..u64::MAX,
                               seeds in proptest::collection::vec(
                                   (0u64..1_000, 0u64..50, 0u32..4, 0u64..1_000_000, 0u64..1_000_000),
                                   0..40)) {
        let records: Vec<AccessRecord> = seeds.into_iter().map(record).collect();
        let payload = wire::encode_ingest_req(ts, &records);
        let (ts2, back) = wire::decode_ingest_req(&payload).unwrap();
        prop_assert_eq!(ts2, ts);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn query_codec_roundtrips(seeds in proptest::collection::vec(
            (0u64..100, 0u64..1_000_000, 0u64..1_000_000), 0..60)) {
        let requests: Vec<PlacementRequest> = seeds
            .into_iter()
            .map(|(fid, rb, wb)| PlacementRequest {
                fid: FileId(fid),
                read_bytes: rb,
                write_bytes: wb,
            })
            .collect();
        let payload = wire::encode_query_req(&requests);
        prop_assert_eq!(wire::decode_query_req(&payload).unwrap(), requests);
    }

    #[test]
    fn decision_codec_roundtrips(seeds in proptest::collection::vec(
            (0u64..100, 0u32..4, 0u64..50, 1u32..64, 1u32..64), 0..40)) {
        let decisions: Vec<Decision> = seeds
            .into_iter()
            .map(|(fid, dev, epoch, batch, rows)| Decision {
                fid: FileId(fid),
                best: DeviceId(dev),
                predicted_tp: fid as f64 * 1234.5,
                model_epoch: epoch,
                batch_requests: batch,
                unique_rows: rows,
            })
            .collect();
        let payload = wire::encode_query_resp_ok(&decisions);
        let (status, back) = wire::decode_query_resp(&payload).unwrap();
        prop_assert_eq!(status, WireStatus::Ok);
        prop_assert_eq!(back, decisions);
    }

    /// Truncating any payload codec's bytes yields a typed error.
    #[test]
    fn truncated_payloads_yield_typed_errors(cut in 0usize..500,
                                             seeds in proptest::collection::vec(
                                                 (0u64..100, 0u64..9_999, 0u32..4, 1u64..9_999, 0u64..9_999),
                                                 1..20)) {
        let records: Vec<AccessRecord> = seeds.into_iter().map(record).collect();
        let payload = wire::encode_ingest_req(5, &records);
        let cut = cut.min(payload.len().saturating_sub(1));
        prop_assert_eq!(
            wire::decode_ingest_req(&payload[..cut]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    /// Appending garbage to a payload yields `TrailingBytes`.
    #[test]
    fn trailing_bytes_are_detected(extra in 1usize..32,
                                   seeds in proptest::collection::vec(
                                       (0u64..100, 1u64..9_999, 0u64..9_999), 0..20)) {
        let requests: Vec<PlacementRequest> = seeds
            .into_iter()
            .map(|(fid, rb, wb)| PlacementRequest {
                fid: FileId(fid),
                read_bytes: rb,
                write_bytes: wb,
            })
            .collect();
        let mut payload = wire::encode_query_req(&requests);
        payload.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(
            wire::decode_query_req(&payload).unwrap_err(),
            DecodeError::TrailingBytes { extra }
        );
    }
}

/// A metrics snapshot with every field populated distinctly.
fn full_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        ingested_records: 1,
        ingest_batches: 2,
        dropped_batches: 3,
        dropped_records: 4,
        queue_depth: vec![5, 6, 7],
        decisions: 8,
        batched_decisions: 9,
        solo_decisions: 10,
        coalesced_decisions: 11,
        fused_rows: 12,
        model_swaps: 13,
        retrains: 14,
        queries_offered: 15,
        queries_admitted: 16,
        queries_shed: 17,
        pending_requests: 18,
        pending_peak: 19,
        pending_per_shard: vec![20, 21, 22],
        shard_shed: vec![23, 24, 25],
        latency_ewma_us: 26,
        engine_queue: 27,
        net_connections_live: 32,
        net_writers_live: 33,
        kernel_backend: "avx2_fma".to_string(),
        latency_us: vec![28, 29, 30, 31],
        store_pages: 34,
        store_cold_bytes: 35,
        wal_pending_records: 36,
        checkpoints: 37,
        last_checkpoint_micros: 38,
        retrain_records: 39,
        retrain_micros: 40,
        warm_starts: 41,
        full_retrains: 42,
        node_id: 43,
    }
}

#[test]
fn metrics_codec_roundtrips_every_field() {
    let snap = full_snapshot();
    let payload = wire::encode_metrics_resp(&snap);
    let back = wire::decode_metrics_resp(&payload).unwrap();
    // Field-by-field: a silently dropped field would still "round-trip"
    // under a buggy symmetric codec, but can't survive this.
    assert_eq!(back.ingested_records, 1);
    assert_eq!(back.queue_depth, vec![5, 6, 7]);
    assert_eq!(back.pending_per_shard, vec![20, 21, 22]);
    assert_eq!(back.shard_shed, vec![23, 24, 25]);
    assert_eq!(back.latency_us, vec![28, 29, 30, 31]);
    assert_eq!(back.engine_queue, 27);
    assert_eq!(back.latency_ewma_us, 26);
    assert_eq!(back.queries_offered, 15);
    assert_eq!(back.queries_admitted, 16);
    assert_eq!(back.queries_shed, 17);
    assert_eq!(back.pending_requests, 18);
    assert_eq!(back.pending_peak, 19);
    assert_eq!(back.net_connections_live, 32);
    assert_eq!(back.net_writers_live, 33);
    assert_eq!(back.kernel_backend, "avx2_fma");
    assert_eq!(back.store_pages, 34);
    assert_eq!(back.store_cold_bytes, 35);
    assert_eq!(back.wal_pending_records, 36);
    assert_eq!(back.checkpoints, 37);
    assert_eq!(back.last_checkpoint_micros, 38);
    assert_eq!(back.retrain_records, 39);
    assert_eq!(back.retrain_micros, 40);
    assert_eq!(back.warm_starts, 41);
    assert_eq!(back.full_retrains, 42);
    assert_eq!(back.node_id, 43);

    // An unrecognized backend byte decodes as "unknown", not an error.
    let mut snap = full_snapshot();
    snap.kernel_backend = "future_backend".to_string();
    let back = wire::decode_metrics_resp(&wire::encode_metrics_resp(&snap)).unwrap();
    assert_eq!(back.kernel_backend, "unknown");
}

/// Old-peer compatibility: version-2 (no store/trainer/node blocks),
/// version-3 (store block only), and version-4 (store + trainer, no
/// node id) payloads all decode with the missing trailing gauges
/// zeroed, and frames stamped with the old version byte still parse.
#[test]
fn version_2_metrics_payload_decodes_with_zero_store_gauges() {
    let payload = wire::encode_metrics_resp(&full_snapshot());
    // A version-2 peer's payload is exactly ours minus the 40-byte store
    // block, the 32-byte trainer block, and the 8-byte node-id block.
    let v2_payload = &payload[..payload.len() - 80];
    let back = wire::decode_metrics_resp(v2_payload).unwrap();
    assert_eq!(back.latency_us, vec![28, 29, 30, 31]);
    assert_eq!(back.kernel_backend, "avx2_fma");
    assert_eq!(back.store_pages, 0);
    assert_eq!(back.store_cold_bytes, 0);
    assert_eq!(back.wal_pending_records, 0);
    assert_eq!(back.checkpoints, 0);
    assert_eq!(back.last_checkpoint_micros, 0);
    assert_eq!(back.retrain_records, 0);
    assert_eq!(back.warm_starts, 0);
    assert_eq!(back.node_id, 0);

    // A version-3 peer's payload stops after the store block: the store
    // gauges survive, the trainer gauges and node id decode as zeros.
    let v3_payload = &payload[..payload.len() - 40];
    let back = wire::decode_metrics_resp(v3_payload).unwrap();
    assert_eq!(back.store_pages, 34);
    assert_eq!(back.last_checkpoint_micros, 38);
    assert_eq!(back.retrain_records, 0);
    assert_eq!(back.retrain_micros, 0);
    assert_eq!(back.warm_starts, 0);
    assert_eq!(back.full_retrains, 0);
    assert_eq!(back.node_id, 0);

    // A version-4 peer's payload stops after the trainer block: only
    // the node id is zeroed.
    let v4_payload = &payload[..payload.len() - 8];
    let back = wire::decode_metrics_resp(v4_payload).unwrap();
    assert_eq!(back.retrain_records, 39);
    assert_eq!(back.full_retrains, 42);
    assert_eq!(back.node_id, 0);

    // A partial trailing block is corruption, not an old peer.
    let truncated_tail = &payload[..payload.len() - 4];
    assert_eq!(
        wire::decode_metrics_resp(truncated_tail).unwrap_err(),
        DecodeError::Truncated
    );

    // Frames from a version-2 peer (one version byte back) still decode.
    let mut v2_frame = Frame::new(FrameKind::MetricsReq, 77, Vec::new()).encode();
    v2_frame[4] = 2;
    let (frame, _) = decode_frame(&v2_frame, 1024).unwrap();
    assert_eq!(frame.kind, FrameKind::MetricsReq);
    assert_eq!(frame.corr_id, 77);
    // Anything older than MIN_VERSION stays rejected.
    v2_frame[4] = 1;
    assert_eq!(
        decode_frame(&v2_frame, 1024).unwrap_err(),
        DecodeError::UnsupportedVersion(1)
    );
}

#[test]
fn health_and_retrain_codecs_roundtrip() {
    for draining in [false, true] {
        let h = Health {
            published_epoch: 42,
            shards: 4,
            draining,
        };
        let back = wire::decode_health_resp(&wire::encode_health_resp(&h)).unwrap();
        assert_eq!(back, h);
    }
    for status in [
        WireStatus::Ok,
        WireStatus::NotEnoughData,
        WireStatus::ServiceDown,
    ] {
        let payload = wire::encode_retrain_resp(status, 7);
        assert_eq!(wire::decode_retrain_resp(&payload).unwrap(), (status, 7));
    }
}

/// A hand-built corpus of hostile frames — each byte pattern names the
/// exact typed error it must produce.
#[test]
fn hostile_frame_corpus_yields_exact_errors() {
    let good = Frame::new(FrameKind::HealthReq, 1, Vec::new()).encode();

    // Wrong magic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert_eq!(
        decode_frame(&bad_magic, 1024).unwrap_err(),
        DecodeError::BadMagic(*b"XEOM")
    );

    // Future protocol version.
    let mut bad_version = good.clone();
    bad_version[4] = 9;
    assert_eq!(
        decode_frame(&bad_version, 1024).unwrap_err(),
        DecodeError::UnsupportedVersion(9)
    );

    // Unknown kind byte.
    let mut bad_kind = good.clone();
    bad_kind[5] = 200;
    assert_eq!(
        decode_frame(&bad_kind, 1024).unwrap_err(),
        DecodeError::UnknownKind(200)
    );

    // Declared payload over the cap: rejected from the header alone —
    // the reader must not wait for (or buffer) the oversized body.
    let huge = Frame::new(FrameKind::QueryReq, 2, vec![0u8; 64]).encode();
    let mut reader = FrameReader::new(16);
    reader.push(&huge[..HEADER_LEN]);
    assert_eq!(
        reader.next_frame().unwrap_err(),
        DecodeError::Oversized {
            declared: 64,
            max: 16
        }
    );

    // Unknown status byte inside a response payload.
    assert_eq!(
        wire::decode_ingest_resp(&[250, 0, 0, 0, 0]).unwrap_err(),
        DecodeError::UnknownStatus(250)
    );

    // Draining flag out of range.
    let mut health = wire::encode_health_resp(&Health {
        published_epoch: 1,
        shards: 1,
        draining: false,
    });
    *health.last_mut().unwrap() = 7;
    assert_eq!(
        wire::decode_health_resp(&health).unwrap_err(),
        DecodeError::BadPayload("draining flag out of range")
    );

    // Empty payloads where structure is required.
    assert_eq!(
        wire::decode_query_resp(&[]).unwrap_err(),
        DecodeError::Truncated
    );
    assert_eq!(
        wire::decode_metrics_resp(&[]).unwrap_err(),
        DecodeError::Truncated
    );
}

/// A corrupted count field cannot make the decoder allocate the
/// declared size or hang — it hits `Truncated` as soon as the bytes
/// run out.
#[test]
fn corrupted_count_fields_fail_fast() {
    let mut payload = wire::encode_query_req(&[PlacementRequest {
        fid: FileId(1),
        read_bytes: 2,
        write_bytes: 3,
    }]);
    payload[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        wire::decode_query_req(&payload).unwrap_err(),
        DecodeError::Truncated
    );
    let mut ingest = wire::encode_ingest_req(9, &[]);
    ingest[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        wire::decode_ingest_req(&ingest).unwrap_err(),
        DecodeError::Truncated
    );
}

// ---- cluster codecs (protocol v5) ------------------------------------

use geomancy_net::wire::SegmentShip;
use geomancy_net::{ClusterMap, ClusterNodeInfo, ShardAssignment};

fn sample_map(epoch: u64, nodes: usize, shards: u32) -> ClusterMap {
    let nodes: Vec<ClusterNodeInfo> = (0..nodes as u64)
        .map(|i| ClusterNodeInfo {
            node_id: i + 1,
            addr: format!("10.0.0.{}:{}", i + 1, 7000 + i),
        })
        .collect();
    let n = nodes.len().max(1);
    let assignments = (0..shards)
        .map(|shard| ShardAssignment {
            shard,
            primary: nodes[shard as usize % n].node_id,
            replicas: vec![nodes[(shard as usize + 1) % n].node_id],
        })
        .collect();
    ClusterMap {
        epoch,
        shards,
        nodes,
        assignments,
    }
}

proptest! {
    /// The cluster-map codec round-trips across sizes, both bare and
    /// wrapped in the WrongEpoch and ClusterInfo envelopes.
    #[test]
    fn cluster_map_codec_roundtrips(epoch in 0u64..u64::MAX, nodes in 1usize..8,
                                    shards in 1u32..32) {
        let map = sample_map(epoch, nodes, shards);
        let bare = wire::encode_cluster_map(&map);
        prop_assert_eq!(&wire::decode_cluster_map(&bare).unwrap(), &map);
        let we = wire::encode_wrong_epoch(&map);
        prop_assert_eq!(&wire::decode_wrong_epoch(&we).unwrap(), &map);
        let info = wire::encode_cluster_info_resp(&map);
        prop_assert_eq!(&wire::decode_cluster_info_resp(&info).unwrap(), &map);
    }

    /// Truncating a cluster-map payload anywhere yields a typed error.
    #[test]
    fn truncated_cluster_map_yields_typed_errors(cut in 0usize..300,
                                                 nodes in 1usize..6,
                                                 shards in 1u32..16) {
        let payload = wire::encode_cluster_map(&sample_map(3, nodes, shards));
        let cut = cut.min(payload.len().saturating_sub(1));
        prop_assert!(wire::decode_cluster_map(&payload[..cut]).is_err());
    }

    /// The segment-ship codec round-trips with arbitrary segment bytes.
    #[test]
    fn ship_segment_codec_roundtrips(from in 1u64..100, epoch in 1u64..1_000,
                                     shard in 0u32..64, seq in 1u64..10_000,
                                     bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let ship = SegmentShip { from_node: from, epoch, shard, seq, bytes };
        let payload = wire::encode_ship_segment(&ship);
        prop_assert_eq!(&wire::decode_ship_segment(&payload).unwrap(), &ship);
    }

    /// Heartbeats round-trip.
    #[test]
    fn heartbeat_codec_roundtrips(node in 0u64..u64::MAX, epoch in 0u64..u64::MAX) {
        let payload = wire::encode_heartbeat(node, epoch);
        prop_assert_eq!(wire::decode_heartbeat(&payload).unwrap(), (node, epoch));
    }
}

/// Ship acks round-trip in both shapes: plain, and `WrongEpoch`
/// carrying the current map.
#[test]
fn ship_ack_codec_roundtrips_both_shapes() {
    let payload = wire::encode_ship_ack(WireStatus::Ok, 3, 17, None);
    let (status, shard, seq, map) = wire::decode_ship_ack(&payload).unwrap();
    assert_eq!((status, shard, seq), (WireStatus::Ok, 3, 17));
    assert!(map.is_none());

    let current = sample_map(9, 3, 8);
    let payload = wire::encode_ship_ack(WireStatus::WrongEpoch, 3, 17, Some(&current));
    let (status, shard, seq, map) = wire::decode_ship_ack(&payload).unwrap();
    assert_eq!((status, shard, seq), (WireStatus::WrongEpoch, 3, 17));
    assert_eq!(map.unwrap(), current);
}

/// Hostile cluster payloads: corrupted counts, garbage, and empty
/// buffers produce typed errors, never panics or huge allocations.
#[test]
fn hostile_cluster_payloads_yield_typed_errors() {
    assert!(wire::decode_cluster_map(&[]).is_err());
    assert!(wire::decode_wrong_epoch(&[]).is_err());
    assert!(wire::decode_ship_segment(&[]).is_err());
    assert!(wire::decode_ship_ack(&[]).is_err());
    assert!(wire::decode_heartbeat(&[]).is_err());

    // A node count of u32::MAX cannot make the decoder allocate: it
    // fails fast when the bytes run out.
    let mut payload = wire::encode_cluster_map(&sample_map(1, 2, 4));
    payload[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(wire::decode_cluster_map(&payload).is_err());

    // A WrongEpoch ingest reply whose map is garbage is a protocol
    // error, not a panic.
    let garbage = [WireStatus::WrongEpoch as u8, 0xFF, 0xFF];
    assert!(wire::decode_wrong_epoch(&garbage).is_err());
}

/// The retry-policy split (the Draining regression): `Draining` must
/// fail over to another replica, never burn backoff retrying the same
/// connection; `Overloaded`/`Backpressure` stay same-connection
/// retryable; `WrongEpoch` re-routes.
#[test]
fn retry_policy_split_routes_draining_elsewhere() {
    // Same-connection retries: transient shedding only.
    assert!(WireStatus::Overloaded.retry_same());
    assert!(WireStatus::Backpressure.retry_same());
    assert!(!WireStatus::Draining.retry_same());
    assert!(!WireStatus::ServiceDown.retry_same());
    assert!(!WireStatus::WrongEpoch.retry_same());

    // Fail-over statuses: the node has stopped serving or lost the shard.
    assert!(WireStatus::Draining.retry_elsewhere());
    assert!(WireStatus::ServiceDown.retry_elsewhere());
    assert!(WireStatus::WrongEpoch.retry_elsewhere());
    assert!(!WireStatus::Overloaded.retry_elsewhere());
    assert!(!WireStatus::Backpressure.retry_elsewhere());
    assert!(!WireStatus::Ok.retry_elsewhere());

    // No status is both: the policies partition the retryable space.
    for b in 0u8..=10 {
        let s = WireStatus::from_u8(b).unwrap();
        assert!(
            !(s.retry_same() && s.retry_elsewhere()),
            "{s:?} is both same-retryable and fail-over"
        );
    }
}

// ---- catch-up codecs (protocol v6) ------------------------------------

use geomancy_net::wire::{CatchUpChunk, CatchUpData, CatchUpDone, CatchUpReq};

proptest! {
    /// Catch-up requests round-trip.
    #[test]
    fn catch_up_req_codec_roundtrips(node in 1u64..100, shard in 0u32..64,
                                     seq in 0u64..10_000, ts in 0u64..u64::MAX,
                                     ties in proptest::bool::ANY, max in 1u32..100_000) {
        let req = CatchUpReq {
            node_id: node,
            shard,
            after_seq: seq,
            after_ts: ts,
            include_ties: ties,
            max_records: max,
        };
        let payload = wire::encode_catch_up_req(&req);
        prop_assert_eq!(wire::decode_catch_up_req(&payload).unwrap(), req);
    }

    /// Cold-record chunks round-trip with their timestamps.
    #[test]
    fn catch_up_cold_chunk_roundtrips(shard in 0u32..8, done in proptest::bool::ANY,
                                      floor in 0u64..1_000, next in 0u64..u64::MAX,
                                      seeds in proptest::collection::vec(
                                          (0u64..1_000, 0u64..50, 0u32..4, 0u64..9_999, 0u64..9_999),
                                          0..30)) {
        let records: Vec<(u64, AccessRecord)> = seeds
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64 * 1_000, record(s)))
            .collect();
        let chunk = CatchUpChunk {
            shard,
            done,
            floor_seq: floor,
            next_ts: next,
            data: CatchUpData::Cold(records),
        };
        let payload = wire::encode_catch_up_chunk(WireStatus::Ok, Some(&chunk), None);
        let (status, back, map) = wire::decode_catch_up_chunk(&payload).unwrap();
        prop_assert_eq!(status, WireStatus::Ok);
        prop_assert_eq!(back.unwrap(), chunk);
        prop_assert!(map.is_none());
    }

    /// Segment chunks round-trip with arbitrary bytes.
    #[test]
    fn catch_up_segment_chunk_roundtrips(shard in 0u32..8, seq in 1u64..10_000,
                                         bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let chunk = CatchUpChunk {
            shard,
            done: false,
            floor_seq: seq,
            next_ts: 0,
            data: CatchUpData::Segment { seq, bytes },
        };
        let payload = wire::encode_catch_up_chunk(WireStatus::Ok, Some(&chunk), None);
        let (_, back, _) = wire::decode_catch_up_chunk(&payload).unwrap();
        prop_assert_eq!(back.unwrap(), chunk);
    }

    /// Done reports and their acks round-trip.
    #[test]
    fn catch_up_done_codec_roundtrips(node in 1u64..100, shard in 0u32..64,
                                      floor in 0u64..10_000, ts in 0u64..u64::MAX,
                                      epoch in 1u64..1_000) {
        let done = CatchUpDone { node_id: node, shard, floor_seq: floor, max_ts: ts };
        let payload = wire::encode_catch_up_done(&done);
        prop_assert_eq!(wire::decode_catch_up_done(&payload).unwrap(), done);

        let ack = wire::encode_catch_up_ack(WireStatus::Ok, epoch, None);
        let (status, e, map) = wire::decode_catch_up_ack(&ack).unwrap();
        prop_assert_eq!((status, e), (WireStatus::Ok, epoch));
        prop_assert!(map.is_none());
    }

    /// The version-6 heartbeat address tail round-trips, and a bare
    /// version-5 heartbeat payload still decodes (with no address).
    #[test]
    fn heartbeat_addr_codec_roundtrips(node in 0u64..u64::MAX, epoch in 0u64..u64::MAX) {
        let addr = format!("10.1.2.3:{}", 7000 + (node % 1000));
        let payload = wire::encode_heartbeat_addr(node, epoch, &addr);
        prop_assert_eq!(
            wire::decode_heartbeat_addr(&payload).unwrap(),
            (node, epoch, Some(addr))
        );
        // The plain decoder tolerates the tail; the v5 payload decodes
        // addr-less through the v6 decoder.
        prop_assert_eq!(wire::decode_heartbeat(&payload).unwrap(), (node, epoch));
        let v5 = wire::encode_heartbeat(node, epoch);
        prop_assert_eq!(wire::decode_heartbeat_addr(&v5).unwrap(), (node, epoch, None));
    }
}

/// Catch-up chunk error shapes: WrongEpoch carries a decodable map,
/// bare statuses decode chunk-less, and truncation is typed.
#[test]
fn catch_up_chunk_error_shapes_decode() {
    let current = sample_map(4, 3, 8);
    let payload = wire::encode_catch_up_chunk(WireStatus::WrongEpoch, None, Some(&current));
    let (status, chunk, map) = wire::decode_catch_up_chunk(&payload).unwrap();
    assert_eq!(status, WireStatus::WrongEpoch);
    assert!(chunk.is_none());
    assert_eq!(map.unwrap(), current);

    for s in [WireStatus::Backpressure, WireStatus::Internal] {
        let payload = wire::encode_catch_up_chunk(s, None, None);
        let (status, chunk, map) = wire::decode_catch_up_chunk(&payload).unwrap();
        assert_eq!(status, s);
        assert!(chunk.is_none() && map.is_none());
    }

    let ack = wire::encode_catch_up_ack(WireStatus::WrongEpoch, 4, Some(&current));
    let (status, epoch, map) = wire::decode_catch_up_ack(&ack).unwrap();
    assert_eq!((status, epoch), (WireStatus::WrongEpoch, 4));
    assert_eq!(map.unwrap(), current);

    assert!(wire::decode_catch_up_req(&[]).is_err());
    assert!(wire::decode_catch_up_chunk(&[]).is_err());
    assert!(wire::decode_catch_up_done(&[]).is_err());
    assert!(wire::decode_catch_up_ack(&[]).is_err());

    // A corrupted record count fails fast, it cannot allocate.
    let chunk = CatchUpChunk {
        shard: 0,
        done: true,
        floor_seq: 1,
        next_ts: 2,
        data: CatchUpData::Cold(vec![(5, record((1, 2, 0, 3, 4)))]),
    };
    let mut payload = wire::encode_catch_up_chunk(WireStatus::Ok, Some(&chunk), None);
    let count_off = 1 + 4 + 1 + 8 + 8 + 1;
    payload[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(wire::decode_catch_up_chunk(&payload).is_err());
}
