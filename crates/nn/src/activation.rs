//! Activation functions and their derivatives.
//!
//! The paper uses ReLU (outputs stay non-negative, matching throughput) and
//! Linear on output heads; Sigmoid and Tanh back the LSTM/GRU gates.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// An activation function applied element-wise to a layer's pre-activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    ReLU,
    /// Identity: `x`.
    Linear,
    /// Logistic sigmoid: `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Linear => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated output* `y = f(x)`.
    ///
    /// Using the output (rather than the input) lets layers cache only their
    /// activations: for every supported function the derivative is cheap to
    /// recover from `y` (e.g. sigmoid' = y(1-y)).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Linear => 1.0,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Applies the activation element-wise to a matrix.
    pub fn apply(self, m: &Matrix) -> Matrix {
        m.map(|x| self.apply_scalar(x))
    }

    /// Applies the activation element-wise in place (no allocation).
    ///
    /// The per-variant loops hoist the `match` out of the element loop;
    /// semantics match [`Activation::apply_scalar`] exactly (including
    /// `max`'s NaN handling for ReLU).
    pub fn apply_inplace(self, m: &mut Matrix) {
        self.apply_slice(m.as_mut_slice());
    }

    /// Applies the activation element-wise to a raw slice, in place — the
    /// kernel layer's entry point for activation math, shared by both
    /// backends so sigmoid/tanh evaluate the same `exp`/`tanh` calls
    /// everywhere.
    pub fn apply_slice(self, data: &mut [f64]) {
        match self {
            Activation::ReLU => {
                for v in data {
                    *v = v.max(0.0);
                }
            }
            Activation::Linear => {}
            Activation::Sigmoid => {
                for v in data {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Tanh => {
                for v in data {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Out-of-place slice activation: `dst[i] = f(src[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn apply_to_slice(self, src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "activation slice length mismatch");
        match self {
            Activation::ReLU => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s.max(0.0);
                }
            }
            Activation::Linear => dst.copy_from_slice(src),
            Activation::Sigmoid => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = 1.0 / (1.0 + (-s).exp());
                }
            }
            Activation::Tanh => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s.tanh();
                }
            }
        }
    }

    /// Element-wise derivative matrix computed from the activated output.
    pub fn derivative(self, output: &Matrix) -> Matrix {
        output.map(|y| self.derivative_from_output(y))
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Activation::ReLU => "ReLU",
            Activation::Linear => "Linear",
            Activation::Sigmoid => "Sigmoid",
            Activation::Tanh => "Tanh",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::ReLU.apply_scalar(-3.0), 0.0);
        assert_eq!(Activation::ReLU.apply_scalar(2.5), 2.5);
    }

    #[test]
    fn linear_is_identity() {
        for x in [-2.0, 0.0, 7.5] {
            assert_eq!(Activation::Linear.apply_scalar(x), x);
            assert_eq!(Activation::Linear.derivative_from_output(x), 1.0);
        }
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply_scalar(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply_scalar(100.0) <= 1.0);
        assert!(s.apply_scalar(-100.0) >= 0.0);
    }

    #[test]
    fn sigmoid_derivative_matches_numeric() {
        let s = Activation::Sigmoid;
        let x = 0.7;
        let eps = 1e-6;
        let numeric = (s.apply_scalar(x + eps) - s.apply_scalar(x - eps)) / (2.0 * eps);
        let analytic = s.derivative_from_output(s.apply_scalar(x));
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn tanh_derivative_matches_numeric() {
        let t = Activation::Tanh;
        let x = -0.3;
        let eps = 1e-6;
        let numeric = (t.apply_scalar(x + eps) - t.apply_scalar(x - eps)) / (2.0 * eps);
        let analytic = t.derivative_from_output(t.apply_scalar(x));
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn relu_derivative_from_output() {
        // The output of ReLU is never negative, so the subgradient at output 0
        // is taken as 0 and any positive output maps to slope 1.
        assert_eq!(Activation::ReLU.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::ReLU.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn matrix_apply_matches_scalar() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let y = Activation::ReLU.apply(&m);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 2.0]]));
    }

    #[test]
    fn apply_inplace_matches_apply() {
        let m = Matrix::from_rows(&[&[-1.5, 0.0, 0.7], &[3.0, -0.2, 12.0]]);
        for act in [
            Activation::ReLU,
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let expected = act.apply(&m);
            let mut inplace = m.clone();
            act.apply_inplace(&mut inplace);
            assert_eq!(inplace, expected, "{act} in-place mismatch");
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(Activation::ReLU.to_string(), "ReLU");
        assert_eq!(Activation::Linear.to_string(), "Linear");
    }
}
