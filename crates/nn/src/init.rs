//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Strategy used to draw initial weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// The default for sigmoid/tanh-gated layers.
    XavierUniform,
    /// He/Kaiming uniform: `U(-l, l)` with `l = sqrt(6 / fan_in)`.
    ///
    /// Preferred for ReLU layers.
    HeUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a `rows x cols` matrix using `rng`.
    ///
    /// `rows` is treated as fan-in and `cols` as fan-out, matching the
    /// convention `output = input · W` used by every layer in this crate.
    pub fn sample(self, rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f64).sqrt();
                uniform(rows, cols, limit, rng)
            }
            Init::HeUniform => {
                let limit = (6.0 / rows.max(1) as f64).sqrt();
                uniform(rows, cols, limit, rng)
            }
        }
    }
}

fn uniform(rows: usize, cols: usize, limit: f64, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Creates a deterministic RNG for reproducible experiments.
///
/// # Examples
///
/// ```
/// let mut a = geomancy_nn::init::seeded_rng(7);
/// let mut b = geomancy_nn::init::seeded_rng(7);
/// use rand::Rng;
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit() {
        let mut rng = seeded_rng(1);
        let w = Init::XavierUniform.sample(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), (10, 20));
    }

    #[test]
    fn he_within_limit() {
        let mut rng = seeded_rng(2);
        let w = Init::HeUniform.sample(8, 4, &mut rng);
        let limit = (6.0 / 8.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = seeded_rng(3);
        let w = Init::Zeros.sample(3, 3, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let wa = Init::XavierUniform.sample(4, 4, &mut a);
        let wb = Init::XavierUniform.sample(4, 4, &mut b);
        assert_eq!(wa, wb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let wa = Init::XavierUniform.sample(4, 4, &mut a);
        let wb = Init::XavierUniform.sample(4, 4, &mut b);
        assert_ne!(wa, wb);
    }

    #[test]
    fn xavier_not_all_equal() {
        let mut rng = seeded_rng(9);
        let w = Init::XavierUniform.sample(5, 5, &mut rng);
        let first = w.as_slice()[0];
        assert!(w.as_slice().iter().any(|&x| x != first));
    }
}
