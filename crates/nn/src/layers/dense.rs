//! Fully connected layer: `y = act(x · W + b)`.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

/// A fully connected (dense) layer.
///
/// # Examples
///
/// ```
/// use geomancy_nn::activation::Activation;
/// use geomancy_nn::init::seeded_rng;
/// use geomancy_nn::layers::{Dense, Layer};
/// use geomancy_nn::matrix::Matrix;
///
/// let mut rng = seeded_rng(0);
/// let mut layer = Dense::new(3, 2, Activation::ReLU, &mut rng);
/// let out = layer.forward(&Matrix::zeros(4, 3));
/// assert_eq!(out.shape(), (4, 2));
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    activation: Activation,
    input: Option<Matrix>,
    output: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with He initialization for ReLU and Xavier
    /// otherwise, and zero biases.
    pub fn new(input_size: usize, output_size: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let init = match activation {
            Activation::ReLU => Init::HeUniform,
            _ => Init::XavierUniform,
        };
        Dense {
            weight: Param::new(init.sample(input_size, output_size, rng), "dense.w"),
            bias: Param::new(Matrix::zeros(1, output_size), "dense.b"),
            activation,
            input: None,
            output: None,
        }
    }

    /// Creates a dense layer from explicit weights (used by tests and
    /// deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a `1 x weight.cols()` row vector.
    pub fn from_weights(weight: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.cols(), "bias width must match weight output");
        Dense {
            weight: Param::new(weight, "dense.w"),
            bias: Param::new(bias, "dense.b"),
            activation,
            input: None,
            output: None,
        }
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let pre = input.dot(&self.weight.value).add_row_broadcast(&self.bias.value);
        let out = self.activation.apply(&pre);
        self.input = Some(input.clone());
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("backward called before forward");
        let output = self.output.as_ref().expect("backward called before forward");
        // dL/d(pre-activation) = dL/dy ⊙ f'(y)
        let grad_pre = grad_output.hadamard(&self.activation.derivative(output));
        self.weight.accumulate(&input.transpose().dot(&grad_pre));
        self.bias.accumulate(&grad_pre.sum_rows());
        grad_pre.dot(&self.weight.value.transpose())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn input_size(&self) -> usize {
        self.weight.value.rows()
    }

    fn output_size(&self) -> usize {
        self.weight.value.cols()
    }

    fn describe(&self) -> String {
        format!("{} (Dense) {}", self.output_size(), self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = Matrix::row_vector(&[0.5, -10.0]);
        let mut layer = Dense::from_weights(w, b, Activation::ReLU);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = layer.forward(&x);
        // pre = [1+3+0.5, 2+3-10] = [4.5, -5] → ReLU → [4.5, 0]
        assert_eq!(y, Matrix::from_rows(&[&[4.5, 0.0]]));
    }

    #[test]
    fn backward_gradient_shapes() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(4, 3, Activation::Linear, &mut rng);
        let x = Matrix::filled(2, 4, 0.1);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 3, 1.0));
        assert_eq!(gin.shape(), (2, 4));
        assert_eq!(layer.params()[0].grad.shape(), (4, 3));
        assert_eq!(layer.params()[1].grad.shape(), (1, 3));
    }

    #[test]
    fn linear_layer_weight_gradient_is_xt_dot_g() {
        let w = Matrix::zeros(2, 1);
        let b = Matrix::zeros(1, 1);
        let mut layer = Dense::from_weights(w, b, Activation::Linear);
        let x = Matrix::from_rows(&[&[3.0, 5.0]]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::from_rows(&[&[2.0]]));
        assert_eq!(layer.params()[0].grad, Matrix::from_rows(&[&[6.0], &[10.0]]));
        assert_eq!(layer.params()[1].grad, Matrix::from_rows(&[&[2.0]]));
    }

    #[test]
    fn relu_blocks_gradient_for_inactive_units() {
        let w = Matrix::from_rows(&[&[1.0, -1.0]]);
        let b = Matrix::row_vector(&[0.0, 0.0]);
        let mut layer = Dense::from_weights(w, b, Activation::ReLU);
        let x = Matrix::from_rows(&[&[2.0]]); // pre = [2, -2] → y = [2, 0]
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        // Only the first unit is active, so dL/dx = 1 * w[0][0] = 1.
        assert_eq!(gin, Matrix::from_rows(&[&[1.0]]));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(2, 2, Activation::ReLU, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(0);
        let layer = Dense::new(6, 96, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "96 (Dense) ReLU");
        assert_eq!(layer.param_count(), 6 * 96 + 96);
    }
}
