//! Fully connected layer: `y = act(x · W + b)`.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::kernels;
use crate::matrix::{Matrix, MatrixView};
use crate::param::Param;

/// A fully connected (dense) layer.
///
/// The forward pass runs the fused `act(x · W + b)` kernel and the backward
/// pass accumulates `xᵀ · g` / `g · Wᵀ` through the transpose-aware kernels,
/// so after the first batch neither direction allocates: the input/output
/// caches and the pre-activation gradient scratch are resized in place.
///
/// # Examples
///
/// ```
/// use geomancy_nn::activation::Activation;
/// use geomancy_nn::init::seeded_rng;
/// use geomancy_nn::layers::{Dense, Layer};
/// use geomancy_nn::matrix::Matrix;
///
/// let mut rng = seeded_rng(0);
/// let mut layer = Dense::new(3, 2, Activation::ReLU, &mut rng);
/// let out = layer.forward(&Matrix::zeros(4, 3));
/// assert_eq!(out.shape(), (4, 2));
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    activation: Activation,
    /// Cached forward input (reused allocation; valid when `primed`).
    input: Matrix,
    /// Cached forward output (reused allocation; valid when `primed`).
    output: Matrix,
    /// Scratch for the pre-activation gradient in backward.
    grad_pre: Matrix,
    /// Whether a forward pass has populated the caches.
    primed: bool,
}

impl Dense {
    /// Creates a dense layer with He initialization for ReLU and Xavier
    /// otherwise, and zero biases.
    pub fn new(
        input_size: usize,
        output_size: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let init = match activation {
            Activation::ReLU => Init::HeUniform,
            _ => Init::XavierUniform,
        };
        Dense {
            weight: Param::new(init.sample(input_size, output_size, rng), "dense.w"),
            bias: Param::new(Matrix::zeros(1, output_size), "dense.b"),
            activation,
            input: Matrix::default(),
            output: Matrix::default(),
            grad_pre: Matrix::default(),
            primed: false,
        }
    }

    /// Creates a dense layer from explicit weights (used by tests and
    /// deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a `1 x weight.cols()` row vector.
    pub fn from_weights(weight: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(
            bias.cols(),
            weight.cols(),
            "bias width must match weight output"
        );
        Dense {
            weight: Param::new(weight, "dense.w"),
            bias: Param::new(bias, "dense.b"),
            activation,
            input: Matrix::default(),
            output: Matrix::default(),
            grad_pre: Matrix::default(),
            primed: false,
        }
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input.view(), &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    fn forward_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        self.input.copy_from(input);
        kernels::matmul_bias_act_into(
            input,
            &self.weight.value,
            &self.bias.value,
            self.activation,
            &mut self.output,
        );
        out.copy_from(self.output.view());
        self.primed = true;
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        assert!(self.primed, "backward called before forward");
        // dL/d(pre-activation) = dL/dy ⊙ f'(y)
        kernels::hadamard_act_derivative_into(
            grad_output,
            &self.output,
            self.activation,
            &mut self.grad_pre,
        );
        kernels::matmul_at_b_acc(
            self.input.view(),
            self.grad_pre.view(),
            &mut self.weight.grad,
        );
        kernels::sum_rows_acc(&self.grad_pre, &mut self.bias.grad);
        kernels::matmul_a_bt_into(self.grad_pre.view(), &self.weight.value, grad_input);
    }

    fn forward_inference_into(
        &self,
        input: MatrixView<'_>,
        _scratch: &mut Matrix,
        out: &mut Matrix,
    ) {
        kernels::matmul_bias_act_into(
            input,
            &self.weight.value,
            &self.bias.value,
            self.activation,
            out,
        );
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn input_size(&self) -> usize {
        self.weight.value.rows()
    }

    fn output_size(&self) -> usize {
        self.weight.value.cols()
    }

    fn describe(&self) -> String {
        format!("{} (Dense) {}", self.output_size(), self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = Matrix::row_vector(&[0.5, -10.0]);
        let mut layer = Dense::from_weights(w, b, Activation::ReLU);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = layer.forward(&x);
        // pre = [1+3+0.5, 2+3-10] = [4.5, -5] → ReLU → [4.5, 0]
        assert_eq!(y, Matrix::from_rows(&[&[4.5, 0.0]]));
    }

    #[test]
    fn backward_gradient_shapes() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(4, 3, Activation::Linear, &mut rng);
        let x = Matrix::filled(2, 4, 0.1);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 3, 1.0));
        assert_eq!(gin.shape(), (2, 4));
        assert_eq!(layer.params()[0].grad.shape(), (4, 3));
        assert_eq!(layer.params()[1].grad.shape(), (1, 3));
    }

    #[test]
    fn linear_layer_weight_gradient_is_xt_dot_g() {
        let w = Matrix::zeros(2, 1);
        let b = Matrix::zeros(1, 1);
        let mut layer = Dense::from_weights(w, b, Activation::Linear);
        let x = Matrix::from_rows(&[&[3.0, 5.0]]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::from_rows(&[&[2.0]]));
        assert_eq!(
            layer.params()[0].grad,
            Matrix::from_rows(&[&[6.0], &[10.0]])
        );
        assert_eq!(layer.params()[1].grad, Matrix::from_rows(&[&[2.0]]));
    }

    #[test]
    fn relu_blocks_gradient_for_inactive_units() {
        let w = Matrix::from_rows(&[&[1.0, -1.0]]);
        let b = Matrix::row_vector(&[0.0, 0.0]);
        let mut layer = Dense::from_weights(w, b, Activation::ReLU);
        let x = Matrix::from_rows(&[&[2.0]]); // pre = [2, -2] → y = [2, 0]
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        // Only the first unit is active, so dL/dx = 1 * w[0][0] = 1.
        assert_eq!(gin, Matrix::from_rows(&[&[1.0]]));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(2, 2, Activation::ReLU, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn inference_forward_matches_training_forward() {
        let mut rng = seeded_rng(3);
        let layer = Dense::new(5, 4, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8, 0.0, -0.6], &[1.0, 2.0, -3.0, 0.5, 0.25]]);
        let mut scratch = Matrix::default();
        let mut out = Matrix::default();
        layer.forward_inference_into(x.view(), &mut scratch, &mut out);
        let mut training = layer;
        assert_eq!(out, training.forward(&x));
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(0);
        let layer = Dense::new(6, 96, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "96 (Dense) ReLU");
        assert_eq!(layer.param_count(), 6 * 96 + 96);
    }
}
