//! Gated Recurrent Unit layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::kernels;
use crate::matrix::{Matrix, MatrixView};
use crate::param::Param;

#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    /// Candidate hidden state `h̃`.
    cand: Matrix,
}

/// A GRU layer (`Z (GRU) ReLU` rows of Table I).
///
/// Update (`z`) and reset (`r`) gates use the logistic sigmoid; the candidate
/// activation is configurable (the paper uses ReLU). The layer consumes a
/// flattened window of `timesteps * features` values per row and emits the
/// final hidden state:
///
/// ```text
/// z_t = σ(x·Wxz + h·Whz + bz)
/// r_t = σ(x·Wxr + h·Whr + br)
/// h̃_t = φ(x·Wxh + (r ⊙ h)·Whh + bh)
/// h_t = (1 - z) ⊙ h_{t-1} + z ⊙ h̃_t
/// ```
///
/// Both training passes run on the transpose-aware kernels with reusable
/// scratch buffers: the forward pass writes gates and states into the
/// per-timestep caches in place, no transposed copies of `x`, `h` or the
/// weights are materialized, and the per-gate temporaries are resized in
/// place — no per-batch allocation once the buffers are warm.
#[derive(Debug)]
pub struct Gru {
    // Order: update (z), reset (r), candidate (h).
    wx: [Param; 3],
    wh: [Param; 3],
    b: [Param; 3],
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    cache: Vec<StepCache>,
    /// Training-forward scratch: the running hidden state.
    fwd_h: Matrix,
    /// Whether a forward pass has populated the caches.
    primed: bool,
    /// BPTT scratch: running hidden gradient and its predecessor.
    dh: Matrix,
    dh_prev: Matrix,
    /// BPTT scratch: per-gate pre-activation gradients.
    dz_pre: Matrix,
    dr_pre: Matrix,
    dcand_pre: Matrix,
    /// BPTT scratch: gradient w.r.t. `r ⊙ h_prev` and that product itself.
    d_rh: Matrix,
    rh: Matrix,
    /// BPTT scratch: input gradient of the current timestep.
    dx: Matrix,
}

const GATE_NAMES: [&str; 3] = ["z", "r", "h"];

impl Gru {
    /// Creates a GRU layer over windows of `timesteps` rows of `features`
    /// values each, with `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            features > 0 && hidden > 0 && timesteps > 0,
            "dimensions must be non-zero"
        );
        let wx = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(features, hidden, rng),
                format!("gru.wx_{n}"),
            )
        });
        let wh = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(hidden, hidden, rng),
                format!("gru.wh_{n}"),
            )
        });
        let b = GATE_NAMES.map(|n| Param::new(Matrix::zeros(1, hidden), format!("gru.b_{n}")));
        Gru {
            wx,
            wh,
            b,
            activation,
            features,
            timesteps,
            hidden,
            cache: Vec::new(),
            fwd_h: Matrix::default(),
            primed: false,
            dh: Matrix::default(),
            dh_prev: Matrix::default(),
            dz_pre: Matrix::default(),
            dr_pre: Matrix::default(),
            dcand_pre: Matrix::default(),
            d_rh: Matrix::default(),
            rh: Matrix::default(),
            dx: Matrix::default(),
        }
    }

    /// Number of hidden units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Layer for Gru {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input.view(), &mut out);
        out
    }

    fn forward_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Gru expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        while self.cache.len() < self.timesteps {
            self.cache.push(StepCache {
                x: Matrix::default(),
                h_prev: Matrix::default(),
                z: Matrix::default(),
                r: Matrix::default(),
                cand: Matrix::default(),
            });
        }
        let act = self.activation;
        self.fwd_h.resize(batch, self.hidden);
        self.fwd_h.fill(0.0);
        for t in 0..self.timesteps {
            let step = &mut self.cache[t];
            kernels::slice_cols_into(
                input,
                t * self.features..(t + 1) * self.features,
                &mut step.x,
            );
            step.h_prev.copy_from(self.fwd_h.view());
            let StepCache {
                x,
                h_prev,
                z,
                r,
                cand,
            } = step;
            for (gate, k) in [(&mut *z, 0), (&mut *r, 1)] {
                kernels::broadcast_rows_into(&self.b[k].value, batch, gate);
                kernels::matmul_acc(x.view(), &self.wx[k].value, gate);
                kernels::matmul_acc(h_prev.view(), &self.wh[k].value, gate);
                Activation::Sigmoid.apply_inplace(gate);
            }
            // Candidate reads r ⊙ h_prev through the (shared) `rh` scratch.
            kernels::hadamard_into(r, h_prev, &mut self.rh);
            kernels::broadcast_rows_into(&self.b[2].value, batch, cand);
            kernels::matmul_acc(x.view(), &self.wx[2].value, cand);
            kernels::matmul_acc(self.rh.view(), &self.wh[2].value, cand);
            act.apply_inplace(cand);
            // Fused state update: h_t = (1 - z) ⊙ h_prev + z ⊙ h̃.
            kernels::convex_combine_into(z, h_prev, cand, &mut self.fwd_h);
        }
        out.copy_from(self.fwd_h.view());
        self.primed = true;
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        assert!(self.primed, "backward called before forward");
        let batch = grad_output.rows();
        grad_input.resize(batch, self.input_size());
        self.dh.copy_from(grad_output.view());
        let act = self.activation;
        for t in (0..self.timesteps).rev() {
            let step = &self.cache[t];
            // h_t = (1 - z) ⊙ h_prev + z ⊙ h̃ — fused element-wise pass.
            kernels::gru_backward_gates(
                &self.dh,
                &step.z,
                &step.cand,
                &step.h_prev,
                act,
                &mut self.dz_pre,
                &mut self.dcand_pre,
                &mut self.dh_prev,
            );
            // Candidate depends on (r ⊙ h_prev).
            kernels::matmul_a_bt_into(self.dcand_pre.view(), &self.wh[2].value, &mut self.d_rh);
            kernels::gru_backward_reset(
                &self.d_rh,
                &step.r,
                &step.h_prev,
                &mut self.dr_pre,
                &mut self.dh_prev,
                &mut self.rh,
            );
            self.dx.resize(batch, self.features);
            self.dx.fill(0.0);
            let pres = [&self.dz_pre, &self.dr_pre, &self.dcand_pre];
            #[allow(clippy::needless_range_loop)] // k indexes three parallel arrays
            for k in 0..3 {
                kernels::matmul_at_b_acc(step.x.view(), pres[k].view(), &mut self.wx[k].grad);
                let recurrent_input = if k == 2 { &self.rh } else { &step.h_prev };
                kernels::matmul_at_b_acc(
                    recurrent_input.view(),
                    pres[k].view(),
                    &mut self.wh[k].grad,
                );
                kernels::sum_rows_acc(pres[k], &mut self.b[k].grad);
                kernels::matmul_a_bt_acc(pres[k].view(), &self.wx[k].value, &mut self.dx);
                if k != 2 {
                    kernels::matmul_a_bt_acc(pres[k].view(), &self.wh[k].value, &mut self.dh_prev);
                }
            }
            kernels::scatter_cols_from(
                grad_input,
                t * self.features..(t + 1) * self.features,
                &self.dx,
            );
            std::mem::swap(&mut self.dh, &mut self.dh_prev);
        }
    }

    fn forward_inference_into(
        &self,
        input: MatrixView<'_>,
        scratch: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Gru expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        // `scratch` carries the hidden state; the gate buffers are small
        // per-call locals (the recurrent inference path is not on the
        // zero-allocation contract — only dense models are).
        let h = scratch;
        h.resize(batch, self.hidden);
        h.fill(0.0);
        let mut z = Matrix::default();
        let mut r = Matrix::default();
        let mut rh = Matrix::default();
        let mut h_next = Matrix::default();
        for t in 0..self.timesteps {
            let window = t * self.features..(t + 1) * self.features;
            kernels::broadcast_rows_into(&self.b[0].value, batch, &mut z);
            kernels::matmul_cols_acc(input, window.clone(), &self.wx[0].value, &mut z);
            kernels::matmul_acc(h.view(), &self.wh[0].value, &mut z);
            Activation::Sigmoid.apply_inplace(&mut z);
            kernels::broadcast_rows_into(&self.b[1].value, batch, &mut r);
            kernels::matmul_cols_acc(input, window.clone(), &self.wx[1].value, &mut r);
            kernels::matmul_acc(h.view(), &self.wh[1].value, &mut r);
            Activation::Sigmoid.apply_inplace(&mut r);
            kernels::hadamard_into(&r, h, &mut rh);
            kernels::broadcast_rows_into(&self.b[2].value, batch, out);
            kernels::matmul_cols_acc(input, window, &self.wx[2].value, out);
            kernels::matmul_acc(rh.view(), &self.wh[2].value, out);
            self.activation.apply_inplace(out);
            // The hidden update reads and writes h, so it ping-pongs
            // between two buffers instead of aliasing.
            kernels::convex_combine_into(&z, h, out, &mut h_next);
            std::mem::swap(h, &mut h_next);
        }
        out.copy_from(h.view());
    }

    fn params(&self) -> Vec<&Param> {
        self.wx.iter().chain(&self.wh).chain(&self.b).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.wx
            .iter_mut()
            .chain(&mut self.wh)
            .chain(&mut self.b)
            .collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.wx.iter_mut().chain(&mut self.wh).chain(&mut self.b) {
            f(p);
        }
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (GRU) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = Gru::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn zero_input_keeps_zero_hidden_with_tanh() {
        let mut rng = seeded_rng(1);
        let mut layer = Gru::new(2, 3, 5, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(1, 10));
        // h̃ = tanh(0) = 0 and h_prev = 0, so every update keeps h = 0.
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn backward_shapes_and_param_count() {
        let mut rng = seeded_rng(2);
        let mut layer = Gru::new(3, 5, 2, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 6, 0.2);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 5, 1.0));
        assert_eq!(gin.shape(), (2, 6));
        // 3 gates x (3x5 + 5x5 + 1x5) parameters.
        assert_eq!(layer.param_count(), 3 * (15 + 25 + 5));
    }

    #[test]
    fn hidden_stays_bounded_with_tanh() {
        let mut rng = seeded_rng(3);
        let mut layer = Gru::new(2, 4, 8, Activation::Tanh, &mut rng);
        let x = Matrix::filled(1, 16, 3.0);
        let out = layer.forward(&x);
        // h is a convex combination of previous h and tanh candidate.
        assert!(out.as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = Gru::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn inference_forward_matches_training_forward() {
        let mut rng = seeded_rng(6);
        let mut layer = Gru::new(3, 4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 9, 0.3);
        let expected = layer.forward(&x);
        let mut scratch = Matrix::default();
        let mut out = Matrix::default();
        layer.forward_inference_into(x.view(), &mut scratch, &mut out);
        assert_eq!(out.shape(), expected.shape());
        for (a, b) in out.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-12, "inference {a} vs training {b}");
        }
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = Gru::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (GRU) ReLU");
    }
}
