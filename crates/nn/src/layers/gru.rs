//! Gated Recurrent Unit layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    /// Candidate hidden state `h̃`.
    cand: Matrix,
}

/// A GRU layer (`Z (GRU) ReLU` rows of Table I).
///
/// Update (`z`) and reset (`r`) gates use the logistic sigmoid; the candidate
/// activation is configurable (the paper uses ReLU). The layer consumes a
/// flattened window of `timesteps * features` values per row and emits the
/// final hidden state:
///
/// ```text
/// z_t = σ(x·Wxz + h·Whz + bz)
/// r_t = σ(x·Wxr + h·Whr + br)
/// h̃_t = φ(x·Wxh + (r ⊙ h)·Whh + bh)
/// h_t = (1 - z) ⊙ h_{t-1} + z ⊙ h̃_t
/// ```
#[derive(Debug)]
pub struct Gru {
    // Order: update (z), reset (r), candidate (h).
    wx: [Param; 3],
    wh: [Param; 3],
    b: [Param; 3],
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    cache: Vec<StepCache>,
}

const GATE_NAMES: [&str; 3] = ["z", "r", "h"];

impl Gru {
    /// Creates a GRU layer over windows of `timesteps` rows of `features`
    /// values each, with `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(features > 0 && hidden > 0 && timesteps > 0, "dimensions must be non-zero");
        let wx = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(features, hidden, rng),
                format!("gru.wx_{n}"),
            )
        });
        let wh = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(hidden, hidden, rng),
                format!("gru.wh_{n}"),
            )
        });
        let b = GATE_NAMES.map(|n| Param::new(Matrix::zeros(1, hidden), format!("gru.b_{n}")));
        Gru {
            wx,
            wh,
            b,
            activation,
            features,
            timesteps,
            hidden,
            cache: Vec::new(),
        }
    }

    /// Number of hidden units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Layer for Gru {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Gru expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        self.cache.clear();
        let mut h = Matrix::zeros(batch, self.hidden);
        for t in 0..self.timesteps {
            let x = input.slice_cols(t * self.features..(t + 1) * self.features);
            let z = Activation::Sigmoid.apply(
                &x.dot(&self.wx[0].value)
                    .add(&h.dot(&self.wh[0].value))
                    .add_row_broadcast(&self.b[0].value),
            );
            let r = Activation::Sigmoid.apply(
                &x.dot(&self.wx[1].value)
                    .add(&h.dot(&self.wh[1].value))
                    .add_row_broadcast(&self.b[1].value),
            );
            let cand = self.activation.apply(
                &x.dot(&self.wx[2].value)
                    .add(&r.hadamard(&h).dot(&self.wh[2].value))
                    .add_row_broadcast(&self.b[2].value),
            );
            let h_next = z
                .map(|v| 1.0 - v)
                .hadamard(&h)
                .add(&z.hadamard(&cand));
            self.cache.push(StepCache {
                x,
                h_prev: h,
                z,
                r,
                cand,
            });
            h = h_next;
        }
        h
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert!(!self.cache.is_empty(), "backward called before forward");
        let batch = grad_output.rows();
        let mut grad_input = Matrix::zeros(batch, self.input_size());
        let mut dh = grad_output.clone();
        for t in (0..self.timesteps).rev() {
            let step = &self.cache[t];
            // h_t = (1 - z) ⊙ h_prev + z ⊙ h̃
            let dz = dh.hadamard(&step.cand.sub(&step.h_prev));
            let dcand = dh.hadamard(&step.z);
            let mut dh_prev = dh.hadamard(&step.z.map(|v| 1.0 - v));
            let dz_pre = dz.hadamard(&Activation::Sigmoid.derivative(&step.z));
            let dcand_pre = dcand.hadamard(&self.activation.derivative(&step.cand));
            // Candidate depends on (r ⊙ h_prev).
            let d_rh = dcand_pre.dot(&self.wh[2].value.transpose());
            let dr = d_rh.hadamard(&step.h_prev);
            dh_prev.add_assign(&d_rh.hadamard(&step.r));
            let dr_pre = dr.hadamard(&Activation::Sigmoid.derivative(&step.r));

            let xt = step.x.transpose();
            let ht = step.h_prev.transpose();
            let rh_t = step.r.hadamard(&step.h_prev).transpose();
            let pres = [&dz_pre, &dr_pre, &dcand_pre];
            let mut dx = Matrix::zeros(batch, self.features);
            #[allow(clippy::needless_range_loop)] // k indexes three parallel arrays
            for k in 0..3 {
                self.wx[k].accumulate(&xt.dot(pres[k]));
                let recurrent_input = if k == 2 { &rh_t } else { &ht };
                self.wh[k].accumulate(&recurrent_input.dot(pres[k]));
                self.b[k].accumulate(&pres[k].sum_rows());
                dx.add_assign(&pres[k].dot(&self.wx[k].value.transpose()));
                if k != 2 {
                    dh_prev.add_assign(&pres[k].dot(&self.wh[k].value.transpose()));
                }
            }
            for row in 0..batch {
                for col in 0..self.features {
                    grad_input[(row, t * self.features + col)] = dx[(row, col)];
                }
            }
            dh = dh_prev;
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        self.wx.iter().chain(&self.wh).chain(&self.b).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.wx
            .iter_mut()
            .chain(&mut self.wh)
            .chain(&mut self.b)
            .collect()
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (GRU) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = Gru::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn zero_input_keeps_zero_hidden_with_tanh() {
        let mut rng = seeded_rng(1);
        let mut layer = Gru::new(2, 3, 5, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(1, 10));
        // h̃ = tanh(0) = 0 and h_prev = 0, so every update keeps h = 0.
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn backward_shapes_and_param_count() {
        let mut rng = seeded_rng(2);
        let mut layer = Gru::new(3, 5, 2, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 6, 0.2);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 5, 1.0));
        assert_eq!(gin.shape(), (2, 6));
        // 3 gates x (3x5 + 5x5 + 1x5) parameters.
        assert_eq!(layer.param_count(), 3 * (15 + 25 + 5));
    }

    #[test]
    fn hidden_stays_bounded_with_tanh() {
        let mut rng = seeded_rng(3);
        let mut layer = Gru::new(2, 4, 8, Activation::Tanh, &mut rng);
        let x = Matrix::filled(1, 16, 3.0);
        let out = layer.forward(&x);
        // h is a convex combination of previous h and tanh candidate.
        assert!(out.as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = Gru::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = Gru::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (GRU) ReLU");
    }
}
