//! Long Short-Term Memory layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::kernels;
use crate::matrix::{Matrix, MatrixView};
use crate::param::Param;

/// Per-timestep values cached by the forward pass for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    o: Matrix,
    g: Matrix,
    /// Activated cell state `φ(c_t)`.
    a: Matrix,
}

/// An LSTM layer (`Z (LSTM) ReLU` rows of Table I).
///
/// Input/forget/output gates use the logistic sigmoid; the candidate and the
/// cell-output activation use the layer's configured activation (the paper
/// trains LSTMs with ReLU there). The layer consumes a flattened window of
/// `timesteps * features` values per row and emits the final hidden state.
///
/// Both training passes run entirely on the transpose-aware kernels and
/// reusable scratch buffers: the forward pass writes gates and states into
/// the per-timestep caches in place, and the backward pass reuses its
/// gradient scratch — no per-batch allocation once the buffers are warm.
#[derive(Debug)]
pub struct Lstm {
    // Gate weights: input (i), forget (f), output (o), candidate (g).
    wx: [Param; 4],
    wh: [Param; 4],
    b: [Param; 4],
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    cache: Vec<StepCache>,
    /// Training-forward scratch: the running hidden and cell states.
    fwd_h: Matrix,
    fwd_c: Matrix,
    /// Whether a forward pass has populated the caches.
    primed: bool,
    /// BPTT scratch: per-gate pre-activation gradients.
    dz: [Matrix; 4],
    /// BPTT scratch: running hidden/cell gradients and their predecessors.
    dh: Matrix,
    dc: Matrix,
    dh_prev: Matrix,
    dc_prev: Matrix,
    /// BPTT scratch: input gradient of the current timestep.
    dx: Matrix,
}

const GATE_NAMES: [&str; 4] = ["i", "f", "o", "g"];

impl Lstm {
    /// Creates an LSTM layer over windows of `timesteps` rows of `features`
    /// values each, with `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            features > 0 && hidden > 0 && timesteps > 0,
            "dimensions must be non-zero"
        );
        let wx = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(features, hidden, rng),
                format!("lstm.wx_{n}"),
            )
        });
        let wh = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(hidden, hidden, rng),
                format!("lstm.wh_{n}"),
            )
        });
        let b = GATE_NAMES.map(|n| {
            // Forget-gate bias starts at 1.0 (standard trick) so early
            // training does not wipe the cell state.
            let init = if n == "f" { 1.0 } else { 0.0 };
            Param::new(Matrix::filled(1, hidden, init), format!("lstm.b_{n}"))
        });
        Lstm {
            wx,
            wh,
            b,
            activation,
            features,
            timesteps,
            hidden,
            cache: Vec::new(),
            fwd_h: Matrix::default(),
            fwd_c: Matrix::default(),
            primed: false,
            dz: Default::default(),
            dh: Matrix::default(),
            dc: Matrix::default(),
            dh_prev: Matrix::default(),
            dc_prev: Matrix::default(),
            dx: Matrix::default(),
        }
    }

    /// Number of hidden units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Computes one gate for the stateless inference path: `pre` is seeded
    /// with the bias, accumulates `x_t · Wx + h · Wh` via the in-place
    /// kernels, and is activated in place.
    fn gate_inference(
        &self,
        idx: usize,
        input: MatrixView<'_>,
        t: usize,
        h: &Matrix,
        act: Activation,
        pre: &mut Matrix,
    ) {
        kernels::broadcast_rows_into(&self.b[idx].value, input.rows(), pre);
        kernels::matmul_cols_acc(
            input,
            t * self.features..(t + 1) * self.features,
            &self.wx[idx].value,
            pre,
        );
        kernels::matmul_acc(h.view(), &self.wh[idx].value, pre);
        act.apply_inplace(pre);
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input.view(), &mut out);
        out
    }

    fn forward_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Lstm expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        while self.cache.len() < self.timesteps {
            self.cache.push(StepCache {
                x: Matrix::default(),
                h_prev: Matrix::default(),
                c_prev: Matrix::default(),
                i: Matrix::default(),
                f: Matrix::default(),
                o: Matrix::default(),
                g: Matrix::default(),
                a: Matrix::default(),
            });
        }
        let act = self.activation;
        self.fwd_h.resize(batch, self.hidden);
        self.fwd_h.fill(0.0);
        self.fwd_c.resize(batch, self.hidden);
        self.fwd_c.fill(0.0);
        for t in 0..self.timesteps {
            let step = &mut self.cache[t];
            kernels::slice_cols_into(
                input,
                t * self.features..(t + 1) * self.features,
                &mut step.x,
            );
            step.h_prev.copy_from(self.fwd_h.view());
            step.c_prev.copy_from(self.fwd_c.view());
            let StepCache {
                x,
                h_prev,
                c_prev,
                i,
                f,
                o,
                g,
                a,
            } = step;
            let gates: [(&mut Matrix, usize, Activation); 4] = [
                (i, 0, Activation::Sigmoid),
                (f, 1, Activation::Sigmoid),
                (o, 2, Activation::Sigmoid),
                (g, 3, act),
            ];
            for (gate, k, gate_act) in gates {
                kernels::broadcast_rows_into(&self.b[k].value, batch, gate);
                kernels::matmul_acc(x.view(), &self.wx[k].value, gate);
                kernels::matmul_acc(h_prev.view(), &self.wh[k].value, gate);
                gate_act.apply_inplace(gate);
            }
            // Fused state update: c_t = f ⊙ c_{t-1} + i ⊙ g, a = φ(c_t),
            // h_t = o ⊙ a.
            kernels::lstm_state_forward(
                i,
                f,
                o,
                g,
                c_prev,
                act,
                &mut self.fwd_c,
                a,
                &mut self.fwd_h,
            );
        }
        out.copy_from(self.fwd_h.view());
        self.primed = true;
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        assert!(self.primed, "backward called before forward");
        let batch = grad_output.rows();
        grad_input.resize(batch, self.input_size());
        self.dh.copy_from(grad_output.view());
        self.dc.resize(batch, self.hidden);
        self.dc.fill(0.0);
        let act = self.activation;
        for t in (0..self.timesteps).rev() {
            let step = &self.cache[t];
            // Element-wise gate gradients in one fused pass:
            //   h_t = o ⊙ φ(c_t)       → dz_o, dc update
            //   c_t = f ⊙ c_{t-1} + i ⊙ g → dz_f, dz_i, dz_g, dc_{t-1}
            let [dz_i, dz_f, dz_o, dz_g] = &mut self.dz;
            kernels::lstm_backward_elementwise(
                &self.dh,
                &self.dc,
                &step.a,
                &step.o,
                &step.i,
                &step.f,
                &step.g,
                &step.c_prev,
                act,
                dz_i,
                dz_f,
                dz_o,
                dz_g,
                &mut self.dc_prev,
            );
            self.dx.resize(batch, self.features);
            self.dx.fill(0.0);
            self.dh_prev.resize(batch, self.hidden);
            self.dh_prev.fill(0.0);
            for k in 0..4 {
                kernels::matmul_at_b_acc(step.x.view(), self.dz[k].view(), &mut self.wx[k].grad);
                kernels::matmul_at_b_acc(
                    step.h_prev.view(),
                    self.dz[k].view(),
                    &mut self.wh[k].grad,
                );
                kernels::sum_rows_acc(&self.dz[k], &mut self.b[k].grad);
                kernels::matmul_a_bt_acc(self.dz[k].view(), &self.wx[k].value, &mut self.dx);
                kernels::matmul_a_bt_acc(self.dz[k].view(), &self.wh[k].value, &mut self.dh_prev);
            }
            kernels::scatter_cols_from(
                grad_input,
                t * self.features..(t + 1) * self.features,
                &self.dx,
            );
            std::mem::swap(&mut self.dh, &mut self.dh_prev);
            std::mem::swap(&mut self.dc, &mut self.dc_prev);
        }
    }

    fn forward_inference_into(
        &self,
        input: MatrixView<'_>,
        scratch: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Lstm expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        // `scratch` carries the hidden state; the cell state and the gate
        // buffer are small per-call locals (the recurrent inference path is
        // not on the zero-allocation contract — only dense models are).
        let h = scratch;
        h.resize(batch, self.hidden);
        h.fill(0.0);
        let mut c = Matrix::zeros(batch, self.hidden);
        let mut c_next = Matrix::default();
        let mut a = Matrix::default();
        let mut i = Matrix::default();
        let mut f = Matrix::default();
        let mut g = Matrix::default();
        for t in 0..self.timesteps {
            self.gate_inference(0, input, t, h, Activation::Sigmoid, &mut i);
            self.gate_inference(1, input, t, h, Activation::Sigmoid, &mut f);
            // The output gate needs pre-update h, so it goes to `out` before
            // h is overwritten.
            self.gate_inference(2, input, t, h, Activation::Sigmoid, out);
            self.gate_inference(3, input, t, h, self.activation, &mut g);
            // The cell update reads and writes the cell state, so it
            // ping-pongs between two buffers instead of aliasing.
            kernels::mul_add_mul_into(&f, &c, &i, &g, &mut c_next);
            std::mem::swap(&mut c, &mut c_next);
            kernels::act_into(&c, self.activation, &mut a);
            kernels::hadamard_into(out, &a, h);
        }
        out.copy_from(h.view());
    }

    fn params(&self) -> Vec<&Param> {
        self.wx.iter().chain(&self.wh).chain(&self.b).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.wx
            .iter_mut()
            .chain(&mut self.wh)
            .chain(&mut self.b)
            .collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.wx.iter_mut().chain(&mut self.wh).chain(&mut self.b) {
            f(p);
        }
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (LSTM) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = Lstm::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn backward_shapes_and_param_count() {
        let mut rng = seeded_rng(1);
        let mut layer = Lstm::new(3, 5, 2, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 6, 0.2);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 5, 1.0));
        assert_eq!(gin.shape(), (2, 6));
        // 4 gates x (3x5 + 5x5 + 1x5) parameters.
        assert_eq!(layer.param_count(), 4 * (15 + 25 + 5));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = seeded_rng(2);
        let layer = Lstm::new(2, 3, 2, Activation::Tanh, &mut rng);
        let bf = layer
            .params()
            .into_iter()
            .find(|p| p.name == "lstm.b_f")
            .unwrap();
        assert!(bf.value.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn hidden_stays_bounded_with_tanh() {
        let mut rng = seeded_rng(3);
        let mut layer = Lstm::new(2, 4, 6, Activation::Tanh, &mut rng);
        let x = Matrix::filled(1, 12, 5.0);
        let out = layer.forward(&x);
        assert!(out.as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = Lstm::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn inference_forward_matches_training_forward() {
        let mut rng = seeded_rng(6);
        let mut layer = Lstm::new(3, 4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 9, 0.3);
        let expected = layer.forward(&x);
        let mut scratch = Matrix::default();
        let mut out = Matrix::default();
        layer.forward_inference_into(x.view(), &mut scratch, &mut out);
        assert_eq!(out.shape(), expected.shape());
        for (a, b) in out.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-12, "inference {a} vs training {b}");
        }
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = Lstm::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (LSTM) ReLU");
    }
}
