//! Long Short-Term Memory layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

/// Per-timestep values cached by the forward pass for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    o: Matrix,
    g: Matrix,
    /// Activated cell state `φ(c_t)`.
    a: Matrix,
}

/// An LSTM layer (`Z (LSTM) ReLU` rows of Table I).
///
/// Input/forget/output gates use the logistic sigmoid; the candidate and the
/// cell-output activation use the layer's configured activation (the paper
/// trains LSTMs with ReLU there). The layer consumes a flattened window of
/// `timesteps * features` values per row and emits the final hidden state.
#[derive(Debug)]
pub struct Lstm {
    // Gate weights: input (i), forget (f), output (o), candidate (g).
    wx: [Param; 4],
    wh: [Param; 4],
    b: [Param; 4],
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    cache: Vec<StepCache>,
}

const GATE_NAMES: [&str; 4] = ["i", "f", "o", "g"];

impl Lstm {
    /// Creates an LSTM layer over windows of `timesteps` rows of `features`
    /// values each, with `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(features > 0 && hidden > 0 && timesteps > 0, "dimensions must be non-zero");
        let wx = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(features, hidden, rng),
                format!("lstm.wx_{n}"),
            )
        });
        let wh = GATE_NAMES.map(|n| {
            Param::new(
                Init::XavierUniform.sample(hidden, hidden, rng),
                format!("lstm.wh_{n}"),
            )
        });
        let b = GATE_NAMES.map(|n| {
            // Forget-gate bias starts at 1.0 (standard trick) so early
            // training does not wipe the cell state.
            let init = if n == "f" { 1.0 } else { 0.0 };
            Param::new(Matrix::filled(1, hidden, init), format!("lstm.b_{n}"))
        });
        Lstm {
            wx,
            wh,
            b,
            activation,
            features,
            timesteps,
            hidden,
            cache: Vec::new(),
        }
    }

    /// Number of hidden units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn gate(&self, idx: usize, x: &Matrix, h: &Matrix, act: Activation) -> Matrix {
        let pre = x
            .dot(&self.wx[idx].value)
            .add(&h.dot(&self.wh[idx].value))
            .add_row_broadcast(&self.b[idx].value);
        act.apply(&pre)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "Lstm expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        self.cache.clear();
        let mut h = Matrix::zeros(batch, self.hidden);
        let mut c = Matrix::zeros(batch, self.hidden);
        for t in 0..self.timesteps {
            let x = input.slice_cols(t * self.features..(t + 1) * self.features);
            let i = self.gate(0, &x, &h, Activation::Sigmoid);
            let f = self.gate(1, &x, &h, Activation::Sigmoid);
            let o = self.gate(2, &x, &h, Activation::Sigmoid);
            let g = self.gate(3, &x, &h, self.activation);
            let c_next = f.hadamard(&c).add(&i.hadamard(&g));
            let a = self.activation.apply(&c_next);
            let h_next = o.hadamard(&a);
            self.cache.push(StepCache {
                x,
                h_prev: h,
                c_prev: c,
                i,
                f,
                o,
                g,
                a,
            });
            h = h_next;
            c = c_next;
        }
        h
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert!(!self.cache.is_empty(), "backward called before forward");
        let batch = grad_output.rows();
        let mut grad_input = Matrix::zeros(batch, self.input_size());
        let mut dh = grad_output.clone();
        let mut dc = Matrix::zeros(batch, self.hidden);
        for t in (0..self.timesteps).rev() {
            let step = &self.cache[t];
            // h_t = o ⊙ φ(c_t)
            let do_gate = dh.hadamard(&step.a);
            dc.add_assign(&dh.hadamard(&step.o).hadamard(&self.activation.derivative(&step.a)));
            // c_t = f ⊙ c_{t-1} + i ⊙ g
            let df = dc.hadamard(&step.c_prev);
            let di = dc.hadamard(&step.g);
            let dg = dc.hadamard(&step.i);
            let dc_prev = dc.hadamard(&step.f);
            let dz = [
                di.hadamard(&Activation::Sigmoid.derivative(&step.i)),
                df.hadamard(&Activation::Sigmoid.derivative(&step.f)),
                do_gate.hadamard(&Activation::Sigmoid.derivative(&step.o)),
                dg.hadamard(&self.activation.derivative(&step.g)),
            ];
            let xt = step.x.transpose();
            let ht = step.h_prev.transpose();
            let mut dx = Matrix::zeros(batch, self.features);
            let mut dh_prev = Matrix::zeros(batch, self.hidden);
            #[allow(clippy::needless_range_loop)] // k indexes four parallel arrays
            for k in 0..4 {
                self.wx[k].accumulate(&xt.dot(&dz[k]));
                self.wh[k].accumulate(&ht.dot(&dz[k]));
                self.b[k].accumulate(&dz[k].sum_rows());
                dx.add_assign(&dz[k].dot(&self.wx[k].value.transpose()));
                dh_prev.add_assign(&dz[k].dot(&self.wh[k].value.transpose()));
            }
            for r in 0..batch {
                for cidx in 0..self.features {
                    grad_input[(r, t * self.features + cidx)] = dx[(r, cidx)];
                }
            }
            dh = dh_prev;
            dc = dc_prev;
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        self.wx.iter().chain(&self.wh).chain(&self.b).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.wx
            .iter_mut()
            .chain(&mut self.wh)
            .chain(&mut self.b)
            .collect()
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (LSTM) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = Lstm::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn backward_shapes_and_param_count() {
        let mut rng = seeded_rng(1);
        let mut layer = Lstm::new(3, 5, 2, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 6, 0.2);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 5, 1.0));
        assert_eq!(gin.shape(), (2, 6));
        // 4 gates x (3x5 + 5x5 + 1x5) parameters.
        assert_eq!(layer.param_count(), 4 * (15 + 25 + 5));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = seeded_rng(2);
        let layer = Lstm::new(2, 3, 2, Activation::Tanh, &mut rng);
        let bf = layer.params().into_iter().find(|p| p.name == "lstm.b_f").unwrap();
        assert!(bf.value.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn hidden_stays_bounded_with_tanh() {
        let mut rng = seeded_rng(3);
        let mut layer = Lstm::new(2, 4, 6, Activation::Tanh, &mut rng);
        let x = Matrix::filled(1, 12, 5.0);
        let out = layer.forward(&x);
        assert!(out.as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = Lstm::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = Lstm::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (LSTM) ReLU");
    }
}
