//! Network layers: dense and the three recurrent families from Table I.

mod dense;
mod gru;
mod lstm;
mod simple_rnn;

pub use dense::Dense;
pub use gru::Gru;
pub use lstm::Lstm;
pub use simple_rnn::SimpleRnn;

use crate::matrix::Matrix;
use crate::param::Param;

/// A differentiable layer of a [`Sequential`](crate::network::Sequential)
/// network.
///
/// `forward` caches whatever intermediate state the matching `backward` call
/// needs; callers must pair them one-to-one (forward, then backward on the
/// same batch). Gradients accumulate into the layer's [`Param`]s and are
/// consumed by an [`Optimizer`](crate::optimizer::Optimizer).
pub trait Layer: Send {
    /// Computes the layer output for a `batch x input_size` matrix and caches
    /// the intermediates required by [`Layer::backward`].
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Propagates `grad_output` (`batch x output_size`) backwards, returning
    /// the gradient with respect to the layer input and accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Layer::forward`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// The layer's trainable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to the layer's trainable parameters, in the same order
    /// as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Width of an input row.
    fn input_size(&self) -> usize;

    /// Width of an output row.
    fn output_size(&self) -> usize;

    /// Short human-readable description, e.g. `"96 (Dense) ReLU"`, mirroring
    /// the notation of the paper's Table I.
    fn describe(&self) -> String;

    /// Resets all accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}
