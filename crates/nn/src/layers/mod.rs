//! Network layers: dense and the three recurrent families from Table I.

mod dense;
mod gru;
mod lstm;
mod simple_rnn;

pub use dense::Dense;
pub use gru::Gru;
pub use lstm::Lstm;
pub use simple_rnn::SimpleRnn;

use crate::matrix::{Matrix, MatrixView};
use crate::param::Param;

/// A differentiable layer of a [`Sequential`](crate::network::Sequential)
/// network.
///
/// The buffer-reusing entry points [`Layer::forward_into`] and
/// [`Layer::backward_into`] are the training hot path: they take borrowed
/// inputs and write into caller-provided buffers, so a layer that also
/// reuses its own caches allocates nothing per batch in steady state.
/// `forward` caches whatever intermediate state the matching backward call
/// needs; callers must pair them one-to-one (forward, then backward on the
/// same batch). Gradients accumulate into the layer's [`Param`]s and are
/// consumed by an [`Optimizer`](crate::optimizer::Optimizer).
///
/// `Sync` is required so immutable layer stacks can be shared across the
/// row-parallel inference path ([`Layer::forward_inference_into`]).
pub trait Layer: Send + Sync {
    /// Computes the layer output for a `batch x input_size` matrix and caches
    /// the intermediates required by [`Layer::backward`].
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Propagates `grad_output` (`batch x output_size`) backwards, returning
    /// the gradient with respect to the layer input and accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Layer::forward`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Buffer-reusing forward: writes the output for a borrowed
    /// `batch x input_size` view into `out` (resized as needed) and caches
    /// backward intermediates, like [`Layer::forward`].
    ///
    /// The default delegates to `forward` (allocating); layers override it
    /// to run allocation-free.
    fn forward_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        let produced = self.forward(&input.to_matrix());
        out.copy_from(produced.view());
    }

    /// Buffer-reusing backward: like [`Layer::backward`], but writes the
    /// input gradient into `grad_input` (resized as needed).
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass.
    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let produced = self.backward(grad_output);
        grad_input.copy_from(produced.view());
    }

    /// Stateless forward for inference: computes the output without touching
    /// the layer's backward caches, so one layer stack can serve many
    /// threads concurrently (`&self`). `scratch` is thread-local working
    /// space the layer may resize and scribble on freely.
    fn forward_inference_into(&self, input: MatrixView<'_>, scratch: &mut Matrix, out: &mut Matrix);

    /// The layer's trainable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to the layer's trainable parameters, in the same order
    /// as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Width of an input row.
    fn input_size(&self) -> usize;

    /// Width of an output row.
    fn output_size(&self) -> usize;

    /// Short human-readable description, e.g. `"96 (Dense) ReLU"`, mirroring
    /// the notation of the paper's Table I.
    fn describe(&self) -> String;

    /// Visits each trainable parameter mutably, in [`Layer::params`] order.
    ///
    /// The default routes through [`Layer::params_mut`] (which allocates a
    /// `Vec` per call); layers override it to visit parameters directly so
    /// the optimizer step stays allocation-free.
    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Resets all accumulated gradients.
    fn zero_grad(&mut self) {
        self.for_each_param_mut(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}
