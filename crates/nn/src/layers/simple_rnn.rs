//! Simple (Elman) recurrent layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::kernels;
use crate::matrix::{Matrix, MatrixView};
use crate::param::Param;

/// The base recurrent structure from the paper's Table I (`SimpleRNN`).
///
/// The layer consumes a window of `timesteps` feature rows flattened into one
/// input row of width `timesteps * features`, and emits the final hidden
/// state: `h_t = act(x_t · Wx + h_{t-1} · Wh + b)`.
///
/// Per-timestep caches and BPTT scratch buffers are reused across batches
/// (resized in place), so steady-state forward/backward passes perform no
/// heap allocation.
#[derive(Debug)]
pub struct SimpleRnn {
    wx: Param,
    wh: Param,
    bias: Param,
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    /// Cached per-timestep inputs (`timesteps` matrices of `batch x features`).
    cached_inputs: Vec<Matrix>,
    /// Cached hidden states `h_0..h_T` (`timesteps + 1` matrices).
    cached_hidden: Vec<Matrix>,
    /// BPTT scratch: pre-activation gradient of the current timestep.
    grad_pre: Matrix,
    /// BPTT scratch: running hidden-state gradient.
    dh: Matrix,
    /// BPTT scratch: hidden-state gradient flowing to the previous timestep.
    dh_prev: Matrix,
    /// BPTT scratch: input gradient of the current timestep.
    dx: Matrix,
    /// Whether a forward pass has populated the caches.
    primed: bool,
}

impl SimpleRnn {
    /// Creates a SimpleRNN layer over windows of `timesteps` rows of
    /// `features` values each, with `hidden` recurrent units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            features > 0 && hidden > 0 && timesteps > 0,
            "dimensions must be non-zero"
        );
        let init = match activation {
            Activation::ReLU => Init::HeUniform,
            _ => Init::XavierUniform,
        };
        SimpleRnn {
            wx: Param::new(init.sample(features, hidden, rng), "rnn.wx"),
            // Recurrent weights use Xavier regardless of activation; He-scaled
            // recurrent matrices explode over long windows with ReLU.
            wh: Param::new(Init::XavierUniform.sample(hidden, hidden, rng), "rnn.wh"),
            bias: Param::new(Matrix::zeros(1, hidden), "rnn.b"),
            activation,
            features,
            timesteps,
            hidden,
            cached_inputs: Vec::new(),
            cached_hidden: Vec::new(),
            grad_pre: Matrix::default(),
            dh: Matrix::default(),
            dh_prev: Matrix::default(),
            dx: Matrix::default(),
            primed: false,
        }
    }

    /// Number of recurrent units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Window length in timesteps.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }
}

impl Layer for SimpleRnn {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input.view(), &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    fn forward_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "SimpleRnn expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        while self.cached_inputs.len() < self.timesteps {
            self.cached_inputs.push(Matrix::default());
        }
        while self.cached_hidden.len() < self.timesteps + 1 {
            self.cached_hidden.push(Matrix::default());
        }
        self.cached_hidden[0].resize(batch, self.hidden);
        self.cached_hidden[0].fill(0.0);
        for t in 0..self.timesteps {
            kernels::slice_cols_into(
                input,
                t * self.features..(t + 1) * self.features,
                &mut self.cached_inputs[t],
            );
            let (prev, cur) = self.cached_hidden.split_at_mut(t + 1);
            let h_prev = &prev[t];
            let h_cur = &mut cur[0];
            kernels::broadcast_rows_into(&self.bias.value, batch, h_cur);
            kernels::matmul_acc(self.cached_inputs[t].view(), &self.wx.value, h_cur);
            kernels::matmul_acc(h_prev.view(), &self.wh.value, h_cur);
            self.activation.apply_inplace(h_cur);
        }
        out.copy_from(self.cached_hidden[self.timesteps].view());
        self.primed = true;
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        assert!(self.primed, "backward called before forward");
        let batch = grad_output.rows();
        grad_input.resize(batch, self.input_size());
        self.dh.copy_from(grad_output.view());
        for t in (0..self.timesteps).rev() {
            let h_t = &self.cached_hidden[t + 1];
            let h_prev = &self.cached_hidden[t];
            let x_t = &self.cached_inputs[t];
            kernels::hadamard_act_derivative_into(
                &self.dh,
                h_t,
                self.activation,
                &mut self.grad_pre,
            );
            kernels::matmul_at_b_acc(x_t.view(), self.grad_pre.view(), &mut self.wx.grad);
            kernels::matmul_at_b_acc(h_prev.view(), self.grad_pre.view(), &mut self.wh.grad);
            kernels::sum_rows_acc(&self.grad_pre, &mut self.bias.grad);
            kernels::matmul_a_bt_into(self.grad_pre.view(), &self.wx.value, &mut self.dx);
            kernels::scatter_cols_from(
                grad_input,
                t * self.features..(t + 1) * self.features,
                &self.dx,
            );
            kernels::matmul_a_bt_into(self.grad_pre.view(), &self.wh.value, &mut self.dh_prev);
            std::mem::swap(&mut self.dh, &mut self.dh_prev);
        }
    }

    fn forward_inference_into(
        &self,
        input: MatrixView<'_>,
        scratch: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "SimpleRnn expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        // Ping-pong the hidden state between `scratch` (h_{t-1}) and `out`
        // (h_t): the timestep input is read in place via the strided
        // column-window kernel, so no per-step buffers are needed.
        scratch.resize(batch, self.hidden);
        scratch.fill(0.0);
        for t in 0..self.timesteps {
            kernels::broadcast_rows_into(&self.bias.value, batch, out);
            kernels::matmul_cols_acc(
                input,
                t * self.features..(t + 1) * self.features,
                &self.wx.value,
                out,
            );
            kernels::matmul_acc(scratch.view(), &self.wh.value, out);
            self.activation.apply_inplace(out);
            std::mem::swap(scratch, out);
        }
        std::mem::swap(scratch, out);
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.bias);
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (SimpleRNN) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = SimpleRnn::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn zero_input_zero_bias_gives_zero_hidden_with_tanh() {
        let mut rng = seeded_rng(1);
        let mut layer = SimpleRnn::new(2, 3, 5, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(1, 10));
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_timestep_matches_dense_math() {
        // With one timestep and zero initial hidden state, the RNN reduces to
        // a dense layer with weights Wx.
        let mut rng = seeded_rng(2);
        let mut layer = SimpleRnn::new(2, 2, 1, Activation::Linear, &mut rng);
        let wx = layer.params()[0].value.clone();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = layer.forward(&x);
        assert_eq!(y, x.dot(&wx));
    }

    #[test]
    fn backward_shapes() {
        let mut rng = seeded_rng(3);
        let mut layer = SimpleRnn::new(3, 4, 5, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 15, 0.1);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 4, 1.0));
        assert_eq!(gin.shape(), (2, 15));
        assert_eq!(layer.params()[0].grad.shape(), (3, 4));
        assert_eq!(layer.params()[1].grad.shape(), (4, 4));
        assert_eq!(layer.params()[2].grad.shape(), (1, 4));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = SimpleRnn::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn inference_forward_matches_training_forward() {
        let mut rng = seeded_rng(6);
        let mut layer = SimpleRnn::new(3, 5, 4, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 12, 0.25);
        let expected = layer.forward(&x);
        let mut scratch = Matrix::default();
        let mut out = Matrix::default();
        layer.forward_inference_into(x.view(), &mut scratch, &mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = SimpleRnn::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (SimpleRNN) ReLU");
    }
}
