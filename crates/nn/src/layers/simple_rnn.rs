//! Simple (Elman) recurrent layer with full backpropagation through time.

use rand::rngs::StdRng;

use crate::activation::Activation;
use crate::init::Init;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

/// The base recurrent structure from the paper's Table I (`SimpleRNN`).
///
/// The layer consumes a window of `timesteps` feature rows flattened into one
/// input row of width `timesteps * features`, and emits the final hidden
/// state: `h_t = act(x_t · Wx + h_{t-1} · Wh + b)`.
#[derive(Debug)]
pub struct SimpleRnn {
    wx: Param,
    wh: Param,
    bias: Param,
    activation: Activation,
    features: usize,
    timesteps: usize,
    hidden: usize,
    /// Cached per-timestep inputs (`timesteps` matrices of `batch x features`).
    cached_inputs: Vec<Matrix>,
    /// Cached hidden states `h_0..h_T` (`timesteps + 1` matrices).
    cached_hidden: Vec<Matrix>,
}

impl SimpleRnn {
    /// Creates a SimpleRNN layer over windows of `timesteps` rows of
    /// `features` values each, with `hidden` recurrent units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        features: usize,
        hidden: usize,
        timesteps: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(features > 0 && hidden > 0 && timesteps > 0, "dimensions must be non-zero");
        let init = match activation {
            Activation::ReLU => Init::HeUniform,
            _ => Init::XavierUniform,
        };
        SimpleRnn {
            wx: Param::new(init.sample(features, hidden, rng), "rnn.wx"),
            // Recurrent weights use Xavier regardless of activation; He-scaled
            // recurrent matrices explode over long windows with ReLU.
            wh: Param::new(Init::XavierUniform.sample(hidden, hidden, rng), "rnn.wh"),
            bias: Param::new(Matrix::zeros(1, hidden), "rnn.b"),
            activation,
            features,
            timesteps,
            hidden,
            cached_inputs: Vec::new(),
            cached_hidden: Vec::new(),
        }
    }

    /// Number of recurrent units.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Window length in timesteps.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    fn split_timestep(&self, input: &Matrix, t: usize) -> Matrix {
        input.slice_cols(t * self.features..(t + 1) * self.features)
    }
}

impl Layer for SimpleRnn {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_size(),
            "SimpleRnn expects {} columns ({} timesteps x {} features)",
            self.input_size(),
            self.timesteps,
            self.features
        );
        let batch = input.rows();
        self.cached_inputs.clear();
        self.cached_hidden.clear();
        let mut h = Matrix::zeros(batch, self.hidden);
        self.cached_hidden.push(h.clone());
        for t in 0..self.timesteps {
            let x_t = self.split_timestep(input, t);
            let pre = x_t
                .dot(&self.wx.value)
                .add(&h.dot(&self.wh.value))
                .add_row_broadcast(&self.bias.value);
            h = self.activation.apply(&pre);
            self.cached_inputs.push(x_t);
            self.cached_hidden.push(h.clone());
        }
        h
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert!(
            !self.cached_hidden.is_empty(),
            "backward called before forward"
        );
        let batch = grad_output.rows();
        let mut grad_input = Matrix::zeros(batch, self.input_size());
        let mut dh = grad_output.clone();
        for t in (0..self.timesteps).rev() {
            let h_t = &self.cached_hidden[t + 1];
            let h_prev = &self.cached_hidden[t];
            let x_t = &self.cached_inputs[t];
            let grad_pre = dh.hadamard(&self.activation.derivative(h_t));
            self.wx.accumulate(&x_t.transpose().dot(&grad_pre));
            self.wh.accumulate(&h_prev.transpose().dot(&grad_pre));
            self.bias.accumulate(&grad_pre.sum_rows());
            let dx = grad_pre.dot(&self.wx.value.transpose());
            for r in 0..batch {
                for c in 0..self.features {
                    grad_input[(r, t * self.features + c)] = dx[(r, c)];
                }
            }
            dh = grad_pre.dot(&self.wh.value.transpose());
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn input_size(&self) -> usize {
        self.features * self.timesteps
    }

    fn output_size(&self) -> usize {
        self.hidden
    }

    fn describe(&self) -> String {
        format!("{} (SimpleRNN) {}", self.hidden, self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let mut layer = SimpleRnn::new(6, 6, 4, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(3, 24));
        assert_eq!(out.shape(), (3, 6));
    }

    #[test]
    fn zero_input_zero_bias_gives_zero_hidden_with_tanh() {
        let mut rng = seeded_rng(1);
        let mut layer = SimpleRnn::new(2, 3, 5, Activation::Tanh, &mut rng);
        let out = layer.forward(&Matrix::zeros(1, 10));
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_timestep_matches_dense_math() {
        // With one timestep and zero initial hidden state, the RNN reduces to
        // a dense layer with weights Wx.
        let mut rng = seeded_rng(2);
        let mut layer = SimpleRnn::new(2, 2, 1, Activation::Linear, &mut rng);
        let wx = layer.params()[0].value.clone();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = layer.forward(&x);
        assert_eq!(y, x.dot(&wx));
    }

    #[test]
    fn backward_shapes() {
        let mut rng = seeded_rng(3);
        let mut layer = SimpleRnn::new(3, 4, 5, Activation::Tanh, &mut rng);
        let x = Matrix::filled(2, 15, 0.1);
        let _ = layer.forward(&x);
        let gin = layer.backward(&Matrix::filled(2, 4, 1.0));
        assert_eq!(gin.shape(), (2, 15));
        assert_eq!(layer.params()[0].grad.shape(), (3, 4));
        assert_eq!(layer.params()[1].grad.shape(), (4, 4));
        assert_eq!(layer.params()[2].grad.shape(), (1, 4));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(4);
        let mut layer = SimpleRnn::new(2, 2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn describe_matches_paper_notation() {
        let mut rng = seeded_rng(5);
        let layer = SimpleRnn::new(6, 6, 4, Activation::ReLU, &mut rng);
        assert_eq!(layer.describe(), "6 (SimpleRNN) ReLU");
    }
}
