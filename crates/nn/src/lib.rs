//! # geomancy-nn
//!
//! A from-scratch neural-network library backing the Geomancy reproduction.
//!
//! Geomancy ("Geomancy: Automated Performance Enhancement through Data Layout
//! Optimization", ISPASS 2020) models storage throughput with small neural
//! networks — fully connected stacks plus LSTM/GRU/SimpleRNN variants — and
//! the paper's Table I compares 23 such architectures. This crate provides
//! exactly the machinery needed to train all of them on CPU:
//!
//! - [`matrix::Matrix`] — a minimal dense matrix,
//! - [`layers`] — `Dense`, `SimpleRnn`, `Lstm`, `Gru` with full BPTT,
//! - [`activation::Activation`] — ReLU / Linear / Sigmoid / Tanh,
//! - [`optimizer`] — SGD (the paper's choice) and Adam (its rejected
//!   alternative),
//! - [`training`] — the 60/20/20 split, epoch loop, and timing harness, and
//! - [`metrics`] — the mean-absolute-relative-error statistic of Tables
//!   II/III, including the "Diverged" detection rule.
//!
//! # Examples
//!
//! Train the paper's model 10 (`Z (Dense) ReLU` ×4, `1 (Dense) Linear`) on a
//! toy regression task:
//!
//! ```
//! use geomancy_nn::activation::Activation;
//! use geomancy_nn::init::seeded_rng;
//! use geomancy_nn::layers::Dense;
//! use geomancy_nn::loss::Loss;
//! use geomancy_nn::matrix::Matrix;
//! use geomancy_nn::network::Sequential;
//! use geomancy_nn::optimizer::Sgd;
//!
//! let z = 2;
//! let mut rng = seeded_rng(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(z, z, Activation::ReLU, &mut rng));
//! net.push(Dense::new(z, z, Activation::ReLU, &mut rng));
//! net.push(Dense::new(z, 1, Activation::Linear, &mut rng));
//!
//! let x = Matrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]);
//! let y = Matrix::from_rows(&[&[1.0], &[0.5]]);
//! let mut opt = Sgd::new(0.05);
//! for _ in 0..100 {
//!     net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
//! }
//! assert!(Loss::MeanSquaredError.compute(&net.predict(&x), &y) < 0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod param;
pub mod spec;
pub mod training;

pub use activation::Activation;
pub use layers::{Dense, Gru, Layer, Lstm, SimpleRnn};
pub use loss::Loss;
pub use matrix::Matrix;
pub use metrics::RelativeError;
pub use network::Sequential;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use spec::{Checkpoint, LayerSpec, NetworkSpec};
pub use training::{train, DataSplit, TrainConfig, TrainReport};
