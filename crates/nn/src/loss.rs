//! Loss functions for regression training.

use crate::matrix::{Matrix, MatrixView};

/// Loss function used by the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loss {
    /// Mean squared error: `mean((pred - target)^2)`.
    MeanSquaredError,
    /// Mean absolute error: `mean(|pred - target|)`.
    MeanAbsoluteError,
}

impl Loss {
    /// Scalar loss over a batch.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    pub fn compute(self, prediction: &Matrix, target: &Matrix) -> f64 {
        self.compute_view(prediction.view(), target.view())
    }

    /// Scalar loss over a batch held in borrowed views (no copies).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    pub fn compute_view(self, prediction: MatrixView<'_>, target: MatrixView<'_>) -> f64 {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        assert!(!prediction.is_empty(), "loss over empty batch");
        let n = prediction.len() as f64;
        let pairs = prediction.as_slice().iter().zip(target.as_slice());
        match self {
            Loss::MeanSquaredError => pairs.map(|(&p, &t)| (p - t) * (p - t)).sum::<f64>() / n,
            Loss::MeanAbsoluteError => pairs.map(|(&p, &t)| (p - t).abs()).sum::<f64>() / n,
        }
    }

    /// Gradient of the loss with respect to the prediction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    pub fn gradient(self, prediction: &Matrix, target: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(prediction.rows(), prediction.cols());
        self.gradient_into(prediction.view(), target.view(), &mut out);
        out
    }

    /// Writes the loss gradient into a caller-provided buffer (resized to
    /// the prediction's shape), allocating nothing in steady state.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    pub fn gradient_into(
        self,
        prediction: MatrixView<'_>,
        target: MatrixView<'_>,
        out: &mut Matrix,
    ) {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        assert!(!prediction.is_empty(), "loss over empty batch");
        let n = prediction.len() as f64;
        out.resize(prediction.rows(), prediction.cols());
        let triples = out
            .as_mut_slice()
            .iter_mut()
            .zip(prediction.as_slice().iter().zip(target.as_slice()));
        match self {
            Loss::MeanSquaredError => {
                for (o, (&p, &t)) in triples {
                    *o = 2.0 * (p - t) / n;
                }
            }
            Loss::MeanAbsoluteError => {
                for (o, (&p, &t)) in triples {
                    *o = if p > t {
                        1.0 / n
                    } else if p < t {
                        -1.0 / n
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let t = Matrix::row_vector(&[0.0, 4.0]);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((Loss::MeanSquaredError.compute(&p, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let t = Matrix::row_vector(&[0.0, 4.0]);
        assert!((Loss::MeanAbsoluteError.compute(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_loss_at_target() {
        let p = Matrix::row_vector(&[3.0, -1.0]);
        assert_eq!(Loss::MeanSquaredError.compute(&p, &p), 0.0);
        assert_eq!(Loss::MeanAbsoluteError.compute(&p, &p), 0.0);
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let p = Matrix::row_vector(&[1.0, -2.0, 0.5]);
        let t = Matrix::row_vector(&[0.5, 1.0, 0.5]);
        let g = Loss::MeanSquaredError.gradient(&p, &t);
        let eps = 1e-6;
        for k in 0..3 {
            let mut plus = p.clone();
            plus.as_mut_slice()[k] += eps;
            let mut minus = p.clone();
            minus.as_mut_slice()[k] -= eps;
            let numeric = (Loss::MeanSquaredError.compute(&plus, &t)
                - Loss::MeanSquaredError.compute(&minus, &t))
                / (2.0 * eps);
            assert!((numeric - g.as_slice()[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn mae_gradient_sign() {
        let p = Matrix::row_vector(&[2.0, -2.0]);
        let t = Matrix::row_vector(&[0.0, 0.0]);
        let g = Loss::MeanAbsoluteError.gradient(&p, &t);
        assert!(g.as_slice()[0] > 0.0);
        assert!(g.as_slice()[1] < 0.0);
    }

    #[test]
    #[should_panic(expected = "loss shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = Loss::MeanSquaredError.compute(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
