//! Allocation-free compute kernels behind the network's hot path.
//!
//! Every kernel writes into a caller-provided output buffer ([`Matrix`]es
//! are resized in place, reusing their allocation), takes its batch operand
//! as a borrowed [`MatrixView`], and handles transposed operands by choosing
//! a traversal order that never materializes a transposed copy:
//!
//! - [`matmul_into`] / [`matmul_acc`] — `out = / += a · b`, register-blocked
//!   `i-k-j` with the shared dimension tiled so the `b` panel stays cache
//!   resident while streaming rows of `a`,
//! - [`matmul_at_b_acc`] — `out += aᵀ · b` (weight gradients `xᵀ · g`)
//!   walked as rank-1 updates over the shared batch dimension, all accesses
//!   contiguous,
//! - [`matmul_a_bt_into`] / [`matmul_a_bt_acc`] — `out = / += a · bᵀ`
//!   (input gradients `g · Wᵀ`) as row-by-row dot products, both operands
//!   read contiguously,
//! - [`matmul_bias_act_into`] — the fused dense forward
//!   `out = act(x · W + b)`: bias initialization, product accumulation and
//!   activation in one buffer, no broadcast copy or pre-activation
//!   temporary,
//! - element-wise helpers ([`hadamard_act_derivative_into`],
//!   [`sum_rows_acc`], [`add_row_broadcast_inplace`], [`slice_cols_into`],
//!   [`scatter_cols_from`]) for the backward pass and the recurrent layers'
//!   timestep handling,
//! - fused recurrent element-wise passes ([`lstm_state_forward`],
//!   [`lstm_backward_elementwise`], [`gru_backward_gates`],
//!   [`gru_backward_reset`], [`hadamard_into`], [`mul_add_mul_into`],
//!   [`convex_combine_into`], [`act_into`]) — the single source of truth
//!   for the LSTM/GRU gate and state math previously open-coded in the
//!   layer files.
//!
//! ## Backends
//!
//! Each kernel has two implementations behind one-time runtime dispatch:
//!
//! - [`scalar`] — the portable blocked/unrolled loops (public, so tests and
//!   benchmarks can pin this backend regardless of the host),
//! - an AVX2+FMA backend (x86-64 only) with explicit 4×f64
//!   `_mm256_fmadd_pd` lanes in every inner loop.
//!
//! [`backend`] resolves once per process (cached in an atomic): the SIMD
//! backend is chosen iff the CPU reports AVX2 and FMA via
//! `is_x86_feature_detected!` and the `GEOMANCY_FORCE_SCALAR` environment
//! variable is unset (any value other than `0`/empty forces the scalar
//! backend, keeping the fallback testable on every machine). Transcendental
//! activations (sigmoid, tanh) always evaluate through the same scalar
//! `f64::exp`/`f64::tanh` calls on both backends — only polynomial
//! arithmetic is vectorized — so backends agree to well under the 1e-12
//! relative tolerance the equivalence proptests enforce (FMA keeps infinite
//! precision on the inner multiply, so products are *more* accurate, not
//! less, than the scalar path).
//!
//! [`reference`] retains the original naive implementations as the oracle
//! for the property-based equivalence tests and the "before" side of the
//! kernel benchmarks.

use super::{Matrix, MatrixView};
use crate::activation::Activation;

pub mod reference;
pub mod scalar;
mod simd;

pub use simd::{backend, backend_name, force_backend, KernelBackend};

/// Tile width of the shared (`k`) dimension: 32 rows of `b` (a panel of
/// `32 x n` f64s) stay L1/L2-resident while every row of `a` streams
/// over them.
pub(crate) const KC: usize = 32;

pub(crate) fn assert_mul_shapes(m: (usize, usize), n: (usize, usize), op: &str) {
    assert_eq!(
        m.1, n.0,
        "shape mismatch for {op}: {}x{} * {}x{}",
        m.0, m.1, n.0, n.1
    );
}

/// True when the active backend is the AVX2+FMA one (compile-time false on
/// non-x86-64 targets, so the scalar arms below are statically selected).
#[inline]
fn simd_active() -> bool {
    cfg!(target_arch = "x86_64") && backend() == KernelBackend::Avx2Fma
}

/// `out = a · b`, resizing `out` to `a.rows x b.cols`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_mul_shapes(a.shape(), b.shape(), "matmul");
    out.resize(a.rows(), b.cols());
    out.fill(0.0);
    matmul_acc(a, b, out);
}

/// `out += a · b`; `out` must already be `a.rows x b.cols`.
///
/// Register-blocked `i-k-j`: four rows of `b` are combined per pass over
/// an output row, and the `k` dimension is tiled by [`KC`] so the active
/// panel of `b` stays cache resident. On AVX2/FMA hosts the inner `j` loop
/// runs 4 f64 lanes per `_mm256_fmadd_pd`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn matmul_acc(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_mul_shapes(a.shape(), b.shape(), "matmul");
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul output shape mismatch"
    );
    let (m, k, n) = (a.rows(), b.rows(), b.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: shapes validated above; AVX2+FMA presence is established
        // by the dispatch table before this arm is reachable.
        unsafe {
            simd::matmul_panel_acc(
                m,
                k,
                n,
                a.as_slice(),
                k,
                0,
                1,
                b.as_slice(),
                out.as_mut_slice(),
            );
        }
        return;
    }
    scalar::panel_acc(
        m,
        k,
        n,
        a.as_slice(),
        k,
        0,
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `out += aᵀ · b` without materializing `aᵀ`; `out` must already be
/// `a.cols x b.cols`.
///
/// This is the weight-gradient product `xᵀ · grad`: the scalar backend
/// walks the shared batch dimension outermost (a sequence of contiguous
/// rank-1 row updates); the SIMD backend feeds the register-blocked
/// matmul panel with a column-strided A walk instead.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn matmul_at_b_acc(a: MatrixView<'_>, b: MatrixView<'_>, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "shape mismatch for matmul_at_b: {}x{}ᵀ * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.cols(), b.cols()),
        "matmul_at_b output shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let (m, p, n) = (a.rows(), a.cols(), b.cols());
        // SAFETY: shapes validated above; backend implies AVX2+FMA.
        unsafe {
            simd::matmul_at_b_acc(m, p, n, a.as_slice(), b.as_slice(), out.as_mut_slice());
        }
        return;
    }
    scalar::matmul_at_b_acc(a, b, out);
}

/// `out = a · bᵀ` without materializing `bᵀ`, resizing `out` to
/// `a.rows x b.rows`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt_into(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    out.resize(a.rows(), b.rows());
    out.fill(0.0);
    matmul_a_bt_acc(a, b, out);
}

/// `out += a · bᵀ`; `out` must already be `a.rows x b.rows`.
///
/// This is the input-gradient product `grad · Wᵀ`: each output element
/// is a dot product of two contiguous rows — 4-wide unrolled partial sums
/// on the scalar backend, 4×f64 FMA lanes with a horizontal reduction on
/// the SIMD backend.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn matmul_a_bt_acc(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "shape mismatch for matmul_a_bt: {}x{} * {}x{}ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.rows()),
        "matmul_a_bt output shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let (m, k, q) = (a.rows(), a.cols(), b.rows());
        // SAFETY: shapes validated above; backend implies AVX2+FMA.
        unsafe {
            simd::matmul_a_bt_acc(m, k, q, a.as_slice(), b.as_slice(), out.as_mut_slice());
        }
        return;
    }
    scalar::matmul_a_bt_acc(a, b, out);
}

/// Fused dense forward `out = act(x · w + bias)`, resizing `out` to
/// `x.rows x w.cols`.
///
/// Each output row is initialized with the bias, the product accumulates
/// on top, and the activation is applied in place — one buffer, no
/// broadcast copy, no pre-activation temporary.
///
/// # Panics
///
/// Panics if `x.cols() != w.rows()` or `bias` is not `1 x w.cols()`.
pub fn matmul_bias_act_into(
    x: MatrixView<'_>,
    w: &Matrix,
    bias: &Matrix,
    act: Activation,
    out: &mut Matrix,
) {
    assert_mul_shapes(x.shape(), w.shape(), "matmul");
    assert_eq!(
        bias.shape(),
        (1, w.cols()),
        "bias must be 1x{} for fused forward",
        w.cols()
    );
    let n = w.cols();
    out.resize(x.rows(), n);
    let bias_row = bias.as_slice();
    for orow in out.as_mut_slice().chunks_exact_mut(n.max(1)) {
        orow.copy_from_slice(bias_row);
    }
    matmul_acc(x, w, out);
    apply_act_inplace(act, out);
}

/// Applies an activation in place, routing ReLU through the SIMD backend
/// when active; sigmoid/tanh always use the scalar transcendentals so both
/// backends evaluate bit-identical `exp`/`tanh`.
fn apply_act_inplace(act: Activation, m: &mut Matrix) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() && act == Activation::ReLU {
        // SAFETY: backend implies AVX2+FMA.
        unsafe { simd::relu(m.as_mut_slice()) };
        return;
    }
    act.apply_inplace(m);
}

/// `out = act(src)`, resizing `out` to match — the out-of-place activation
/// used by the LSTM cell-output pass (`a = φ(c)`).
///
/// ReLU runs on SIMD lanes when the AVX2 backend is active; sigmoid/tanh
/// share the scalar transcendental code on both backends.
pub fn act_into(src: &Matrix, act: Activation, out: &mut Matrix) {
    out.resize(src.rows(), src.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() && act == Activation::ReLU {
        // SAFETY: slices have equal length after the resize above.
        unsafe { simd::relu_to(src.as_slice(), out.as_mut_slice()) };
        return;
    }
    act.apply_to_slice(src.as_slice(), out.as_mut_slice());
}

/// `out = grad_output ⊙ act'(output)`, the backward fusion of the
/// Hadamard product with the activation derivative (computed from the
/// activated output, never materialized as its own matrix). Resizes
/// `out` to match.
///
/// Every supported derivative is polynomial in the activated output, so
/// the SIMD backend vectorizes all four activations.
///
/// # Panics
///
/// Panics if `grad_output` and `output` shapes differ.
pub fn hadamard_act_derivative_into(
    grad_output: &Matrix,
    output: &Matrix,
    act: Activation,
    out: &mut Matrix,
) {
    assert_eq!(
        grad_output.shape(),
        output.shape(),
        "shape mismatch for hadamard_act_derivative"
    );
    out.resize(grad_output.rows(), grad_output.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: slices have equal length after the resize above.
        unsafe {
            simd::hadamard_act_derivative(
                grad_output.as_slice(),
                output.as_slice(),
                act,
                out.as_mut_slice(),
            );
        }
        return;
    }
    scalar::hadamard_act_derivative_into(grad_output, output, act, out);
}

/// `out += column sums of a` (the bias gradient); `out` must be
/// `1 x a.cols()`.
///
/// # Panics
///
/// Panics if `out` is not `1 x a.cols()`.
pub fn sum_rows_acc(a: &Matrix, out: &mut Matrix) {
    assert_eq!(out.shape(), (1, a.cols()), "sum_rows output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: output width validated above.
        unsafe { simd::sum_rows_acc(a.rows(), a.cols(), a.as_slice(), out.as_mut_slice()) };
        return;
    }
    scalar::sum_rows_acc(a, out);
}

/// `out = a ⊙ b`, resizing `out` to match (the recurrent layers' gate
/// products, e.g. GRU's `r ⊙ h_prev` and LSTM's `h = o ⊙ φ(c)`).
///
/// # Panics
///
/// Panics if `a` and `b` shapes differ.
pub fn hadamard_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch for hadamard_into");
    out.resize(a.rows(), a.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: slices have equal length after the shape checks above.
        unsafe { simd::hadamard(a.as_slice(), b.as_slice(), out.as_mut_slice()) };
        return;
    }
    scalar::hadamard_into(a, b, out);
}

/// `out = a ⊙ b + c ⊙ d`, resizing `out` to match — the LSTM cell-state
/// update `c_t = f ⊙ c_{t-1} + i ⊙ g` as one fused pass.
///
/// # Panics
///
/// Panics if the four input shapes differ.
pub fn mul_add_mul_into(a: &Matrix, b: &Matrix, c: &Matrix, d: &Matrix, out: &mut Matrix) {
    assert!(
        a.shape() == b.shape() && a.shape() == c.shape() && a.shape() == d.shape(),
        "shape mismatch for mul_add_mul_into"
    );
    out.resize(a.rows(), a.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: slices have equal length after the shape checks above.
        unsafe {
            simd::mul_add_mul(
                a.as_slice(),
                b.as_slice(),
                c.as_slice(),
                d.as_slice(),
                out.as_mut_slice(),
            );
        }
        return;
    }
    scalar::mul_add_mul_into(a, b, c, d, out);
}

/// `out = (1 - t) ⊙ a + t ⊙ b`, resizing `out` to match — the GRU hidden
/// update `h_t = (1 - z) ⊙ h_{t-1} + z ⊙ h̃` as one fused pass.
///
/// # Panics
///
/// Panics if the three input shapes differ.
pub fn convex_combine_into(t: &Matrix, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert!(
        t.shape() == a.shape() && t.shape() == b.shape(),
        "shape mismatch for convex_combine_into"
    );
    out.resize(t.rows(), t.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: slices have equal length after the shape checks above.
        unsafe {
            simd::convex_combine(t.as_slice(), a.as_slice(), b.as_slice(), out.as_mut_slice());
        }
        return;
    }
    scalar::convex_combine_into(t, a, b, out);
}

/// Fused LSTM state update: `c = f ⊙ c_prev + i ⊙ g`, `a = act(c)`,
/// `h = o ⊙ a`, resizing all three outputs to the gate shape.
///
/// Composed of the dispatched primitives so the polynomial passes run on
/// SIMD lanes while `act` shares the scalar transcendental code.
///
/// # Panics
///
/// Panics if the gate shapes differ.
#[allow(clippy::too_many_arguments)] // the five gates plus three state outputs
pub fn lstm_state_forward(
    i: &Matrix,
    f: &Matrix,
    o: &Matrix,
    g: &Matrix,
    c_prev: &Matrix,
    act: Activation,
    c: &mut Matrix,
    a: &mut Matrix,
    h: &mut Matrix,
) {
    mul_add_mul_into(f, c_prev, i, g, c);
    act_into(c, act, a);
    hadamard_into(o, a, h);
}

/// Fused LSTM backward element-wise pass. For every element:
///
/// ```text
/// dc_total  = dc + dh ⊙ o ⊙ act'(a)
/// dz_o      = dh ⊙ a ⊙ σ'(o)
/// dz_f      = dc_total ⊙ c_prev ⊙ σ'(f)
/// dz_i      = dc_total ⊙ g ⊙ σ'(i)
/// dz_g      = dc_total ⊙ i ⊙ act'(g)
/// dc_prev   = dc_total ⊙ f
/// ```
///
/// All derivatives are polynomial in the cached activations, so the SIMD
/// backend vectorizes the whole pass. Outputs are resized to match.
///
/// # Panics
///
/// Panics if any input shape differs from `dh`'s.
#[allow(clippy::too_many_arguments)] // the LSTM cell's full cached state
pub fn lstm_backward_elementwise(
    dh: &Matrix,
    dc: &Matrix,
    a: &Matrix,
    o: &Matrix,
    i: &Matrix,
    f: &Matrix,
    g: &Matrix,
    c_prev: &Matrix,
    act: Activation,
    dz_i: &mut Matrix,
    dz_f: &mut Matrix,
    dz_o: &mut Matrix,
    dz_g: &mut Matrix,
    dc_prev: &mut Matrix,
) {
    for m in [dc, a, o, i, f, g, c_prev] {
        assert_eq!(
            m.shape(),
            dh.shape(),
            "shape mismatch for lstm_backward_elementwise"
        );
    }
    for out in [
        &mut *dz_i,
        &mut *dz_f,
        &mut *dz_o,
        &mut *dz_g,
        &mut *dc_prev,
    ] {
        out.resize(dh.rows(), dh.cols());
    }
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: every slice has `dh.len()` elements after the checks and
        // resizes above.
        unsafe {
            simd::lstm_backward_elementwise(
                dh.as_slice(),
                dc.as_slice(),
                a.as_slice(),
                o.as_slice(),
                i.as_slice(),
                f.as_slice(),
                g.as_slice(),
                c_prev.as_slice(),
                act,
                dz_i.as_mut_slice(),
                dz_f.as_mut_slice(),
                dz_o.as_mut_slice(),
                dz_g.as_mut_slice(),
                dc_prev.as_mut_slice(),
            );
        }
        return;
    }
    scalar::lstm_backward_elementwise(
        dh, dc, a, o, i, f, g, c_prev, act, dz_i, dz_f, dz_o, dz_g, dc_prev,
    );
}

/// Fused GRU backward pass for the hidden update
/// `h = (1 - z) ⊙ h_prev + z ⊙ h̃`. For every element:
///
/// ```text
/// dz_pre    = dh ⊙ (h̃ - h_prev) ⊙ σ'(z)
/// dcand_pre = dh ⊙ z ⊙ act'(h̃)
/// dh_prev   = dh ⊙ (1 - z)
/// ```
///
/// Outputs are resized to match.
///
/// # Panics
///
/// Panics if any input shape differs from `dh`'s.
#[allow(clippy::too_many_arguments)] // the GRU update's full cached state
pub fn gru_backward_gates(
    dh: &Matrix,
    z: &Matrix,
    cand: &Matrix,
    h_prev: &Matrix,
    act: Activation,
    dz_pre: &mut Matrix,
    dcand_pre: &mut Matrix,
    dh_prev: &mut Matrix,
) {
    for m in [z, cand, h_prev] {
        assert_eq!(
            m.shape(),
            dh.shape(),
            "shape mismatch for gru_backward_gates"
        );
    }
    for out in [&mut *dz_pre, &mut *dcand_pre, &mut *dh_prev] {
        out.resize(dh.rows(), dh.cols());
    }
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: every slice has `dh.len()` elements after the checks and
        // resizes above.
        unsafe {
            simd::gru_backward_gates(
                dh.as_slice(),
                z.as_slice(),
                cand.as_slice(),
                h_prev.as_slice(),
                act,
                dz_pre.as_mut_slice(),
                dcand_pre.as_mut_slice(),
                dh_prev.as_mut_slice(),
            );
        }
        return;
    }
    scalar::gru_backward_gates(dh, z, cand, h_prev, act, dz_pre, dcand_pre, dh_prev);
}

/// Fused GRU backward pass for the reset gate. For every element:
///
/// ```text
/// dr_pre   = d_rh ⊙ h_prev ⊙ σ'(r)
/// dh_prev += d_rh ⊙ r            (accumulates — dh_prev is NOT resized)
/// rh       = r ⊙ h_prev
/// ```
///
/// `dr_pre` and `rh` are resized to match; `dh_prev` must already have the
/// input shape because it accumulates on top of the update-gate pass.
///
/// # Panics
///
/// Panics if any shape (including `dh_prev`'s) differs from `d_rh`'s.
pub fn gru_backward_reset(
    d_rh: &Matrix,
    r: &Matrix,
    h_prev: &Matrix,
    dr_pre: &mut Matrix,
    dh_prev: &mut Matrix,
    rh: &mut Matrix,
) {
    for m in [r, h_prev] {
        assert_eq!(
            m.shape(),
            d_rh.shape(),
            "shape mismatch for gru_backward_reset"
        );
    }
    assert_eq!(
        dh_prev.shape(),
        d_rh.shape(),
        "gru_backward_reset accumulates into dh_prev; shape must match"
    );
    dr_pre.resize(d_rh.rows(), d_rh.cols());
    rh.resize(d_rh.rows(), d_rh.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: every slice has `d_rh.len()` elements after the checks
        // and resizes above.
        unsafe {
            simd::gru_backward_reset(
                d_rh.as_slice(),
                r.as_slice(),
                h_prev.as_slice(),
                dr_pre.as_mut_slice(),
                dh_prev.as_mut_slice(),
                rh.as_mut_slice(),
            );
        }
        return;
    }
    scalar::gru_backward_reset(d_rh, r, h_prev, dr_pre, dh_prev, rh);
}

/// Adds a `1 x cols` row vector to every row of `m`, in place (compare
/// [`Matrix::add_row_broadcast`], which clones).
///
/// # Panics
///
/// Panics if `bias` is not `1 x m.cols()`.
pub fn add_row_broadcast_inplace(m: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.shape(), (1, m.cols()), "broadcast width mismatch");
    let n = m.cols();
    let bias_row = bias.as_slice();
    for row in m.as_mut_slice().chunks_exact_mut(n.max(1)) {
        for (v, &b) in row.iter_mut().zip(bias_row) {
            *v += b;
        }
    }
}

/// Fills `out` (resized to `rows x bias.cols()`) with `bias` repeated on
/// every row — the zero-copy way to seed a pre-activation buffer before
/// accumulating matrix products on top.
///
/// # Panics
///
/// Panics if `bias` has more than one row.
pub fn broadcast_rows_into(bias: &Matrix, rows: usize, out: &mut Matrix) {
    assert_eq!(bias.rows(), 1, "broadcast source must be a row vector");
    let n = bias.cols();
    out.resize(rows, n);
    let bias_row = bias.as_slice();
    for row in out.as_mut_slice().chunks_exact_mut(n.max(1)) {
        row.copy_from_slice(bias_row);
    }
}

/// `out += a[:, cols] · b` reading the column window of `a` in place —
/// the recurrent layers' per-timestep product `x_t · W` without copying
/// `x_t` out first.
///
/// Mirrors `matmul_acc`'s traversal (KC blocking + 4-wide unroll, SIMD
/// lanes on the AVX2 backend) so results are identical to copying the
/// window out and calling `matmul_acc` — the layer tests rely on that
/// equivalence.
///
/// # Panics
///
/// Panics if the column range is out of bounds or `b.rows()` differs
/// from the window width, or `out` is not `a.rows x b.cols`.
pub fn matmul_cols_acc(
    a: MatrixView<'_>,
    cols: std::ops::Range<usize>,
    b: &Matrix,
    out: &mut Matrix,
) {
    assert!(
        cols.start <= cols.end && cols.end <= a.cols(),
        "column range out of bounds"
    );
    assert_eq!(
        cols.end - cols.start,
        b.rows(),
        "shape mismatch for matmul_cols: window {} * {}x{}",
        cols.end - cols.start,
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul_cols output shape mismatch"
    );
    let (m, k, n) = (a.rows(), cols.end - cols.start, b.cols());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: the window is in bounds for every row (checked above);
        // backend implies AVX2+FMA.
        unsafe {
            simd::matmul_panel_acc(
                m,
                k,
                n,
                a.as_slice(),
                a.cols(),
                cols.start,
                1,
                b.as_slice(),
                out.as_mut_slice(),
            );
        }
        return;
    }
    scalar::panel_acc(
        m,
        k,
        n,
        a.as_slice(),
        a.cols(),
        cols.start,
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// Copies columns `range` of `src` into `out` (resized to fit) — the
/// recurrent layers' per-timestep input extraction, reusing one buffer
/// instead of allocating a fresh `slice_cols` copy per step.
///
/// # Panics
///
/// Panics if the range is out of bounds or reversed.
pub fn slice_cols_into(src: MatrixView<'_>, range: std::ops::Range<usize>, out: &mut Matrix) {
    assert!(
        range.start <= range.end && range.end <= src.cols(),
        "column range out of bounds"
    );
    let w = range.end - range.start;
    out.resize(src.rows(), w);
    let od = out.as_mut_slice();
    for r in 0..src.rows() {
        let srow = &src.row(r)[range.start..range.end];
        od[r * w..(r + 1) * w].copy_from_slice(srow);
    }
}

/// Copies `src` into the column window `range` of `dst`, row by row — the
/// inverse of [`slice_cols_into`], used by the recurrent layers to write
/// each timestep's input gradient into its slot of the flattened
/// `grad_input` window without an intermediate copy.
///
/// # Panics
///
/// Panics if the range is out of bounds, reversed, or `src` is not
/// `dst.rows x range.len()`.
pub fn scatter_cols_from(dst: &mut Matrix, range: std::ops::Range<usize>, src: &Matrix) {
    assert!(
        range.start <= range.end && range.end <= dst.cols(),
        "column range out of bounds"
    );
    assert_eq!(
        src.shape(),
        (dst.rows(), range.end - range.start),
        "scatter_cols source shape mismatch"
    );
    let width = dst.cols();
    let dd = dst.as_mut_slice();
    for r in 0..src.rows() {
        dd[r * width + range.start..r * width + range.end].copy_from_slice(src.row(r));
    }
}
