//! The original scalar implementations, retained verbatim (minus the
//! data-dependent zero-skip branch the old `dot` carried) as the oracle
//! for property-based kernel-equivalence tests and as the "before" side
//! of the kernel benchmarks.

use super::super::Matrix;
use crate::activation::Activation;

/// Naive `a · b`: the seed's scalar `i-k-j` triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "shape mismatch for reference matmul");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Naive `aᵀ · b` via a materialized transpose, as the seed layers
/// computed weight gradients.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    matmul(&a.transpose(), b)
}

/// Naive `a · bᵀ` via a materialized transpose, as the seed layers
/// computed input gradients.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    matmul(a, &b.transpose())
}

/// Naive dense forward `act(x · w + bias)` with a broadcast copy and
/// a separate activation pass, as the seed `Dense::forward` did.
pub fn dense_forward(x: &Matrix, w: &Matrix, bias: &Matrix, act: Activation) -> Matrix {
    act.apply(&matmul(x, w).add_row_broadcast(bias))
}
