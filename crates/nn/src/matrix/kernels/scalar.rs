//! Portable scalar backend: the cache-blocked, 4-way-unrolled loops that
//! were the only implementation before the SIMD backend landed.
//!
//! Public so tests and benchmarks can pin this backend explicitly (the
//! dispatched functions in the parent module route here when the host lacks
//! AVX2/FMA or `GEOMANCY_FORCE_SCALAR` is set). Shape checking lives here
//! too, so calling `scalar::*` directly is exactly as safe as the
//! dispatched API.

use super::super::{Matrix, MatrixView};
use super::{assert_mul_shapes, KC};
use crate::activation::Activation;

/// `out = a · b`, resizing `out` — scalar-pinned [`super::matmul_into`].
pub fn matmul_into(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_mul_shapes(a.shape(), b.shape(), "matmul");
    out.resize(a.rows(), b.cols());
    out.fill(0.0);
    matmul_acc(a, b, out);
}

/// `out += a · b` — scalar-pinned [`super::matmul_acc`].
pub fn matmul_acc(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_mul_shapes(a.shape(), b.shape(), "matmul");
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul output shape mismatch"
    );
    let (m, k, n) = (a.rows(), b.rows(), b.cols());
    panel_acc(
        m,
        k,
        n,
        a.as_slice(),
        k,
        0,
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `out += a[:, cols] · b` — scalar-pinned [`super::matmul_cols_acc`].
pub fn matmul_cols_acc(
    a: MatrixView<'_>,
    cols: std::ops::Range<usize>,
    b: &Matrix,
    out: &mut Matrix,
) {
    assert!(
        cols.start <= cols.end && cols.end <= a.cols(),
        "column range out of bounds"
    );
    assert_eq!(
        cols.end - cols.start,
        b.rows(),
        "shape mismatch for matmul_cols: window {} * {}x{}",
        cols.end - cols.start,
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul_cols output shape mismatch"
    );
    let (m, k, n) = (a.rows(), cols.end - cols.start, b.cols());
    panel_acc(
        m,
        k,
        n,
        a.as_slice(),
        a.cols(),
        cols.start,
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// The shared blocked-matmul body: `out[m x n] += A_window · b` where row
/// `i` of the `A` window is `ad[i*stride + off ..][..k]`. `stride == k`,
/// `off == 0` is the plain dense case; a column window of a wider matrix
/// passes its full row stride and window start.
///
/// Register-blocked `i-k-j`: four rows of `b` are combined per pass over an
/// output row, and the `k` dimension is tiled by [`KC`] so the active panel
/// of `b` stays cache resident. The SIMD backend mirrors this traversal
/// with 4×f64 lanes in the `j` loop.
#[allow(clippy::too_many_arguments)] // raw-slice mirror of the SIMD body
pub(super) fn panel_acc(
    m: usize,
    k: usize,
    n: usize,
    ad: &[f64],
    stride: usize,
    off: usize,
    bd: &[f64],
    od: &mut [f64],
) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        for i in 0..m {
            let arow = &ad[i * stride + off..i * stride + off + k];
            let orow = &mut od[i * n..(i + 1) * n];
            let mut p = kb;
            while p + 4 <= kend {
                let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                let b0 = &bd[p * n..(p + 1) * n];
                let b1 = &bd[(p + 1) * n..(p + 2) * n];
                let b2 = &bd[(p + 2) * n..(p + 3) * n];
                let b3 = &bd[(p + 3) * n..(p + 4) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                p += 4;
            }
            while p < kend {
                let av = arow[p];
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
                p += 1;
            }
        }
        kb = kend;
    }
}

/// `out += aᵀ · b` — scalar-pinned [`super::matmul_at_b_acc`].
pub fn matmul_at_b_acc(a: MatrixView<'_>, b: MatrixView<'_>, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "shape mismatch for matmul_at_b: {}x{}ᵀ * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.cols(), b.cols()),
        "matmul_at_b output shape mismatch"
    );
    let (m, p, n) = (a.rows(), a.cols(), b.cols());
    let ad = a.as_slice();
    let bd = b.as_slice();
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * p..(i + 1) * p];
        let brow = &bd[i * n..(i + 1) * n];
        for (pi, &av) in arow.iter().enumerate() {
            let orow = &mut od[pi * n..(pi + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a · bᵀ`, resizing `out` — scalar-pinned [`super::matmul_a_bt_into`].
pub fn matmul_a_bt_into(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    out.resize(a.rows(), b.rows());
    out.fill(0.0);
    matmul_a_bt_acc(a, b, out);
}

/// `out += a · bᵀ` — scalar-pinned [`super::matmul_a_bt_acc`].
pub fn matmul_a_bt_acc(a: MatrixView<'_>, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "shape mismatch for matmul_a_bt: {}x{} * {}x{}ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.rows()),
        "matmul_a_bt output shape mismatch"
    );
    let (m, k, q) = (a.rows(), a.cols(), b.rows());
    let ad = a.as_slice();
    let bd = b.as_slice();
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * q..(i + 1) * q];
        for (r, o) in orow.iter_mut().enumerate() {
            let brow = &bd[r * k..(r + 1) * k];
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            let mut s2 = 0.0;
            let mut s3 = 0.0;
            let mut p = 0;
            while p + 4 <= k {
                s0 += arow[p] * brow[p];
                s1 += arow[p + 1] * brow[p + 1];
                s2 += arow[p + 2] * brow[p + 2];
                s3 += arow[p + 3] * brow[p + 3];
                p += 4;
            }
            let mut s = (s0 + s1) + (s2 + s3);
            while p < k {
                s += arow[p] * brow[p];
                p += 1;
            }
            *o += s;
        }
    }
}

/// Fused dense forward — scalar-pinned [`super::matmul_bias_act_into`].
pub fn matmul_bias_act_into(
    x: MatrixView<'_>,
    w: &Matrix,
    bias: &Matrix,
    act: Activation,
    out: &mut Matrix,
) {
    assert_mul_shapes(x.shape(), w.shape(), "matmul");
    assert_eq!(
        bias.shape(),
        (1, w.cols()),
        "bias must be 1x{} for fused forward",
        w.cols()
    );
    let n = w.cols();
    out.resize(x.rows(), n);
    let bias_row = bias.as_slice();
    for orow in out.as_mut_slice().chunks_exact_mut(n.max(1)) {
        orow.copy_from_slice(bias_row);
    }
    matmul_acc(x, w, out);
    act.apply_inplace(out);
}

/// `out = grad ⊙ act'(output)` — scalar-pinned
/// [`super::hadamard_act_derivative_into`].
pub fn hadamard_act_derivative_into(
    grad_output: &Matrix,
    output: &Matrix,
    act: Activation,
    out: &mut Matrix,
) {
    assert_eq!(
        grad_output.shape(),
        output.shape(),
        "shape mismatch for hadamard_act_derivative"
    );
    out.resize(grad_output.rows(), grad_output.cols());
    for ((o, &g), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(grad_output.as_slice())
        .zip(output.as_slice())
    {
        *o = g * act.derivative_from_output(y);
    }
}

/// `out += column sums of a` — scalar-pinned [`super::sum_rows_acc`].
pub fn sum_rows_acc(a: &Matrix, out: &mut Matrix) {
    assert_eq!(out.shape(), (1, a.cols()), "sum_rows output shape mismatch");
    let n = a.cols();
    let od = out.as_mut_slice();
    for row in a.as_slice().chunks_exact(n.max(1)) {
        for (o, &v) in od.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// `out = a ⊙ b` — scalar-pinned [`super::hadamard_into`].
pub fn hadamard_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch for hadamard_into");
    out.resize(a.rows(), a.cols());
    for ((o, &x), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = x * y;
    }
}

/// `out = a ⊙ b + c ⊙ d` — scalar-pinned [`super::mul_add_mul_into`].
pub fn mul_add_mul_into(a: &Matrix, b: &Matrix, c: &Matrix, d: &Matrix, out: &mut Matrix) {
    assert!(
        a.shape() == b.shape() && a.shape() == c.shape() && a.shape() == d.shape(),
        "shape mismatch for mul_add_mul_into"
    );
    out.resize(a.rows(), a.cols());
    let od = out.as_mut_slice();
    let (ad, bd, cd, dd) = (a.as_slice(), b.as_slice(), c.as_slice(), d.as_slice());
    for i in 0..od.len() {
        od[i] = ad[i] * bd[i] + cd[i] * dd[i];
    }
}

/// `out = (1 - t) ⊙ a + t ⊙ b` — scalar-pinned [`super::convex_combine_into`].
pub fn convex_combine_into(t: &Matrix, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert!(
        t.shape() == a.shape() && t.shape() == b.shape(),
        "shape mismatch for convex_combine_into"
    );
    out.resize(t.rows(), t.cols());
    let od = out.as_mut_slice();
    let (td, ad, bd) = (t.as_slice(), a.as_slice(), b.as_slice());
    for i in 0..od.len() {
        od[i] = (1.0 - td[i]) * ad[i] + td[i] * bd[i];
    }
}

/// `out = act(src)` — scalar-pinned [`super::act_into`].
pub fn act_into(src: &Matrix, act: Activation, out: &mut Matrix) {
    out.resize(src.rows(), src.cols());
    act.apply_to_slice(src.as_slice(), out.as_mut_slice());
}

/// Fused LSTM state update — scalar-pinned [`super::lstm_state_forward`].
#[allow(clippy::too_many_arguments)] // the five gates plus three state outputs
pub fn lstm_state_forward(
    i: &Matrix,
    f: &Matrix,
    o: &Matrix,
    g: &Matrix,
    c_prev: &Matrix,
    act: Activation,
    c: &mut Matrix,
    a: &mut Matrix,
    h: &mut Matrix,
) {
    mul_add_mul_into(f, c_prev, i, g, c);
    act_into(c, act, a);
    hadamard_into(o, a, h);
}

/// Fused LSTM backward element-wise pass — scalar-pinned
/// [`super::lstm_backward_elementwise`] (see there for the equations).
#[allow(clippy::too_many_arguments)] // the LSTM cell's full cached state
pub fn lstm_backward_elementwise(
    dh: &Matrix,
    dc: &Matrix,
    a: &Matrix,
    o: &Matrix,
    i: &Matrix,
    f: &Matrix,
    g: &Matrix,
    c_prev: &Matrix,
    act: Activation,
    dz_i: &mut Matrix,
    dz_f: &mut Matrix,
    dz_o: &mut Matrix,
    dz_g: &mut Matrix,
    dc_prev: &mut Matrix,
) {
    for m in [dc, a, o, i, f, g, c_prev] {
        assert_eq!(
            m.shape(),
            dh.shape(),
            "shape mismatch for lstm_backward_elementwise"
        );
    }
    for out in [
        &mut *dz_i,
        &mut *dz_f,
        &mut *dz_o,
        &mut *dz_g,
        &mut *dc_prev,
    ] {
        out.resize(dh.rows(), dh.cols());
    }
    let sig = Activation::Sigmoid;
    let n = dh.as_slice().len();
    let (dhd, dcd) = (dh.as_slice(), dc.as_slice());
    let (ad, od, id, fd, gd, cpd) = (
        a.as_slice(),
        o.as_slice(),
        i.as_slice(),
        f.as_slice(),
        g.as_slice(),
        c_prev.as_slice(),
    );
    let (zi, zf, zo, zg, dcp) = (
        dz_i.as_mut_slice(),
        dz_f.as_mut_slice(),
        dz_o.as_mut_slice(),
        dz_g.as_mut_slice(),
        dc_prev.as_mut_slice(),
    );
    for p in 0..n {
        let dc_total = dcd[p] + dhd[p] * od[p] * act.derivative_from_output(ad[p]);
        zo[p] = dhd[p] * ad[p] * sig.derivative_from_output(od[p]);
        zf[p] = dc_total * cpd[p] * sig.derivative_from_output(fd[p]);
        zi[p] = dc_total * gd[p] * sig.derivative_from_output(id[p]);
        zg[p] = dc_total * id[p] * act.derivative_from_output(gd[p]);
        dcp[p] = dc_total * fd[p];
    }
}

/// Fused GRU update-gate backward pass — scalar-pinned
/// [`super::gru_backward_gates`] (see there for the equations).
#[allow(clippy::too_many_arguments)] // the GRU update's full cached state
pub fn gru_backward_gates(
    dh: &Matrix,
    z: &Matrix,
    cand: &Matrix,
    h_prev: &Matrix,
    act: Activation,
    dz_pre: &mut Matrix,
    dcand_pre: &mut Matrix,
    dh_prev: &mut Matrix,
) {
    for m in [z, cand, h_prev] {
        assert_eq!(
            m.shape(),
            dh.shape(),
            "shape mismatch for gru_backward_gates"
        );
    }
    for out in [&mut *dz_pre, &mut *dcand_pre, &mut *dh_prev] {
        out.resize(dh.rows(), dh.cols());
    }
    let sig = Activation::Sigmoid;
    let n = dh.as_slice().len();
    let (dhd, zd, cd, hpd) = (
        dh.as_slice(),
        z.as_slice(),
        cand.as_slice(),
        h_prev.as_slice(),
    );
    let (dzp, dcp, dhp) = (
        dz_pre.as_mut_slice(),
        dcand_pre.as_mut_slice(),
        dh_prev.as_mut_slice(),
    );
    for p in 0..n {
        dzp[p] = dhd[p] * (cd[p] - hpd[p]) * sig.derivative_from_output(zd[p]);
        dcp[p] = dhd[p] * zd[p] * act.derivative_from_output(cd[p]);
        dhp[p] = dhd[p] * (1.0 - zd[p]);
    }
}

/// Fused GRU reset-gate backward pass — scalar-pinned
/// [`super::gru_backward_reset`] (see there for the equations; `dh_prev`
/// accumulates).
pub fn gru_backward_reset(
    d_rh: &Matrix,
    r: &Matrix,
    h_prev: &Matrix,
    dr_pre: &mut Matrix,
    dh_prev: &mut Matrix,
    rh: &mut Matrix,
) {
    for m in [r, h_prev] {
        assert_eq!(
            m.shape(),
            d_rh.shape(),
            "shape mismatch for gru_backward_reset"
        );
    }
    assert_eq!(
        dh_prev.shape(),
        d_rh.shape(),
        "gru_backward_reset accumulates into dh_prev; shape must match"
    );
    dr_pre.resize(d_rh.rows(), d_rh.cols());
    rh.resize(d_rh.rows(), d_rh.cols());
    let sig = Activation::Sigmoid;
    let n = d_rh.as_slice().len();
    let (dd, rd, hpd) = (d_rh.as_slice(), r.as_slice(), h_prev.as_slice());
    let (drp, dhp, rhd) = (
        dr_pre.as_mut_slice(),
        dh_prev.as_mut_slice(),
        rh.as_mut_slice(),
    );
    for p in 0..n {
        drp[p] = dd[p] * hpd[p] * sig.derivative_from_output(rd[p]);
        dhp[p] += dd[p] * rd[p];
        rhd[p] = rd[p] * hpd[p];
    }
}
